#!/usr/bin/env bash
# Offline CI gate for the mdv workspace.
#
# The build is hermetic by policy: every dependency is an in-tree path
# crate (`mdv-runtime` supplies the PRNG / channels / locks, `mdv-testkit`
# the property-test and bench harness), so everything here runs with
# `--offline` and must succeed on a machine with no network access and a
# cold crates.io cache.
#
# Usage: ci/check.sh [--quick]
#   --quick  skip the release build and example smoke runs (debug gate only)
#
# Environment:
#   MDV_CI_SEEDS  space-separated harness seeds for the replay steps
#                 (default "1 31337 20020226"); e.g.
#                 MDV_CI_SEEDS="7" ci/check.sh --quick for a fast one-seed run

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

# Pinned harness seeds for the property replays below, overridable for
# local bisection without editing this script.
read -r -a CI_SEEDS <<< "${MDV_CI_SEEDS:-1 31337 20020226}"

# Per-step wall-clock accounting: step() closes the previous step's timer,
# and the summary at the bottom prints one line per step so slow steps are
# visible in CI logs without log-timestamp archaeology.
STEP_NAMES=()
STEP_SECS=()
CURRENT_STEP=""
STEP_START=0

finish_step() {
  if [[ -n "$CURRENT_STEP" ]]; then
    STEP_NAMES+=("$CURRENT_STEP")
    STEP_SECS+=("$(( $(date +%s) - STEP_START ))")
  fi
}

step() {
  finish_step
  CURRENT_STEP="$*"
  STEP_START="$(date +%s)"
  printf '\n==> %s\n' "$*"
}

print_timing_summary() {
  finish_step
  CURRENT_STEP=""
  printf '\n==> per-step wall clock\n'
  local i
  for i in "${!STEP_NAMES[@]}"; do
    printf '%6ss  %s\n' "${STEP_SECS[$i]}" "${STEP_NAMES[$i]}"
  done
}

# ---------------------------------------------------------------------------
step "shellcheck ci/check.sh"
# The gate lints itself when shellcheck is installed; the hermetic builder
# image may not carry it, in which case the step skips rather than fails.
if command -v shellcheck >/dev/null 2>&1; then
  shellcheck ci/check.sh
  echo "ok: shellcheck clean"
else
  echo "skip: shellcheck not installed"
fi

# ---------------------------------------------------------------------------
step "dependency policy: deny external crates"
# The deny-list guards against crates.io dependencies reappearing in any
# manifest. Matches dependency lines like `rand = "0.8"` or
# `criterion = { version = ... }` at the start of a line. `target/` is
# excluded: build output may embed manifest copies we do not police.
DENYLIST='rand|proptest|criterion|crossbeam|parking_lot|serde|tokio|rayon|libc'
if grep -RInE "^[[:space:]]*(${DENYLIST})[-_a-zA-Z0-9]*[[:space:]]*=" \
    --include=Cargo.toml --exclude-dir=target . ; then
  echo "ERROR: external crate dependency found in a Cargo.toml (see above)." >&2
  exit 1
fi
if [[ -f Cargo.lock ]] && grep -nE "^name = \"(${DENYLIST})" Cargo.lock; then
  echo "ERROR: external crate present in Cargo.lock (see above)." >&2
  exit 1
fi
if grep -n 'source = "registry' Cargo.lock; then
  echo "ERROR: Cargo.lock references a registry source; build is not hermetic." >&2
  exit 1
fi
echo "ok: no denied crates in manifests or lockfile"

# ---------------------------------------------------------------------------
step "dependency policy: cargo metadata lists only workspace path crates"
# Every package in the resolved graph must live under this repository; any
# registry/git package means the hermetic guarantee broke.
META="$(mktemp)"
trap 'rm -f "$META"' EXIT
cargo metadata --offline --format-version 1 > "$META"
python3 - "$PWD" "$META" <<'PY'
import json, sys
root, meta_path = sys.argv[1], sys.argv[2]
with open(meta_path) as fh:
    meta = json.load(fh)
bad = [p["id"] for p in meta["packages"]
       if p.get("source") is not None or not p["manifest_path"].startswith(root)]
if bad:
    sys.exit("ERROR: non-path dependencies in cargo metadata:\n  " + "\n  ".join(bad))
print(f"ok: {len(meta['packages'])} packages, all path crates in the workspace")
PY

# ---------------------------------------------------------------------------
step "docs policy: BENCH_*.json files and EXPERIMENTS.md cross-reference"
# Checked-in benchmark result files and the experiment write-ups must not
# drift apart: every BENCH_*.json in the repo root is documented in
# EXPERIMENTS.md, and every BENCH_*.json name EXPERIMENTS.md mentions
# exists as a checked-in file.
BENCH_COUNT=0
for f in BENCH_*.json; do
  [[ -e "$f" ]] || { echo "ERROR: no BENCH_*.json files found in repo root" >&2; exit 1; }
  if ! grep -q "$f" EXPERIMENTS.md; then
    echo "ERROR: $f is checked in but never mentioned in EXPERIMENTS.md" >&2
    exit 1
  fi
  BENCH_COUNT=$((BENCH_COUNT + 1))
done
while read -r name; do
  if [[ ! -f "$name" ]]; then
    echo "ERROR: EXPERIMENTS.md references $name but the file is not checked in" >&2
    exit 1
  fi
done < <(grep -oE 'BENCH_[a-z_]+\.json' EXPERIMENTS.md | sort -u)
echo "ok: BENCH_*.json files and EXPERIMENTS.md agree ($BENCH_COUNT files)"

# ---------------------------------------------------------------------------
step "cargo fmt --check"
cargo fmt --all --check

# ---------------------------------------------------------------------------
step "cargo build (debug, offline)"
cargo build --offline --workspace --all-targets

# ---------------------------------------------------------------------------
step "cargo clippy (offline, all targets, -D warnings)"
# Lint-clean by policy, tests and benches included; runs offline against
# the same hermetic graph as the build.
cargo clippy --offline --workspace --all-targets -- -D warnings
echo "ok: clippy clean"

# ---------------------------------------------------------------------------
step "cargo test (offline, whole workspace)"
cargo test -q --offline --workspace

# ---------------------------------------------------------------------------
step "fault-matrix smoke: fault_sim across fixed seeds"
# Replays the fault-injection property under pinned harness seeds so
# regressions in the at-least-once protocol show up with a reproducible
# seed in the failure message (rerun locally with the printed MDV_PROP_SEED).
for seed in "${CI_SEEDS[@]}"; do
  MDV_PROP_SEED="$seed" MDV_PROP_CASES=25 \
    cargo test -q --offline --test fault_sim >/dev/null
  echo "ok: fault_sim @ MDV_PROP_SEED=$seed"
done

# ---------------------------------------------------------------------------
step "crash-restart replay: durable recovery across fixed seeds"
# Replays the crash/restart property (WAL + snapshot recovery with rule
# churn, torn-tail injection, and the cache-consistency oracle) under the
# same pinned seeds as the fault matrix; failures print the seed to rerun.
for seed in "${CI_SEEDS[@]}"; do
  MDV_PROP_SEED="$seed" MDV_PROP_CASES=15 \
    cargo test -q --offline --test crash_restart >/dev/null
  echo "ok: crash_restart @ MDV_PROP_SEED=$seed"
done

# ---------------------------------------------------------------------------
step "storage-torture replay: disk faults and crash-point sweeps across fixed seeds"
# Replays the storage fault-injection suite (DESIGN.md §12) under the pinned
# seeds: the exhaustive crash-point sweeps and the golden byte-identity
# fixture are deterministic and run every time; the randomized
# detected-or-consistent property replays per seed; failures print the seed
# to rerun.
for seed in "${CI_SEEDS[@]}"; do
  MDV_PROP_SEED="$seed" MDV_PROP_CASES=12 \
    cargo test -q --offline --test storage_torture >/dev/null
  echo "ok: storage_torture @ MDV_PROP_SEED=$seed"
done

# ---------------------------------------------------------------------------
step "backbone-repair replay: replication, anti-entropy, failover across fixed seeds"
# Replays the backbone reconvergence property (reliable MDP↔MDP replication,
# anti-entropy repair, and LMR failover through a fail/heal cycle, checked
# by the cache-consistency oracle) under the same pinned seeds.
for seed in "${CI_SEEDS[@]}"; do
  MDV_PROP_SEED="$seed" MDV_PROP_CASES=15 \
    cargo test -q --offline --test backbone_repair >/dev/null
  echo "ok: backbone_repair @ MDV_PROP_SEED=$seed"
done

# ---------------------------------------------------------------------------
step "placement replay: partitioned replication across fixed seeds"
# Replays the placement properties (randomized fail/heal schedules at
# R ∈ {1,2,3} over 3–5 MDPs checked by the shadow-deployment oracle, plus
# Raft replicating the placement table through the log; DESIGN.md §11)
# under the same pinned seeds; failures print the seed to rerun.
for seed in "${CI_SEEDS[@]}"; do
  MDV_PROP_SEED="$seed" MDV_PROP_CASES=15 \
    cargo test -q --offline --test placement >/dev/null
  echo "ok: placement @ MDV_PROP_SEED=$seed"
done

# ---------------------------------------------------------------------------
step "raft-safety replay: consensus invariants under seeded fault schedules"
# Replays the Raft safety properties (Election Safety, Log Matching, Leader
# Completeness, State Machine Safety under randomized drop/dup/partition
# schedules, plus voter crash-restarts mid-election) under the same pinned
# seeds; failures print the seed to rerun (DESIGN.md §9).
for seed in "${CI_SEEDS[@]}"; do
  MDV_PROP_SEED="$seed" MDV_PROP_CASES=50 \
    cargo test -q --offline --test raft_safety >/dev/null
  echo "ok: raft_safety @ MDV_PROP_SEED=$seed"
done

# ---------------------------------------------------------------------------
step "parallel-filter determinism: publications invariant across thread counts"
# The parallel batch filter must emit byte-identical publications, traces,
# and stats for every thread count (DESIGN.md §5); the fault matrix above
# depends on it. Pinned seed for a reproducible failure message.
MDV_PROP_SEED=20020226 MDV_PROP_CASES=50 \
  cargo test -q --offline -p mdv-filter --test parallel_determinism >/dev/null
echo "ok: parallel_determinism @ MDV_PROP_SEED=20020226"

# ---------------------------------------------------------------------------
step "sharded-filter determinism: publications invariant across shard counts"
# The sharded filter (DESIGN.md §8) must emit byte-identical publications
# and canonical traces for every shard count 1/2/4/8 × thread count, with
# the shards=1 wrapper verbatim-identical to the bare engine. Every seeded
# scenario above relies on this invariance, so it gets the full seed matrix.
for seed in "${CI_SEEDS[@]}"; do
  MDV_PROP_SEED="$seed" MDV_PROP_CASES=25 \
    cargo test -q --offline -p mdv-filter --test shard_determinism >/dev/null
  echo "ok: shard_determinism @ MDV_PROP_SEED=$seed"
done

# ---------------------------------------------------------------------------
step "matching-equivalence replay: index/subsumption routes vs scan across fixed seeds"
# Replays the matching-equivalence properties (all four
# use_trigger_index × use_subsumption combinations emit byte-identical
# publications and traces vs the table-scan reference, under covering
# churn and composed with threads and the update/delete protocol;
# DESIGN.md §10) under the pinned seed matrix.
for seed in "${CI_SEEDS[@]}"; do
  MDV_PROP_SEED="$seed" MDV_PROP_CASES=25 \
    cargo test -q --offline -p mdv-filter --test matching_equivalence >/dev/null
  echo "ok: matching_equivalence @ MDV_PROP_SEED=$seed"
done

# ---------------------------------------------------------------------------
step "cargo doc: public filter API (mdv-filter, -D warnings)"
# The filter crate is the paper's contribution and its public API is the
# documented surface (rustdoc'd module docs + runnable examples); gate it
# separately so a missing doc or broken intra-doc link names the crate.
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -p mdv-filter -q
echo "ok: mdv-filter rustdoc clean"

# ---------------------------------------------------------------------------
step "cargo doc (offline, no deps)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace -q

if [[ "$QUICK" == "0" ]]; then
  # -------------------------------------------------------------------------
  step "cargo build --release (offline)"
  cargo build --offline --release

  # -------------------------------------------------------------------------
  step "example smoke pass"
  cargo run --offline --release --example quickstart >/dev/null
  echo "ok: quickstart"
  cargo run --offline --release --example paper_walkthrough >/dev/null
  echo "ok: paper_walkthrough"
  cargo run --offline --release --example placement_routing >/dev/null
  echo "ok: placement_routing"

  # -------------------------------------------------------------------------
  step "bench harness smoke pass (MDV_BENCH_ITERS=1)"
  MDV_BENCH_ITERS=1 cargo bench --offline -p mdv-bench >/dev/null
  echo "ok: figures bench harness"

  # -------------------------------------------------------------------------
  step "figures smoke pass with --threads 2 (quick mode)"
  # Exercises the threaded sweep path end to end. fig12 (not thread-scaling)
  # so the smoke never clobbers the checked-in BENCH_filter_scaling.json;
  # the thread-scaling determinism gate itself is unit-tested in mdv-bench.
  cargo run --offline --release -p mdv-bench --bin figures -- \
    fig12 --threads 2 >/dev/null
  echo "ok: figures fig12 --threads 2"

  # -------------------------------------------------------------------------
  step "figures smoke pass with --backend durable"
  # Exercises the WAL-backed sweep path (group commit + fsync on the
  # measured path) end to end. fig12 (not wal-overhead) so the smoke never
  # clobbers the checked-in BENCH_wal_overhead.json; the backend-equality
  # gate itself is unit-tested in mdv-bench.
  cargo run --offline --release -p mdv-bench --bin figures -- \
    fig12 --backend durable >/dev/null
  echo "ok: figures fig12 --backend durable"

  # -------------------------------------------------------------------------
  step "figures smoke pass: recovery-torture (disk-fault recovery study)"
  # Exercises the storage-recovery study end to end (fault-injecting VFS,
  # rotating crash modes, reopen with the zero-committed-write-loss gate;
  # DESIGN.md §12). Runs from a scratch CWD so the quick-mode run never
  # clobbers the checked-in BENCH_recovery.json (regenerate that with
  # `figures recovery-torture --full`).
  ROOT="$PWD"
  SMOKE_DIR="$(mktemp -d)"
  (cd "$SMOKE_DIR" && cargo run --offline --release \
    --manifest-path "$ROOT/Cargo.toml" -p mdv-bench --bin figures -- \
    recovery-torture >/dev/null)
  [[ -s "$SMOKE_DIR/BENCH_recovery.json" ]] \
    || { echo "ERROR: recovery-torture wrote no results" >&2; exit 1; }
  rm -rf "$SMOKE_DIR"
  echo "ok: figures recovery-torture"

  # -------------------------------------------------------------------------
  step "figures smoke pass: backbone-repair (3-MDP fail/heal study)"
  # Exercises the fault-recovery study end to end (failover, heal,
  # anti-entropy repair on a 3-MDP topology). Runs from a scratch CWD so the
  # quick-mode run never clobbers the checked-in BENCH_backbone_repair.json.
  ROOT="$PWD"
  SMOKE_DIR="$(mktemp -d)"
  (cd "$SMOKE_DIR" && cargo run --offline --release \
    --manifest-path "$ROOT/Cargo.toml" -p mdv-bench --bin figures -- \
    backbone-repair >/dev/null)
  rm -rf "$SMOKE_DIR"
  echo "ok: figures backbone-repair"

  # -------------------------------------------------------------------------
  step "figures smoke pass: backbone-consensus (LWW vs Raft study)"
  # Exercises the consistency-vs-availability study end to end on a 3-MDP
  # topology in both replication modes: steady-state write latency, a
  # leader fail/heal cycle (committed write survives, LMR re-homes, zero
  # anti-entropy rounds), and the permanent-partition contrast. Scratch CWD
  # so the quick-mode run never clobbers BENCH_backbone_consensus.json.
  ROOT="$PWD"
  SMOKE_DIR="$(mktemp -d)"
  (cd "$SMOKE_DIR" && cargo run --offline --release \
    --manifest-path "$ROOT/Cargo.toml" -p mdv-bench --bin figures -- \
    backbone-consensus >/dev/null)
  rm -rf "$SMOKE_DIR"
  echo "ok: figures backbone-consensus"

  # -------------------------------------------------------------------------
  step "figures smoke pass: shard-scaling (quick mode, scratch CWD)"
  # Exercises the sharded sweep path end to end, including its internal
  # byte-identity gate against the shards=1 reference. Runs from a scratch
  # CWD so the quick-mode run never clobbers the checked-in
  # BENCH_shard_scaling.json (regenerate that with `figures shard-scaling
  # --full`).
  ROOT="$PWD"
  SMOKE_DIR="$(mktemp -d)"
  (cd "$SMOKE_DIR" && cargo run --offline --release \
    --manifest-path "$ROOT/Cargo.toml" -p mdv-bench --bin figures -- \
    shard-scaling >/dev/null)
  rm -rf "$SMOKE_DIR"
  echo "ok: figures shard-scaling"

  # -------------------------------------------------------------------------
  step "figures smoke pass: matching-scaling (quick mode, scratch CWD)"
  # Exercises the trigger-matching ablation end to end, including its
  # internal byte-identity gates (publications and Figure-9 traces of the
  # index/subsumption routes vs the scan reference) and the frontier-shape
  # asserts. Runs from a scratch CWD so the quick-mode run never clobbers
  # the checked-in BENCH_matching_scaling.json (regenerate that with
  # `figures matching-scaling --full`).
  ROOT="$PWD"
  SMOKE_DIR="$(mktemp -d)"
  (cd "$SMOKE_DIR" && cargo run --offline --release \
    --manifest-path "$ROOT/Cargo.toml" -p mdv-bench --bin figures -- \
    matching-scaling >/dev/null)
  rm -rf "$SMOKE_DIR"
  echo "ok: figures matching-scaling"

  # -------------------------------------------------------------------------
  step "figures smoke pass: placement-scaling (quick mode, scratch CWD)"
  # Exercises the partitioned-replication study end to end, including its
  # internal gates (exactly min(R,N) copies per document, placement-digest
  # traffic flowing, and the R=all cell byte-identical to the legacy
  # placement-off backbone; DESIGN.md §11). Runs from a scratch CWD so the
  # quick-mode run never clobbers the checked-in
  # BENCH_placement_scaling.json (regenerate that with `figures
  # placement-scaling --full`).
  ROOT="$PWD"
  SMOKE_DIR="$(mktemp -d)"
  (cd "$SMOKE_DIR" && cargo run --offline --release \
    --manifest-path "$ROOT/Cargo.toml" -p mdv-bench --bin figures -- \
    placement-scaling >/dev/null)
  [[ -s "$SMOKE_DIR/BENCH_placement_scaling.json" ]] \
    || { echo "ERROR: placement-scaling wrote no results" >&2; exit 1; }
  rm -rf "$SMOKE_DIR"
  echo "ok: figures placement-scaling"
fi

print_timing_summary
printf '\n==> all checks passed\n'
