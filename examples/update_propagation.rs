//! Update propagation: the paper's §3.5 update/delete protocol observed
//! from the LMR cache, including the reference-counting garbage collector.
//!
//! ```text
//! cargo run --example update_propagation
//! ```
//!
//! Walks the exact scenario of §3: a ServerInformation's memory property is
//! updated 32 → 128 (a CycleProvider starts matching), then 128 → 32 (it
//! stops matching), and finally the document is deleted.

use mdv::prelude::*;

fn doc(memory: i64) -> Document {
    parse_document(
        "doc.rdf",
        &format!(
            r##"<rdf:RDF>
              <CycleProvider rdf:ID="host">
                <serverHost>pirates.uni-passau.de</serverHost>
                <serverPort>5874</serverPort>
                <serverInformation rdf:resource="#info"/>
              </CycleProvider>
              <ServerInformation rdf:ID="info"><memory>{memory}</memory><cpu>600</cpu></ServerInformation>
            </rdf:RDF>"##
        ),
    )
    .expect("document is valid")
}

fn show_cache(sys: &MdvSystem, when: &str) {
    let cached = sys.lmr("lmr").expect("lmr exists").cached_uris();
    println!("{when}: cache = {cached:?}");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()?;
    let mut sys = MdvSystem::new(schema);
    sys.add_mdp("mdp")?;
    sys.add_lmr("lmr", "mdp")?;

    let rule = "search CycleProvider c register c where c.serverInformation.memory > 64";
    println!("rule: {rule}\n");
    sys.subscribe("lmr", rule)?;

    // 1. memory = 32: no match
    sys.register_document("mdp", &doc(32))?;
    show_cache(&sys, "after register (memory=32)");
    assert!(sys.lmr("lmr")?.cached_uris().is_empty());

    // 2. update 32 → 128: the CycleProvider now matches; the updated
    //    ServerInformation travels along as a strong-reference companion
    sys.update_document("mdp", &doc(128))?;
    show_cache(&sys, "after update   (memory=128)");
    assert!(sys.lmr("lmr")?.is_cached("doc.rdf#host"));
    assert!(sys.lmr("lmr")?.is_cached("doc.rdf#info"));

    // 3. update 128 → 256: still matching; the LMR receives the new copy
    sys.update_document("mdp", &doc(256))?;
    let cached = sys
        .lmr("lmr")?
        .cached_resource("doc.rdf#info")?
        .expect("cached");
    println!(
        "after update   (memory=256): cached copy reports memory = {}",
        cached.property("memory").unwrap().as_int().unwrap()
    );
    assert_eq!(cached.property("memory").unwrap().as_int(), Some(256));

    // 4. update 256 → 32: the rule no longer matches; the garbage collector
    //    removes the companion that was cached only through the strong ref
    sys.update_document("mdp", &doc(32))?;
    show_cache(&sys, "after update   (memory=32)");
    assert!(sys.lmr("lmr")?.cached_uris().is_empty());

    // 5. back to matching, then delete the whole document
    sys.update_document("mdp", &doc(512))?;
    show_cache(&sys, "after update   (memory=512)");
    sys.delete_document("mdp", "doc.rdf")?;
    show_cache(&sys, "after delete");
    assert!(sys.lmr("lmr")?.cached_uris().is_empty());
    assert!(sys.mdp("mdp")?.engine().document("doc.rdf").is_none());

    println!("\nthe three-pass filter protocol (§3.5) drove every transition above.");
    Ok(())
}
