//! Placement-aware registration (DESIGN.md §11): instead of replicating
//! every document on every MDP, the backbone partitions the document shard
//! space over the nodes with a configurable replication factor, and
//! `mdp_for_uri` tells a client which MDP is the primary for a URI — the
//! node whose registration path needs no forwarding hop.
//!
//! ```text
//! cargo run --example placement_routing
//! ```

use mdv::prelude::*;

fn provider(i: usize, host: &str, memory: i64) -> Document {
    parse_document(
        &format!("doc{i}.rdf"),
        &format!(
            r##"<rdf:RDF>
              <CycleProvider rdf:ID="host">
                <serverHost>{host}</serverHost>
                <serverPort>{port}</serverPort>
                <serverInformation rdf:resource="#info"/>
              </CycleProvider>
              <ServerInformation rdf:ID="info"><memory>{memory}</memory><cpu>700</cpu></ServerInformation>
            </rdf:RDF>"##,
            port = 4000 + i,
        ),
    )
    .expect("document is valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()?;

    let mut sys = MdvSystem::new(schema);
    for m in ["mdp-berlin", "mdp-passau", "mdp-munich"] {
        sys.add_mdp(m)?;
    }
    sys.add_lmr("lmr", "mdp-berlin")?;
    sys.subscribe(
        "lmr",
        "search CycleProvider c register c where c.serverInformation.memory > 64",
    )?;

    // two copies of every document shard, spread over the three MDPs;
    // subscriptions stay fully replicated, so the LMR still sees every match
    sys.set_replication_factor(2)?;
    let table = sys.placement_table().expect("placement is enabled");
    println!(
        "placement: {} shards x {} replicas over {} MDPs (epoch {}) — each node stores ~{:.0}% of the corpus",
        table.shard_count(),
        table.factor(),
        table.mdps().len(),
        table.epoch(),
        100.0 * table.storage_share(),
    );

    // placement-aware registration: ask the system which MDP is the
    // primary for each document and register it right there
    for i in 0..6 {
        let doc = provider(i, "pirates.uni-passau.de", 64 + 8 * i as i64);
        let home = sys.mdp_for_uri(doc.uri())?.to_owned();
        sys.register_document(&home, &doc)?;
        println!("doc{i}.rdf -> {home}");
    }

    for m in sys.mdp_names() {
        println!(
            "{m}: {} of 6 documents",
            sys.mdp(m)?.engine().document_count()
        );
    }
    let hits = sys.query(
        "lmr",
        "search CycleProvider c register c where c.serverInformation.memory > 64",
    )?;
    println!(
        "lmr cache answers with {} matches, no backbone round-trip",
        hits.len()
    );
    Ok(())
}
