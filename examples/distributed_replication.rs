//! Distributed replication: a three-MDP backbone with LMRs on different
//! continents, per-link latencies, and full backbone synchronization
//! (paper §2.2 — "a flat hierarchy, full synchronization, and replication").
//!
//! ```text
//! cargo run --example distributed_replication
//! ```

use mdv::prelude::*;
use mdv::system::NetConfig;

fn provider(i: usize, host: &str, memory: i64) -> Document {
    parse_document(
        &format!("doc{i}.rdf"),
        &format!(
            r##"<rdf:RDF>
              <CycleProvider rdf:ID="host">
                <serverHost>{host}</serverHost>
                <serverPort>{port}</serverPort>
                <serverInformation rdf:resource="#info"/>
              </CycleProvider>
              <ServerInformation rdf:ID="info"><memory>{memory}</memory><cpu>600</cpu></ServerInformation>
            </rdf:RDF>"##,
            port = 4000 + i,
        ),
    )
    .expect("document is valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()?;

    // intercontinental links are slow, local links fast
    let mut net = NetConfig {
        default_latency_ms: 5,
        ..NetConfig::default()
    };
    for (a, b, ms) in [
        ("mdp-eu", "mdp-us", 80),
        ("mdp-us", "mdp-eu", 80),
        ("mdp-eu", "mdp-asia", 120),
        ("mdp-asia", "mdp-eu", 120),
        ("mdp-us", "mdp-asia", 150),
        ("mdp-asia", "mdp-us", 150),
    ] {
        net.links.insert((a.to_owned(), b.to_owned()), ms);
    }

    let mut sys = MdvSystem::with_net_config(schema, net);
    sys.add_mdp("mdp-eu")?;
    sys.add_mdp("mdp-us")?;
    sys.add_mdp("mdp-asia")?;
    sys.add_lmr("lmr-passau", "mdp-eu")?;
    sys.add_lmr("lmr-berkeley", "mdp-us")?;
    sys.add_lmr("lmr-tokyo", "mdp-asia")?;

    // each site wants capable providers; Tokyo additionally pins a domain
    let rule = "search CycleProvider c register c where c.serverInformation.memory >= 128";
    for lmr in ["lmr-passau", "lmr-berkeley", "lmr-tokyo"] {
        sys.subscribe(lmr, rule)?;
    }
    sys.subscribe(
        "lmr-tokyo",
        "search CycleProvider c register c where c.serverHost contains '.jp'",
    )?;

    // documents are administered at *different* MDPs; replication carries
    // them across the backbone
    println!("registering providers at their closest MDP …");
    sys.register_document("mdp-eu", &provider(1, "pirates.uni-passau.de", 256))?;
    sys.register_document("mdp-us", &provider(2, "soda.berkeley.edu", 512))?;
    sys.register_document("mdp-asia", &provider(3, "todai.u-tokyo.jp", 64))?;

    // every MDP holds every document (full replication)
    for mdp in ["mdp-eu", "mdp-us", "mdp-asia"] {
        for i in 1..=3 {
            assert!(
                sys.mdp(mdp)?
                    .engine()
                    .document(&format!("doc{i}.rdf"))
                    .is_some(),
                "{mdp} is missing doc{i}.rdf"
            );
        }
    }
    println!("backbone fully replicated: every MDP stores all 3 documents");

    // every LMR received exactly what its rules asked for, regardless of
    // where the document entered the backbone
    for lmr in ["lmr-passau", "lmr-berkeley", "lmr-tokyo"] {
        println!("{lmr}: {:?}", sys.lmr(lmr)?.cached_uris());
    }
    assert!(
        sys.lmr("lmr-passau")?.is_cached("doc2.rdf#host"),
        "US doc reached the EU LMR"
    );
    assert!(
        sys.lmr("lmr-tokyo")?.is_cached("doc3.rdf#host"),
        "domain rule matched locally"
    );
    assert!(
        !sys.lmr("lmr-berkeley")?.is_cached("doc3.rdf#host"),
        "64 MB provider matches nobody's capability rule"
    );

    // an update entering in Asia reaches the EU cache
    sys.update_document("mdp-asia", &provider(3, "todai.u-tokyo.jp", 1024))?;
    assert!(sys.lmr("lmr-passau")?.is_cached("doc3.rdf#host"));
    println!("update registered in Asia reached the Passau cache");

    let stats = sys.network_stats();
    println!(
        "\nnetwork: {} messages, {:.1} KiB, simulated latency {} ms",
        stats.messages,
        stats.bytes as f64 / 1024.0,
        stats.clock_ms
    );
    let by_kind = sys.network().traffic_by_kind();
    let mut kinds: Vec<_> = by_kind.iter().collect();
    kinds.sort();
    for (kind, count) in kinds {
        println!("  {kind:<20} {count}");
    }
    Ok(())
}
