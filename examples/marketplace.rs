//! ObjectGlobe marketplace: the scenario the paper's introduction motivates.
//!
//! ```text
//! cargo run --example marketplace
//! ```
//!
//! A backbone MDP hosts metadata about *cycle providers* (execute query
//! operators), *data providers* (supply data), and *function providers*
//! (offer operators). Two LMRs serve different user groups: a query
//! optimizer that needs beefy cycle providers, and an astronomy portal that
//! tracks astronomy data and wavelet operators. A user also browses the MDP
//! and pins one specific resource.

use mdv::prelude::*;
use mdv::workload::scenario::{marketplace_documents, MarketplaceParams};
use mdv::workload::schema::objectglobe_schema;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = MdvSystem::new(objectglobe_schema());
    sys.add_mdp("mdp")?;
    sys.add_lmr("lmr-optimizer", "mdp")?;
    sys.add_lmr("lmr-astronomy", "mdp")?;

    // --- subscriptions -------------------------------------------------------
    // the optimizer wants capable cycle providers (paper Example 1 shape)
    sys.subscribe(
        "lmr-optimizer",
        "search CycleProvider c register c where c.serverInformation.memory >= 128",
    )?;
    // the astronomy portal tracks its theme and the wavelet operator
    sys.subscribe(
        "lmr-astronomy",
        "search DataProvider d register d where d.theme = 'astronomy'",
    )?;
    sys.subscribe(
        "lmr-astronomy",
        "search FunctionProvider f register f where f.operators? contains 'wavelet'",
    )?;

    // --- the marketplace fills up --------------------------------------------
    let params = MarketplaceParams::default();
    let docs = marketplace_documents(&params);
    println!(
        "registering {} provider documents ({} cycle, {} data, {} function) …",
        docs.len(),
        params.cycle_providers,
        params.data_providers,
        params.function_providers
    );
    for doc in &docs {
        sys.register_document("mdp", doc)?;
    }

    // --- what each LMR sees ---------------------------------------------------
    let optimizer_view = sys.query(
        "lmr-optimizer",
        "search CycleProvider c register c where c.serverInformation.memory >= 128",
    )?;
    println!(
        "\nlmr-optimizer caches {} capable cycle providers:",
        optimizer_view.len()
    );
    for r in optimizer_view.iter().take(5) {
        let mem = sys
            .lmr("lmr-optimizer")?
            .cached_resource(r.property("serverInformation").unwrap().lexical())?
            .expect("strong-ref companion is cached")
            .property("memory")
            .unwrap()
            .as_int()
            .unwrap();
        println!("  {} ({} MB)", r.uri(), mem);
    }

    let astro_data = sys.query(
        "lmr-astronomy",
        "search DataProvider d register d where d.theme = 'astronomy'",
    )?;
    let astro_fns = sys.query(
        "lmr-astronomy",
        "search FunctionProvider f register f where f.operators? contains 'wavelet'",
    )?;
    println!(
        "\nlmr-astronomy caches {} astronomy data providers and {} wavelet function providers",
        astro_data.len(),
        astro_fns.len()
    );

    // weak references (preferredCycleProvider) are *not* pulled in (§2.4)
    let astro_lmr = sys.lmr("lmr-astronomy")?;
    let weak_targets: usize = astro_data
        .iter()
        .filter_map(|d| d.property("preferredCycleProvider"))
        .filter(|t| astro_lmr.is_cached(t.lexical()))
        .count();
    println!("weak-referenced cycle providers cached at lmr-astronomy: {weak_targets} (weak refs never travel)");
    assert_eq!(weak_targets, 0);

    // --- browsing and selecting (paper §2.2) -----------------------------------
    let all_data = sys.browse_resources("mdp", "DataProvider")?;
    let pick = all_data
        .iter()
        .find(|d| d.property("theme").unwrap().lexical() != "astronomy")
        .expect("some non-astronomy provider exists");
    let pick_uri = pick.uri().as_str().to_owned();
    println!("\nbrowsing at the MDP, a user pins {pick_uri} for caching");
    sys.subscribe_to_resource("lmr-astronomy", &pick_uri)?;
    assert!(sys.lmr("lmr-astronomy")?.is_cached(&pick_uri));

    // --- a combined local query over the cache ---------------------------------
    let local = sys.query(
        "lmr-astronomy",
        "search DataProvider d register d where d.collectionSize > 100000",
    )?;
    println!(
        "local query: {} cached data providers with more than 100k entries",
        local.len()
    );

    let stats = sys.network_stats();
    println!(
        "\nnetwork: {} messages, {:.1} KiB, simulated latency {} ms",
        stats.messages,
        stats.bytes as f64 / 1024.0,
        stats.clock_ms
    );
    Ok(())
}
