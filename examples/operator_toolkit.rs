//! Operator toolkit: the introspection and recovery features an MDV
//! administrator would use — rule explanation, the SQL query path, the
//! dependency-graph DOT export, database snapshots, and backbone node
//! recovery from exported logical state.
//!
//! ```text
//! cargo run --example operator_toolkit
//! ```

use mdv::filter::{sql_translate, to_dot};
use mdv::prelude::*;
use mdv::relstore::{read_database, write_database};
use mdv::rulelang::normalize;
use mdv::system::Mdp;
use mdv::workload::benchmark_schema;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = benchmark_schema();

    // --- a populated MDP ----------------------------------------------------
    let mut sys = MdvSystem::new(schema.clone());
    sys.add_mdp("mdp")?;
    sys.add_lmr("lmr", "mdp")?;
    let rule = "search CycleProvider c register c \
                where c.serverHost contains 'uni-passau.de' \
                and c.serverInformation.memory > 64";
    sys.subscribe("lmr", rule)?;
    for i in 0..5 {
        let doc = mdv::workload::benchmark_document(
            i,
            &mdv::workload::BenchParams {
                rule_count: 100,
                comp_match_fraction: 0.1,
            },
        );
        sys.register_document("mdp", &doc)?;
    }

    // --- 1. explain: what would this rule decompose into? --------------------
    println!(
        "== explain ==\n{}",
        sys.mdp("mdp")?.engine().explain_rule(rule)?
    );

    // --- 2. the SQL translation the paper describes ---------------------------
    let normalized = normalize(&parse_rule(rule)?, &schema)?;
    let sql = sql_translate::to_sql(&normalized, &schema)?;
    println!("== SQL translation ==\n{sql}\n");
    let direct = sys.lmr("lmr")?.query(rule)?;
    let via_sql = sys.lmr("lmr")?.query_sql(rule)?;
    assert_eq!(direct, via_sql);
    println!(
        "direct evaluator and SQL path agree: {} result(s)\n",
        direct.len()
    );

    // --- 3. the dependency graph, Graphviz-ready ------------------------------
    println!(
        "== dependency graph (DOT) ==\n{}",
        to_dot(sys.mdp("mdp")?.engine().graph())
    );

    // --- 4. a relational snapshot of the MDP's database -----------------------
    let snapshot = write_database(sys.mdp("mdp")?.engine().db());
    let restored_db = read_database(&snapshot)?;
    println!(
        "== snapshot == {} bytes, {} tables, {} rows restored\n",
        snapshot.len(),
        restored_db.table_names().len(),
        restored_db.total_rows()
    );

    // --- 5. backbone node recovery from logical state -------------------------
    let state = sys.mdp("mdp")?.export_state();
    let mut recovered = Mdp::new("mdp-recovered", schema);
    let (subs, docs) = recovered.import_state(&state)?;
    println!("== recovery == replayed {subs} subscription(s) and {docs} document(s)");
    assert_eq!(recovered.engine().document_count(), 5);
    assert_eq!(
        state,
        recovered.export_state(),
        "recovered state is a fixpoint"
    );
    println!("recovered node state matches the original export");
    Ok(())
}
