//! Quickstart: the paper's running example, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Sets up a schema, a one-MDP/one-LMR deployment, subscribes with the
//! paper's Example 1 rule, registers the Figure 1 document, and queries the
//! LMR cache locally.

use mdv::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- schema design (paper §2.4: strong references travel along) -------
    let schema = RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()?;

    // --- a 3-tier deployment ----------------------------------------------
    let mut sys = MdvSystem::new(schema);
    sys.add_mdp("mdp-passau")?;
    sys.add_lmr("lmr-lab", "mdp-passau")?;

    // --- Example 1: subscribe to cycle providers in uni-passau.de with
    //     more than 64 MB of main memory ------------------------------------
    let rule = "search CycleProvider c register c \
                where c.serverHost contains 'uni-passau.de' \
                and c.serverInformation.memory > 64";
    println!("subscribing at lmr-lab:\n  {rule}\n");
    sys.subscribe("lmr-lab", rule)?;

    // --- Figure 1: register the example document at the backbone ----------
    let figure1 = r##"<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
  <CycleProvider rdf:ID="host">
    <serverHost>pirates.uni-passau.de</serverHost>
    <serverPort>5874</serverPort>
    <serverInformation>
      <ServerInformation rdf:ID="info">
        <memory>92</memory>
        <cpu>600</cpu>
      </ServerInformation>
    </serverInformation>
  </CycleProvider>
</rdf:RDF>"##;
    let doc = parse_document("doc.rdf", figure1)?;
    println!("registering doc.rdf (Figure 1) at mdp-passau …");
    sys.register_document("mdp-passau", &doc)?;

    // --- a second, non-matching document -----------------------------------
    let other = parse_document(
        "other.rdf",
        r##"<rdf:RDF>
          <CycleProvider rdf:ID="host">
            <serverHost>cluster.example.org</serverHost>
            <serverPort>4000</serverPort>
            <serverInformation rdf:resource="#info"/>
          </CycleProvider>
          <ServerInformation rdf:ID="info"><memory>32</memory><cpu>400</cpu></ServerInformation>
        </rdf:RDF>"##,
    )?;
    sys.register_document("mdp-passau", &other)?;

    // --- what reached the cache? -------------------------------------------
    println!("\ncached at lmr-lab:");
    for uri in sys.lmr("lmr-lab")?.cached_uris() {
        println!("  {uri}");
    }

    // --- query the cache locally -------------------------------------------
    let hits = sys.query(
        "lmr-lab",
        "search CycleProvider c register c where c.serverInformation.cpu >= 500",
    )?;
    println!("\nlocal query for providers with cpu >= 500:");
    for r in &hits {
        println!("{r}");
    }
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].uri().as_str(), "doc.rdf#host");

    let stats = sys.network_stats();
    println!(
        "network: {} messages, {} bytes, simulated latency {} ms",
        stats.messages, stats.bytes, stats.clock_ms
    );
    Ok(())
}
