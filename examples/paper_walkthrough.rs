//! Paper walkthrough: reproduces the worked examples of §3 — the
//! decomposition tables (Figures 4, 7, 8) and the filter execution trace
//! (Figure 9) — directly from the engine's relational tables.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use mdv::filter::{rule_tables, FilterEngine};
use mdv::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()?;
    let mut engine = FilterEngine::new(schema);

    // --- §3.3.1: the example rule ------------------------------------------
    let rule = "search CycleProvider c, ServerInformation s register c \
                where c.serverHost contains 'uni-passau.de' \
                and c.serverInformation = s \
                and s.memory > 64 and s.cpu > 500";
    println!("registering the §3.3.1 rule:\n  {rule}\n");
    engine.register_subscription(rule)?;

    // --- Figure 7: AtomicRules, RuleDependencies, RuleGroups -----------------
    println!("--- Figure 7: rule tables after decomposition ---\n");
    for table in ["AtomicRules", "RuleDependencies", "RuleGroups"] {
        println!("{}", rule_tables::render_table(engine.db(), table)?);
    }

    // --- Figure 8: the triggering-rule index tables --------------------------
    println!("--- Figure 8: triggering rules ---\n");
    println!(
        "{}",
        rule_tables::render_table(engine.db(), "FilterRulesGT")?
    );
    println!(
        "{}",
        rule_tables::render_table(engine.db(), "FilterRulesCON")?
    );

    // --- Figure 1 → Figure 4: document decomposition -------------------------
    let doc = parse_document(
        "doc.rdf",
        r##"<rdf:RDF>
          <CycleProvider rdf:ID="host">
            <serverHost>pirates.uni-passau.de</serverHost>
            <serverPort>5874</serverPort>
            <serverInformation rdf:resource="#info"/>
          </CycleProvider>
          <ServerInformation rdf:ID="info"><memory>92</memory><cpu>600</cpu></ServerInformation>
        </rdf:RDF>"##,
    )?;
    println!("--- Figure 4: FilterData (document atoms) ---\n");
    println!("| uri_reference | class | property | value |");
    for atom in mdv::filter::Atom::from_document(&doc) {
        println!(
            "| {} | {} | {} | {} |",
            atom.uri, atom.class, atom.property, atom.value
        );
    }
    println!();

    // --- Figure 9: the filter run, iteration by iteration --------------------
    println!("--- Figure 9: ResultObjects per iteration ---\n");
    let (pubs, run) = engine.register_batch_traced(std::slice::from_ref(&doc))?;
    println!("{run}");

    println!("publications:");
    for p in &pubs {
        println!("  {} ← added {:?}", p.subscription, p.added);
    }
    assert_eq!(pubs.len(), 1);
    assert_eq!(pubs[0].added, vec!["doc.rdf#host".to_owned()]);
    assert_eq!(
        run.iterations.len(),
        3,
        "initial + two join iterations, as in Figure 9"
    );
    Ok(())
}
