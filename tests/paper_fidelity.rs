//! Fidelity tests: the worked examples printed in the paper (Figures 1,
//! 4–9, Example 1) must come out of this implementation exactly.

use mdv::filter::{Atom, FilterEngine, TriggerOp};
use mdv::prelude::*;

fn paper_schema() -> RdfSchema {
    RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()
        .unwrap()
}

const FIGURE1: &str = r##"<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
  <CycleProvider rdf:ID="host">
    <serverHost>pirates.uni-passau.de</serverHost>
    <serverPort>5874</serverPort>
    <serverInformation>
      <ServerInformation rdf:ID="info">
        <memory>92</memory>
        <cpu>600</cpu>
      </ServerInformation>
    </serverInformation>
  </CycleProvider>
</rdf:RDF>"##;

const RULE_331: &str = "search CycleProvider c, ServerInformation s register c \
                        where c.serverHost contains 'uni-passau.de' \
                        and c.serverInformation = s \
                        and s.memory > 64 and s.cpu > 500";

#[test]
fn figure4_filter_data_rows() {
    let doc = parse_document("doc.rdf", FIGURE1).unwrap();
    paper_schema().validate(&doc).unwrap();
    let atoms = Atom::from_document(&doc);
    let rows: Vec<(String, String, String, String)> = atoms
        .into_iter()
        .map(|a| (a.uri, a.class, a.property, a.value))
        .collect();
    let s = |v: &str| v.to_owned();
    assert_eq!(
        rows,
        vec![
            (
                s("doc.rdf#host"),
                s("CycleProvider"),
                s("rdf#subject"),
                s("doc.rdf#host")
            ),
            (
                s("doc.rdf#host"),
                s("CycleProvider"),
                s("serverHost"),
                s("pirates.uni-passau.de")
            ),
            (
                s("doc.rdf#host"),
                s("CycleProvider"),
                s("serverPort"),
                s("5874")
            ),
            (
                s("doc.rdf#host"),
                s("CycleProvider"),
                s("serverInformation"),
                s("doc.rdf#info")
            ),
            (
                s("doc.rdf#info"),
                s("ServerInformation"),
                s("rdf#subject"),
                s("doc.rdf#info")
            ),
            (
                s("doc.rdf#info"),
                s("ServerInformation"),
                s("memory"),
                s("92")
            ),
            (
                s("doc.rdf#info"),
                s("ServerInformation"),
                s("cpu"),
                s("600")
            ),
        ],
        "the FilterData rows of Figure 4, in document order"
    );
}

#[test]
fn section_331_decomposition_yields_five_atomic_rules() {
    // RuleA, RuleB, RuleC (triggers), RuleE (identity join), RuleF (end)
    let mut engine = FilterEngine::new(paper_schema());
    engine.register_subscription(RULE_331).unwrap();
    let rules = engine.graph().rules_sorted();
    assert_eq!(rules.len(), 5);
    assert_eq!(rules.iter().filter(|r| r.is_trigger()).count(), 3);
    assert_eq!(rules.iter().filter(|r| r.is_join()).count(), 2);
    // the end rule registers CycleProvider resources
    let end = engine.subscription(SubscriptionId(0)).unwrap().end_rules[0];
    assert_eq!(
        engine.graph().rule(end).unwrap().type_class,
        "CycleProvider"
    );
}

#[test]
fn figure8_trigger_table_contents() {
    let mut engine = FilterEngine::new(paper_schema());
    engine.register_subscription(RULE_331).unwrap();
    // FilterRulesGT: memory > 64 and cpu > 500 on ServerInformation
    let gt = engine.db().table("FilterRulesGT").unwrap();
    let mut gt_rows: Vec<(String, String, String)> = gt
        .iter()
        .map(|(_, row)| (row[1].to_string(), row[2].to_string(), row[3].to_string()))
        .collect();
    gt_rows.sort();
    assert_eq!(
        gt_rows,
        vec![
            (
                "ServerInformation".to_owned(),
                "cpu".to_owned(),
                "500".to_owned()
            ),
            (
                "ServerInformation".to_owned(),
                "memory".to_owned(),
                "64".to_owned()
            ),
        ]
    );
    // FilterRulesCON: serverHost contains 'uni-passau.de' on CycleProvider
    let con = engine.db().table("FilterRulesCON").unwrap();
    let con_rows: Vec<(String, String, String)> = con
        .iter()
        .map(|(_, row)| (row[1].to_string(), row[2].to_string(), row[3].to_string()))
        .collect();
    assert_eq!(
        con_rows,
        vec![(
            "CycleProvider".to_owned(),
            "serverHost".to_owned(),
            "uni-passau.de".to_owned()
        )]
    );
}

#[test]
fn figure9_filter_trace() {
    // "The filter terminates with resource doc.rdf#host as result" after
    // an initial iteration (3 trigger matches) and two join iterations.
    let mut engine = FilterEngine::new(paper_schema());
    engine.register_subscription(RULE_331).unwrap();
    let doc = parse_document("doc.rdf", FIGURE1).unwrap();
    let (pubs, run) = engine.register_batch_traced(&[doc]).unwrap();

    assert_eq!(run.iterations.len(), 3);
    // initial iteration: info matches the two GT triggers, host the CON one
    let mut initial: Vec<&str> = run.iterations[0].iter().map(|(u, _)| u.as_str()).collect();
    initial.sort();
    assert_eq!(
        initial,
        vec!["doc.rdf#host", "doc.rdf#info", "doc.rdf#info"]
    );
    // iteration 1: the identity join over the ServerInformation triggers
    assert_eq!(run.iterations[1].len(), 1);
    assert_eq!(run.iterations[1][0].0, "doc.rdf#info");
    // iteration 2: the end rule registers the CycleProvider
    assert_eq!(run.iterations[2].len(), 1);
    assert_eq!(run.iterations[2][0].0, "doc.rdf#host");

    assert_eq!(pubs.len(), 1);
    assert_eq!(pubs[0].added, vec!["doc.rdf#host".to_owned()]);

    // the rendered trace shows the Figure 9 headers
    let text = run.render();
    assert!(text.contains("Initial Iteration"));
    assert!(text.contains("Iteration 2"));
}

#[test]
fn example1_rule_matches_figure1() {
    // "For example, the CycleProvider resource defined in the document
    // excerpt of Figure 1 matches this rule."
    let mut engine = FilterEngine::new(paper_schema());
    let (sub, _) = engine
        .register_subscription(
            "search CycleProvider c register c \
             where c.serverHost contains 'uni-passau.de' \
             and c.serverInformation.memory > 64",
        )
        .unwrap();
    let doc = parse_document("doc.rdf", FIGURE1).unwrap();
    let pubs = engine.register_document(&doc).unwrap();
    assert_eq!(pubs.len(), 1);
    assert_eq!(pubs[0].subscription, sub);
    assert_eq!(pubs[0].added, vec!["doc.rdf#host".to_owned()]);
}

#[test]
fn section_333_rule_groups() {
    // the two §3.3.3 rules share RuleA and their join rules form one group
    let mut engine = FilterEngine::new(paper_schema());
    engine
        .register_subscription(
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        )
        .unwrap();
    engine
        .register_subscription(
            "search CycleProvider c register c where c.serverInformation.cpu > 500",
        )
        .unwrap();
    // five atomic rules: shared CycleProvider trigger, two SI triggers, two joins
    assert_eq!(engine.graph().len(), 5);
    assert_eq!(engine.graph().group_count(), 1);
    let group_rows = engine.db().table("RuleGroups").unwrap().len();
    assert_eq!(group_rows, 1);
}

#[test]
fn normalization_matches_section_33() {
    // the paper shows the normalized form of Example 1 in §3.3
    let schema = paper_schema();
    let rule = parse_rule(
        "search CycleProvider c register c \
         where c.serverHost contains 'uni-passau.de' \
         and c.serverInformation.memory > 64",
    )
    .unwrap();
    let n = normalize(&rule, &schema).unwrap();
    typecheck(&n, &schema).unwrap();
    assert_eq!(
        n.bindings.len(),
        2,
        "a ServerInformation variable was introduced"
    );
    assert_eq!(n.bindings[1].class, "ServerInformation");
    assert_eq!(
        n.predicates.len(),
        3,
        "contains + reference join + memory comparison"
    );
}

#[test]
fn trigger_op_reconversion_semantics() {
    // §3.3.4: "constants are stored as strings and reconverted when joining"
    assert!(TriggerOp::Gt.matches("92", "64"));
    assert!(TriggerOp::EqNum.matches("0092", "92"));
    assert!(!TriggerOp::EqStr.matches("0092", "92"));
}
