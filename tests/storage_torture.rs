//! Disk-fault injection and exhaustive crash-point exploration for the
//! durable storage layer (DESIGN.md §12).
//!
//! The paper's filter runs "entirely on top of a commercial relational
//! DBMS" and inherits its recovery guarantees; this suite is where we earn
//! the equivalent guarantee for our own WAL+snapshot backend instead of
//! assuming it. Three layers of attack:
//!
//! 1. **Exhaustive crash points** (`exhaustive_crash_points_*`,
//!    `end_to_end_*`): a seeded schedule runs on a recording [`FaultVfs`];
//!    every durability boundary (append/sync/rename/remove/truncate) is
//!    replayed as a crash image under all [`CRASH_MODES`], and recovery
//!    must land on an acked-or-later committed state — zero committed-write
//!    loss, no invented state, at the relstore tier and through real MDP
//!    traffic (including the sharded `-s<k>` store layout).
//! 2. **Randomized fault plans** (`faulty_disk_is_detected_or_consistent`):
//!    write errors, short writes, failed syncs and silent bit rot are
//!    injected from one seeded stream; whatever happens, recovery yields a
//!    state the schedule actually passed through, or a typed
//!    [`Error::Corrupt`] when (and only when) bit rot was injected.
//! 3. **Golden bytes** (`stdfs_wal_layout_matches_pre_vfs_golden_bytes`):
//!    the `Vfs` port must not move the on-disk format — the WAL produced
//!    today is pinned byte-for-byte against a fixture captured from the
//!    pre-`Vfs` engine (snapshots additionally gained a `#checksum` footer,
//!    asserted as exactly one trailing line).
//!
//! CI replays this file under pinned seeds (`MDV_PROP_SEED=1`, `31337`,
//! `20020226`); see ci/check.sh.

mod common;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use common::{assert_committed_identical, assert_consistent, provider, schema};
use mdv::prelude::*;
use mdv::relstore::{
    write_database, ColumnDef, CrashMode, DataType, Database, DiskFaultPlan, DurableEngine,
    Error as StoreError, FaultVfs, IndexKind, RowId, StorageEngine, TableSchema, Value,
    CRASH_MODES,
};
use mdv::system::MdvSystem;
use mdv_testkit::{prop_assert, property};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory on the real filesystem (golden-bytes test).
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mdv-torture-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

const RULES: [&str; 3] = [
    "search CycleProvider c register c where c.serverInformation.memory > 64",
    "search CycleProvider c register c where c.serverHost contains 'hub'",
    "search ServerInformation s register s where s.cpu >= 600",
];

// ---- relstore tier: exhaustive crash-point sweep --------------------------

/// The committed-writes-survive oracle, run at *every* recorded durability
/// boundary of a seeded schedule, under every crash mode.
///
/// Each boundary is tagged (via [`FaultVfs::set_marker`]) with the number of
/// operations acked when it was recorded. Recovery from its crash image must
/// produce exactly one of the serialized states the schedule committed, and
/// never an earlier one than the marker: acked work survives any crash, and
/// unacked work either appears atomically (its group reached the disk cache)
/// or not at all.
#[test]
fn exhaustive_crash_points_never_lose_acked_commits() {
    let vfs = FaultVfs::new(0xC0FFEE);
    vfs.set_recording(true);

    // committed[k] = serialized state after k acked operations
    let mut committed: Vec<String> = vec![write_database(&Database::new())];
    let mut eng = DurableEngine::create_with(vfs.clone(), "/node").unwrap();
    // small checkpoint threshold: the sweep must cross epoch bumps too
    eng.set_checkpoint_every(Some(5));

    macro_rules! ack {
        ($eng:expr) => {{
            committed.push(write_database($eng.database()));
            vfs.set_marker((committed.len() - 1) as u64);
        }};
    }

    eng.create_table(
        TableSchema::new(
            "Docs",
            vec![
                ColumnDef::new("uri", DataType::Str),
                ColumnDef::new("n", DataType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    ack!(eng);
    eng.create_index("Docs", "by_uri", IndexKind::Hash, &["uri"], true)
        .unwrap();
    ack!(eng);

    let mut rids: Vec<RowId> = Vec::new();
    for i in 0..8i64 {
        eng.begin();
        let rid = eng
            .insert(
                "Docs",
                vec![Value::Str(format!("doc{i}.rdf")), Value::Int(i)],
            )
            .unwrap();
        rids.push(rid);
        if i % 3 == 0 && rids.len() > 1 {
            let prev = rids[rids.len() - 2];
            eng.update(
                "Docs",
                prev,
                vec![Value::Str(format!("doc{}.rdf", i - 1)), Value::Int(100 + i)],
            )
            .unwrap();
        }
        eng.commit().unwrap();
        ack!(eng);
    }
    eng.delete("Docs", rids[0]).unwrap();
    ack!(eng);
    eng.checkpoint().unwrap();
    ack!(eng);

    let n = vfs.boundary_count();
    assert!(n >= 30, "expected a rich boundary set, got only {n}");

    for i in 0..n {
        let (op, marker) = vfs.boundary_info(i);
        for mode in CRASH_MODES {
            let image = vfs.crash_image(i, mode);
            match DurableEngine::open_with(image, "/node") {
                Ok(rec) => {
                    let s = write_database(rec.database());
                    let j = committed.iter().rposition(|c| *c == s);
                    assert!(
                        j.is_some(),
                        "boundary {i} ({op}, {mode:?}): recovered state is not \
                         any state the schedule committed"
                    );
                    assert!(
                        (j.unwrap() as u64) >= marker,
                        "boundary {i} ({op}, {mode:?}): lost acked commits — \
                         recovered state {} but {marker} ops were acked",
                        j.unwrap()
                    );
                }
                Err(e) => {
                    // a store may be unopenable only while it was still
                    // being created — before anything was ever acked
                    assert_eq!(
                        marker, 0,
                        "boundary {i} ({op}, {mode:?}): store unopenable after \
                         acked commits: {e}"
                    );
                }
            }
        }
    }
}

// ---- relstore tier: randomized fault plans --------------------------------

property! {
    /// Detected-or-consistent under randomized disk faults: whatever mix of
    /// write errors, short writes, failed syncs and silent bit rot a seeded
    /// plan injects, (a) every surfaced error is a typed durability error,
    /// (b) recovery after a crash lands on a state the schedule actually
    /// passed through — never below the last acked state unless bit rot was
    /// injected — and (c) `Corrupt` is reported only when rot was injected.
    fn faulty_disk_is_detected_or_consistent(src) cases = 48; {
        let vfs = FaultVfs::new(src.bits());
        vfs.arm(false); // fault-free setup
        let mut eng = DurableEngine::create_with(vfs.clone(), "/prop").unwrap();
        if src.bool_with(0.5) {
            eng.set_checkpoint_every(Some(src.u64_in(2..6)));
        }
        eng.create_table(TableSchema::new("Docs", vec![
            ColumnDef::new("uri", DataType::Str),
            ColumnDef::new("n", DataType::Int),
        ]).unwrap()).unwrap();
        eng.create_index("Docs", "by_uri", IndexKind::Hash, &["uri"], true).unwrap();

        let plan = DiskFaultPlan {
            read_err: 0.0,
            write_err: src.f64_in(0.0..0.15),
            short_write: src.f64_in(0.0..0.15),
            sync_err: src.f64_in(0.0..0.15),
            corrupt: if src.bool_with(0.3) { src.f64_in(0.0..0.10) } else { 0.0 },
        };
        vfs.set_plan(plan);
        vfs.arm(true);

        // states[k] = serialization after attempt k; last_acked = newest
        // index known durably acked
        let mut states: Vec<String> = vec![write_database(eng.database())];
        let mut last_acked = 0usize;
        let mut live: Vec<RowId> = Vec::new();
        for k in 0..src.usize_in(4..20) {
            let r = match src.weighted(&[5, 2, 2, 1]) {
                0 => eng
                    .insert("Docs", vec![
                        Value::Str(format!("doc{k}.rdf")),
                        Value::Int(k as i64),
                    ])
                    .map(|rid| live.push(rid)),
                1 if !live.is_empty() => {
                    let rid = live[src.usize_in(0..live.len())];
                    eng.update("Docs", rid, vec![
                        Value::Str(format!("upd{k}.rdf")),
                        Value::Int(k as i64),
                    ])
                    .map(|_| ())
                }
                2 if !live.is_empty() => {
                    let rid = live.remove(src.usize_in(0..live.len()));
                    eng.delete("Docs", rid).map(|_| ())
                }
                _ => eng.checkpoint(),
            };
            states.push(write_database(eng.database()));
            match r {
                Ok(()) => last_acked = states.len() - 1,
                Err(e) => prop_assert!(
                    matches!(
                        e,
                        StoreError::Io(_)
                            | StoreError::TornWrite(_)
                            | StoreError::Wedged(_)
                            | StoreError::Corrupt(_)
                    ),
                    "non-durability error surfaced from an injected disk fault: {e}"
                ),
            }
            if eng.is_degraded() {
                // a wedged engine refuses mutations but still serves reads
                prop_assert!(eng.wedge_reason().is_some());
                break;
            }
        }

        // crash and recover on a now-healthy disk
        vfs.arm(false);
        let mode = *src.choose(&CRASH_MODES);
        vfs.crash(mode);
        drop(eng);
        match DurableEngine::open_with(vfs.clone(), "/prop") {
            Ok(rec) => {
                let s = write_database(rec.database());
                let j = states.iter().rposition(|c| *c == s);
                prop_assert!(
                    j.is_some(),
                    "recovered ({mode:?}) into a state the schedule never \
                     passed through (faults: {:?})",
                    vfs.stats()
                );
                if vfs.stats().corruptions == 0 {
                    prop_assert!(
                        j.unwrap() >= last_acked,
                        "lost acked state without injected bit rot \
                         ({mode:?}): recovered {} < acked {last_acked}",
                        j.unwrap()
                    );
                }
                let rep = rec.recovery_report().expect("opened stores carry a report");
                prop_assert!(rep.epoch_used <= rep.newest_epoch);
                prop_assert!(!rep.fell_back || vfs.stats().corruptions > 0,
                    "fell back an epoch without injected bit rot");
            }
            Err(e) => {
                prop_assert!(
                    matches!(e, StoreError::Corrupt(_)),
                    "recovery on a healthy disk may only fail on detected \
                     corruption, got: {e}"
                );
                prop_assert!(
                    vfs.stats().corruptions > 0,
                    "Corrupt surfaced but no corruption was injected: {e}"
                );
            }
        }
    }
}

#[test]
fn read_faults_surface_as_typed_io_errors_and_do_not_wedge_the_disk() {
    let vfs = FaultVfs::new(3);
    vfs.arm(false);
    let mut eng = DurableEngine::create_with(vfs.clone(), "/r").unwrap();
    eng.create_table(TableSchema::new("Docs", vec![ColumnDef::new("uri", DataType::Str)]).unwrap())
        .unwrap();
    eng.insert("Docs", vec![Value::Str("doc1.rdf".into())])
        .unwrap();
    drop(eng);

    vfs.set_plan(DiskFaultPlan {
        read_err: 1.0,
        ..DiskFaultPlan::default()
    });
    vfs.arm(true);
    let err = DurableEngine::open_with(vfs.clone(), "/r").unwrap_err();
    assert!(
        matches!(err, StoreError::Io(_) | StoreError::Corrupt(_)),
        "read fault must surface typed, got: {err}"
    );

    // the same bytes recover fine once the disk behaves again
    vfs.arm(false);
    let rec = DurableEngine::open_with(vfs, "/r").unwrap();
    assert_eq!(rec.database().table("Docs").unwrap().len(), 1);
}

// ---- golden bytes: the Vfs port did not move the on-disk format -----------

/// WAL bytes captured from the engine *before* the `Vfs` refactor, driving
/// the exact schedule in [`golden_schedule`]. The port must reproduce them
/// bit-for-bit through `StdFs` (and through a fault-free `FaultVfs`).
const GOLDEN_WAL_HEX: &str = "\
38000000073979350104000000446f6373040000000300000075726903000700000076657273696f6e01000500000073\
636f72650201040000006c69766500000100000066580c020720000000c9eb56cd0204000000446f6373060000006279\
5f757269000101000000030000007572690100000066580c020728000000f3dde5c20204000000446f63730a00000062\
795f76657273696f6e0100010000000700000076657273696f6e0100000066580c020736000000009c38740404000000\
446f63730000000000000000040000000408000000646f63312e72646602010000000000000003000000000000e03f01\
012e000000c05b001e0404000000446f63730100000000000000040000000408000000646f63322e7264660202000000\
000000000001000100000066580c02072e00000080176ed40604000000446f6373000000000000000004000000040800\
0000646f63312e7264660203000000000000000001010100000066580c02071300000014eacaf60103000000546d7001\
000000010000006b01000100000066580c020708000000823914380303000000546d700100000066580c020711000000\
cb06a8c10504000000446f637300000000000000000100000066580c0207";

/// The pre-`Vfs` snapshot-0 of a fresh store: the header line only. Today's
/// snapshots append a `#checksum` footer; the golden check pins the body as
/// an exact prefix and the footer as exactly one line.
const GOLDEN_SNAPSHOT_HEX: &str = "236d64762d72656c73746f72652d736e617073686f742076310a";

fn unhex(s: &str) -> Vec<u8> {
    s.as_bytes()
        .chunks(2)
        .map(|p| u8::from_str_radix(std::str::from_utf8(p).unwrap(), 16).unwrap())
        .collect()
}

/// The schedule the golden fixture was captured from: DDL, secondary
/// indexes, a multi-op commit group, an update, table drop, and a delete —
/// every WAL op tag appears at least once.
fn golden_schedule<S: StorageEngine>(eng: &mut S) {
    eng.create_table(
        TableSchema::new(
            "Docs",
            vec![
                ColumnDef::new("uri", DataType::Str),
                ColumnDef::new("version", DataType::Int),
                ColumnDef::new("score", DataType::Float).nullable(),
                ColumnDef::new("live", DataType::Bool),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    eng.create_index("Docs", "by_uri", IndexKind::Hash, &["uri"], true)
        .unwrap();
    eng.create_index("Docs", "by_version", IndexKind::BTree, &["version"], false)
        .unwrap();
    eng.begin();
    let a = eng
        .insert(
            "Docs",
            vec![
                Value::Str("doc1.rdf".into()),
                Value::Int(1),
                Value::Float(0.5),
                Value::Bool(true),
            ],
        )
        .unwrap();
    eng.insert(
        "Docs",
        vec![
            Value::Str("doc2.rdf".into()),
            Value::Int(2),
            Value::Null,
            Value::Bool(false),
        ],
    )
    .unwrap();
    eng.commit().unwrap();
    eng.update(
        "Docs",
        a,
        vec![
            Value::Str("doc1.rdf".into()),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
        ],
    )
    .unwrap();
    eng.create_table(TableSchema::new("Tmp", vec![ColumnDef::new("k", DataType::Int)]).unwrap())
        .unwrap();
    eng.drop_table("Tmp").unwrap();
    eng.delete("Docs", a).unwrap();
}

fn assert_matches_golden(wal: &[u8], snapshot: &[u8], backend: &str) {
    assert_eq!(
        wal,
        &unhex(GOLDEN_WAL_HEX)[..],
        "{backend}: WAL bytes diverged from the pre-Vfs golden layout"
    );
    let golden_snap = unhex(GOLDEN_SNAPSHOT_HEX);
    assert!(
        snapshot.starts_with(&golden_snap),
        "{backend}: snapshot body diverged from the pre-Vfs golden layout"
    );
    let footer = std::str::from_utf8(&snapshot[golden_snap.len()..]).unwrap();
    assert!(
        footer.starts_with("#checksum ") && footer.ends_with('\n') && footer.lines().count() == 1,
        "{backend}: snapshot must end in exactly one checksum footer line, got {footer:?}"
    );
}

#[test]
fn stdfs_wal_layout_matches_pre_vfs_golden_bytes() {
    // real filesystem through StdFs
    let dir = scratch("golden");
    let mut eng = DurableEngine::create(&dir).unwrap();
    golden_schedule(&mut eng);
    drop(eng);
    let wal = std::fs::read(dir.join("wal-0")).unwrap();
    let snap = std::fs::read(dir.join("snapshot-0")).unwrap();
    assert_matches_golden(&wal, &snap, "StdFs");
    let _ = std::fs::remove_dir_all(&dir);

    // the simulated disk produces the same bytes when no faults are armed
    let vfs = FaultVfs::new(9);
    let mut eng = DurableEngine::create_with(vfs.clone(), "/golden").unwrap();
    golden_schedule(&mut eng);
    drop(eng);
    let dump = vfs.dump();
    let wal = &dump[Path::new("/golden/wal-0")];
    let snap = &dump[Path::new("/golden/snapshot-0")];
    assert_matches_golden(wal, snap, "FaultVfs");
}

// ---- system tier: end-to-end schedules on the simulated disk --------------

fn faulty_two_tier(
    mdp_vfs: &FaultVfs,
    lmr_vfs: &FaultVfs,
    shards: usize,
) -> MdvSystem<DurableEngine<FaultVfs>> {
    let mut sys: MdvSystem<DurableEngine<FaultVfs>> =
        MdvSystem::durable_on(schema(), NetConfig::default());
    if shards > 1 {
        sys.set_filter_shards(shards).unwrap();
    }
    sys.add_mdp_durable_on("mdp", "/m", mdp_vfs.clone())
        .unwrap();
    sys.add_lmr_durable_on("lmr", "mdp", "/l", lmr_vfs.clone())
        .unwrap();
    sys
}

/// URIs present in a recovered store's `SysDocuments` mirror table (empty
/// when the table was never created — i.e. a crash image from before the
/// store finished initializing).
fn doc_uris(db: &Database) -> BTreeSet<String> {
    match db.table("SysDocuments") {
        Ok(t) => t
            .iter()
            .filter_map(|(_, r)| match &r[0] {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect(),
        Err(_) => BTreeSet::new(),
    }
}

/// Exhaustive crash-point exploration of a real, sharded MDP schedule: every
/// durability boundary the node's two shard stores cross — including the
/// epoch bumps of auto-checkpoints — is crashed under every mode, and the
/// recovered document set must be the acked set at that boundary or an
/// atomically newer one. This is the ISSUE's acceptance schedule: zero
/// committed-write loss across the whole sweep.
#[test]
fn end_to_end_sharded_schedule_survives_every_recorded_boundary() {
    let vfs = FaultVfs::new(0x5EED);
    vfs.set_recording(true); // record from store creation onwards
    let lvfs = FaultVfs::new(2); // the LMR persists off the recorded disk
    let mut sys = faulty_two_tier(&vfs, &lvfs, 2);
    sys.set_checkpoint_every(Some(4));

    // expected[k] = acked document set after k acked system operations
    let mut expected: Vec<BTreeSet<String>> = vec![BTreeSet::new()];
    macro_rules! ack {
        ($set:expr) => {{
            expected.push($set);
            vfs.set_marker((expected.len() - 1) as u64);
        }};
    }

    sys.subscribe("lmr", RULES[0]).unwrap();
    ack!(expected.last().unwrap().clone());
    for i in 0..5 {
        sys.register_document("mdp", &provider(i, "a.hub.org", 128, 700))
            .unwrap();
        let mut set = expected.last().unwrap().clone();
        set.insert(format!("doc{i}.rdf"));
        ack!(set);
    }
    sys.update_document("mdp", &provider(1, "b.edge.org", 32, 500))
        .unwrap();
    ack!(expected.last().unwrap().clone());
    sys.delete_document("mdp", "doc0.rdf").unwrap();
    let mut set = expected.last().unwrap().clone();
    set.remove("doc0.rdf");
    ack!(set);
    sys.run_to_quiescence().unwrap();

    let n = vfs.boundary_count();
    assert!(n >= 30, "expected a rich boundary set, got only {n}");

    for i in 0..n {
        let (op, marker) = vfs.boundary_info(i);
        let m = marker as usize;
        for mode in CRASH_MODES {
            let image = vfs.crash_image(i, mode);
            let mut uris = BTreeSet::new();
            let mut failure = None;
            for d in ["/m", "/m-s1"] {
                match DurableEngine::open_with(image.clone(), d) {
                    Ok(rec) => uris.extend(doc_uris(rec.database())),
                    Err(e) => failure = Some(e),
                }
            }
            if let Some(e) = failure {
                assert_eq!(
                    m, 0,
                    "boundary {i} ({op}, {mode:?}): shard store unopenable \
                     after acked traffic: {e}"
                );
                continue;
            }
            assert!(
                expected[m..].contains(&uris),
                "boundary {i} ({op}, {mode:?}): recovered documents {uris:?} \
                 are not the acked set at marker {m} nor an atomically newer one"
            );
        }
    }
}

#[test]
fn two_tier_deployment_reconverges_after_every_crash_mode() {
    for mode in CRASH_MODES {
        let vfs = FaultVfs::new(7);
        let mut sys = faulty_two_tier(&vfs, &vfs, 1);
        sys.subscribe("lmr", RULES[0]).unwrap();
        for i in 0..3 {
            sys.register_document("mdp", &provider(i, "a.hub.org", 128, 700))
                .unwrap();
        }

        vfs.crash(mode);
        sys.crash_and_restart_mdp("mdp").unwrap();
        sys.crash_and_restart_lmr("lmr").unwrap();
        sys.run_to_quiescence().unwrap();

        for i in 0..3 {
            assert!(
                sys.mdp("mdp")
                    .unwrap()
                    .engine()
                    .document(&format!("doc{i}.rdf"))
                    .is_some(),
                "doc{i} lost in {mode:?} crash"
            );
        }
        assert_consistent(&sys, "lmr", "mdp", &RULES[..1], &format!("after {mode:?}"));

        // the recovered deployment still routes fresh traffic
        sys.register_document("mdp", &provider(9, "c.hub.org", 256, 800))
            .unwrap();
        assert!(sys.lmr("lmr").unwrap().is_cached("doc9.rdf#host"));
        assert_consistent(
            &sys,
            "lmr",
            "mdp",
            &RULES[..1],
            &format!("after post-{mode:?} traffic"),
        );
    }
}

#[test]
fn sharded_mdp_on_one_simulated_disk_recovers_every_shard() {
    let vfs = FaultVfs::new(11);
    let mut sys = faulty_two_tier(&vfs, &vfs, 3);
    for r in RULES {
        sys.subscribe("lmr", r).unwrap();
    }
    for i in 0..6 {
        sys.register_document("mdp", &provider(i, "a.hub.org", 128, 700))
            .unwrap();
    }
    // all three shard stores share the one simulated failure domain
    let dump = vfs.dump();
    for d in ["/m", "/m-s1", "/m-s2"] {
        assert!(
            dump.keys().any(|p| p.starts_with(d)),
            "no files under shard store {d}"
        );
    }

    vfs.crash(CrashMode::DurableOnly);
    sys.crash_and_restart_mdp("mdp").unwrap();
    sys.run_to_quiescence().unwrap();

    let mdp = sys.mdp("mdp").unwrap();
    assert_eq!(mdp.engine().shard_count(), 3, "shard topology survives");
    for i in 0..6 {
        assert!(
            mdp.engine().document(&format!("doc{i}.rdf")).is_some(),
            "doc{i} lost in sharded recovery"
        );
    }
    assert_consistent(&sys, "lmr", "mdp", &RULES, "after sharded disk crash");
}

#[test]
fn a_wedged_mdp_recovers_its_acked_prefix_after_reopen() {
    let vfs = FaultVfs::new(23);
    vfs.arm(false);
    let lvfs = FaultVfs::new(24);
    let mut sys = faulty_two_tier(&vfs, &lvfs, 1);
    sys.subscribe("lmr", RULES[0]).unwrap();
    for i in 0..2 {
        sys.register_document("mdp", &provider(i, "a.hub.org", 128, 700))
            .unwrap();
    }

    // every sync now fails: the registration is refused, typed, and the
    // engine wedges rather than acking maybe-lost bytes
    vfs.set_plan(DiskFaultPlan {
        sync_err: 1.0,
        ..DiskFaultPlan::default()
    });
    vfs.arm(true);
    let err = sys
        .register_document("mdp", &provider(2, "a.hub.org", 128, 700))
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("storage") || msg.contains("wedged") || msg.contains("i/o"),
        "fault must surface as a typed storage error, got: {msg}"
    );
    assert!(
        sys.mdp("mdp").unwrap().engine().storage().is_degraded(),
        "a failed sync must wedge the engine"
    );

    // reopening after a crash is the documented recovery path
    vfs.arm(false);
    vfs.crash(CrashMode::DurableOnly);
    sys.crash_and_restart_mdp("mdp").unwrap();
    sys.run_to_quiescence().unwrap();

    assert!(sys
        .mdp("mdp")
        .unwrap()
        .engine()
        .document("doc0.rdf")
        .is_some());
    assert!(sys
        .mdp("mdp")
        .unwrap()
        .engine()
        .document("doc1.rdf")
        .is_some());
    assert!(
        sys.mdp("mdp")
            .unwrap()
            .engine()
            .document("doc2.rdf")
            .is_none(),
        "an unacked registration must not survive a durable-only crash"
    );
    assert!(!sys.mdp("mdp").unwrap().engine().storage().is_degraded());

    // the refused registration can simply be retried on the healthy disk
    sys.register_document("mdp", &provider(2, "a.hub.org", 128, 700))
        .unwrap();
    assert_consistent(&sys, "lmr", "mdp", &RULES[..1], "after wedge + reopen");
}

#[test]
fn raft_hard_state_survives_disk_crash_modes() {
    for mode in CRASH_MODES {
        let voters = ["m1", "m2", "m3"];
        let mut sys: MdvSystem<DurableEngine<FaultVfs>> =
            MdvSystem::durable_on(schema(), NetConfig::default());
        sys.enable_raft(42).unwrap();
        let disks: Vec<FaultVfs> = (0..3).map(|i| FaultVfs::new(100 + i)).collect();
        for (i, m) in voters.iter().enumerate() {
            sys.add_mdp_durable_on(m, format!("/{m}"), disks[i].clone())
                .unwrap();
        }
        sys.run_to_quiescence().unwrap();
        let leader = sys.raft_leader().expect("a leader is elected");
        for i in 0..3 {
            sys.register_document(&leader, &provider(i, "a.hub.org", 128, 700))
                .unwrap();
        }
        sys.run_to_quiescence().unwrap();

        // crash a follower's disk: its durable Raft hard state (term, vote,
        // log, applied prefix) must come back exactly — a voter that forgets
        // its vote or its committed prefix breaks the safety properties
        let follower = *voters.iter().find(|v| **v != leader).unwrap();
        let fi = voters.iter().position(|v| *v == follower).unwrap();
        let before = sys.raft_probe(follower).unwrap().expect("raft voter");
        disks[fi].crash(mode);
        sys.crash_and_restart_mdp(follower).unwrap();
        let after = sys.raft_probe(follower).unwrap().expect("raft voter");
        assert_eq!(after.term, before.term, "term lost in {mode:?} crash");
        assert_eq!(after.voted_for, before.voted_for, "vote lost in {mode:?}");
        assert_eq!(after.log, before.log, "log rewritten by {mode:?} crash");
        assert_eq!(after.applied, before.applied, "applied prefix lost");

        sys.run_to_quiescence().unwrap();
        assert_committed_identical(&sys, &format!("raft after {mode:?} crash"));
    }
}
