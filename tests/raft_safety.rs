//! Property tests for the Raft-replicated backbone mode (DESIGN.md §9):
//! the four safety properties from the Raft paper — Election Safety, Log
//! Matching, Leader Completeness, State Machine Safety — must hold under
//! randomized seeded fault schedules mixing message loss, duplication,
//! jitter, timed partitions, node fail/heal cycles, and (on the durable
//! backend) full crash-restarts of voters.
//!
//! The checks are observational, over [`RaftProbe`] snapshots of every
//! voter — including down ones, whose frozen state still participates in
//! the safety invariants (a crashed voter that led term 3 still forbids
//! anyone else from claiming term 3).

mod common;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

use mdv::prelude::*;
use mdv::relstore::DurableEngine;
use mdv::system::transport::{FaultPlan, LinkFaults};
use mdv::system::RaftProbe;
use mdv_testkit::{prop_assert, property, Source};

use common::{assert_committed_identical, provider, schema};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "mdv-raft-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Probes every voter, up or down.
fn probes<S: mdv::relstore::StorageEngine + Send + Sync>(
    sys: &MdvSystem<S>,
) -> Vec<(String, RaftProbe)> {
    sys.mdp_names()
        .into_iter()
        .map(|n| {
            let p = sys.raft_probe(n).unwrap().expect("raft voter");
            (n.to_owned(), p)
        })
        .collect()
}

/// Entries a probe retains, as `index -> (term, wire)`.
fn log_map(p: &RaftProbe) -> BTreeMap<u64, (u64, &str)> {
    p.log
        .iter()
        .map(|(idx, term, wire)| (*idx, (*term, wire.as_str())))
        .collect()
}

/// All four Raft safety properties over the current probe snapshots.
fn assert_raft_safety(all: &[(String, RaftProbe)], ctx: &str) {
    for (name, p) in all {
        // a voter's committed prefix is always materialized: either folded
        // into its snapshot (<= offset) or retained in its log
        let last = p.log.last().map_or(p.offset, |(idx, _, _)| *idx);
        assert!(
            p.commit <= last || p.commit <= p.offset,
            "{name} claims commit {} beyond its log (last {last}, offset {}) {ctx}",
            p.commit,
            p.offset
        );
    }
    for (i, (a_name, a)) in all.iter().enumerate() {
        for (b_name, b) in &all[i + 1..] {
            let pair = format!("{a_name}/{b_name} {ctx}");

            // Election Safety: at most one leader per term, ever — the
            // persisted led-term sets are pairwise disjoint
            let a_led: BTreeSet<u64> = a.led_terms.iter().copied().collect();
            let b_led: BTreeSet<u64> = b.led_terms.iter().copied().collect();
            let both: Vec<u64> = a_led.intersection(&b_led).copied().collect();
            assert!(
                both.is_empty(),
                "election safety violated: {pair} both led terms {both:?}"
            );

            // Log Matching: if two logs hold an entry with the same index
            // and term, the logs are identical up to that index
            let a_log = log_map(a);
            let b_log = log_map(b);
            let anchor = a_log
                .iter()
                .rev()
                .find(|(idx, (term, _))| b_log.get(idx).is_some_and(|(bt, _)| bt == term))
                .map(|(idx, _)| *idx);
            if let Some(anchor) = anchor {
                for (idx, a_entry) in a_log.range(..=anchor) {
                    if let Some(b_entry) = b_log.get(idx) {
                        assert_eq!(
                            a_entry, b_entry,
                            "log matching violated at index {idx} (anchor {anchor}): {pair}"
                        );
                    }
                }
            }

            // Leader Completeness (observational): an entry committed by a
            // voter of term <= T is present — and identical where retained —
            // in the log of any current leader of term T
            for (leader, voter, tag) in [(a, b, &pair), (b, a, &pair)] {
                if leader.role != mdv::system::RaftRole::Leader || voter.term > leader.term {
                    continue;
                }
                let l_log = log_map(leader);
                let v_log = log_map(voter);
                for idx in 1..=voter.commit {
                    assert!(
                        idx <= leader.offset || l_log.contains_key(&idx),
                        "leader completeness violated: committed index {idx} \
                         missing from the leader's log: {tag}"
                    );
                    if let (Some(le), Some(ve)) = (l_log.get(&idx), v_log.get(&idx)) {
                        assert_eq!(
                            le, ve,
                            "leader completeness violated: committed index {idx} differs: {tag}"
                        );
                    }
                }
            }

            // State Machine Safety: two voters never apply different
            // commands at the same index — their apply hash chains agree on
            // every index both recorded since (re)start
            let b_chain: BTreeMap<u64, u64> = b.applied_chain.iter().copied().collect();
            for (idx, a_hash) in &a.applied_chain {
                if let Some(b_hash) = b_chain.get(idx) {
                    assert_eq!(
                        a_hash, b_hash,
                        "state machine safety violated at applied index {idx}: {pair}"
                    );
                }
            }
        }
    }
}

const RULE: &str = "search CycleProvider c register c where c.serverInformation.memory > 64";

fn arb_fault_plan(src: &mut Source, voters: &[&str]) -> FaultPlan {
    let mut plan = FaultPlan {
        seed: src.bits(),
        default_link: LinkFaults {
            drop_prob: src.f64_in(0.0..0.30),
            dup_prob: src.f64_in(0.0..0.25),
            jitter_ms: src.u64_in(0..40),
            spike_prob: src.f64_in(0.0..0.10),
            spike_ms: src.u64_in(0..150),
        },
        ..FaultPlan::default()
    };
    // up to two timed voter↔voter partitions; finite windows, so the final
    // heal-and-settle phase can always reconverge
    for _ in 0..src.u64_in(0..3) {
        let a = *src.choose(voters);
        let b = *src.choose(voters);
        if a != b {
            let from = src.u64_in(0..4_000);
            let until = from + src.u64_in(200..4_000);
            plan.partition_both(a, b, from, until);
        }
    }
    plan
}

/// Heals everything, drives the clock past every partition window, and
/// settles: after this the cluster must converge to identical committed
/// state.
fn heal_and_settle<S: mdv::relstore::StorageEngine + Send + Sync>(sys: &mut MdvSystem<S>) {
    for m in sys
        .mdp_names()
        .into_iter()
        .map(str::to_owned)
        .collect::<Vec<_>>()
    {
        if sys.is_down(&m) {
            let _ = sys.heal_mdp(&m);
        }
    }
    sys.network().advance_clock(10_000); // beyond every partition window
    sys.run_to_quiescence().unwrap();
}

property! {
    /// Randomized workloads on a 3- or 5-voter in-memory cluster under a
    /// seeded fault schedule with loss, duplication, timed partitions, and
    /// voter fail/heal cycles: the four safety properties hold at every
    /// step, and after a final heal the cluster converges to identical
    /// committed state.
    fn raft_safety_under_seeded_fault_schedules(src) cases = 50; {
        let voters: Vec<&str> = if src.bool() {
            vec!["m1", "m2", "m3"]
        } else {
            vec!["m1", "m2", "m3", "m4", "m5"]
        };
        let config = NetConfig {
            faults: arb_fault_plan(src, &voters),
            ..NetConfig::default()
        };
        let mut sys = MdvSystem::with_net_config(schema(), config);
        sys.enable_raft(src.bits()).unwrap();
        for m in &voters {
            sys.add_mdp(m).unwrap();
        }
        sys.add_lmr("l1", "m1").unwrap();
        let _ = sys.subscribe("l1", RULE);

        let mut down = 0usize;
        for _ in 0..src.u64_in(4..16) {
            let entry = (*src.choose(&voters)).to_owned();
            match src.weighted(&[5, 2, 2, 2]) {
                0 => {
                    let i = src.u64_in(0..6) as usize;
                    let doc = provider(i, "n.hub.org", src.i64_in(0..200), 500);
                    // Unavailable (no quorum / partitioned entry) is a legal
                    // outcome; safety is what must never break
                    let _ = sys.register_document(&entry, &doc);
                }
                1 => {
                    let i = src.u64_in(0..6);
                    let _ = sys.delete_document(&entry, &format!("doc{i}.rdf"));
                }
                2 => {
                    // keep a quorum alive more often than not
                    if sys.is_down(&entry) {
                        let _ = sys.heal_mdp(&entry);
                        down -= 1;
                    } else if down + 1 < voters.len() {
                        let _ = sys.fail_mdp(&entry);
                        down += 1;
                    }
                }
                _ => {
                    let _ = sys.run_to_quiescence();
                }
            }
            assert_raft_safety(&probes(&sys), "mid-schedule");
        }

        heal_and_settle(&mut sys);
        let all = probes(&sys);
        assert_raft_safety(&all, "after the final heal");
        assert_committed_identical(&sys, "after the final heal");
        let stats = sys.network_stats();
        prop_assert!(stats.clock_ms < 500_000, "logical time ran away: {:?}", stats);
    }

    /// The same safety properties on the durable backend, with full voter
    /// crash-restarts interleaved into the schedule: a restarted voter
    /// recovers its term, vote, led-term set, and log from the WAL-mirrored
    /// tables — so it can never double-vote or forget a committed prefix.
    fn raft_safety_survives_crash_restarts(src) cases = 12; {
        let root = scratch();
        let voters = ["m1", "m2", "m3"];
        let config = NetConfig {
            faults: arb_fault_plan(src, &voters),
            ..NetConfig::default()
        };
        let mut sys: MdvSystem<DurableEngine> =
            MdvSystem::durable_with_net_config(schema(), config);
        sys.enable_raft(src.bits()).unwrap();
        for m in voters {
            sys.add_mdp_durable(m, root.join(m)).unwrap();
        }

        for _ in 0..src.u64_in(3..10) {
            let entry = (*src.choose(&voters)).to_owned();
            match src.weighted(&[4, 2, 3, 1]) {
                0 => {
                    let i = src.u64_in(0..5) as usize;
                    let doc = provider(i, "n.hub.org", src.i64_in(0..200), 500);
                    let _ = sys.register_document(&entry, &doc);
                }
                1 => {
                    if sys.is_down(&entry) {
                        let _ = sys.heal_mdp(&entry);
                    } else if sys.mdp_names().iter().filter(|m| sys.is_down(m)).count() == 0 {
                        let _ = sys.fail_mdp(&entry);
                    }
                }
                2 => {
                    // the crash: volatile state gone, durable state replayed
                    if !sys.is_down(&entry) {
                        let before = sys.raft_probe(&entry).unwrap().unwrap();
                        sys.crash_and_restart_mdp(&entry).unwrap();
                        let after = sys.raft_probe(&entry).unwrap().unwrap();
                        assert_eq!(after.term, before.term, "term lost in crash");
                        assert_eq!(after.voted_for, before.voted_for, "vote lost in crash");
                        assert_eq!(after.led_terms, before.led_terms, "led terms lost");
                        assert_eq!(after.log, before.log, "log rewritten by crash");
                        assert_eq!(after.applied, before.applied, "applied prefix lost");
                        assert_eq!(after.cum_hash, before.cum_hash, "apply chain diverged");
                    }
                }
                _ => {
                    let _ = sys.run_to_quiescence();
                }
            }
            assert_raft_safety(&probes(&sys), "mid-schedule (durable)");
        }

        heal_and_settle(&mut sys);
        let all = probes(&sys);
        assert_raft_safety(&all, "after the final heal (durable)");
        assert_committed_identical(&sys, "after the final heal (durable)");
        let stats = sys.network_stats();
        prop_assert!(stats.clock_ms < 500_000, "logical time ran away: {:?}", stats);
        drop(sys);
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Deterministic pin of the acceptance scenario: a committed write survives
/// the loss of *any* minority — here each single voter in turn, including
/// the leader — with the LMR automatically re-homed to every new leader.
#[test]
fn committed_write_survives_any_single_voter_failure() {
    let root = scratch();
    let mut sys: MdvSystem<DurableEngine> = MdvSystem::new_durable(schema());
    sys.enable_raft(42).unwrap();
    for m in ["m1", "m2", "m3"] {
        sys.add_mdp_durable(m, root.join(m)).unwrap();
    }
    sys.add_lmr_durable("l1", "m1", root.join("l1")).unwrap();
    sys.subscribe("l1", RULE).unwrap();
    sys.register_document("m1", &provider(0, "a.hub.org", 128, 700))
        .unwrap();

    for victim in ["m1", "m2", "m3"] {
        sys.fail_mdp(victim).unwrap();
        sys.run_to_quiescence().unwrap();
        let leader = sys.raft_leader().expect("surviving majority elects");
        assert_ne!(leader, victim);
        // the committed registration is still served by every live voter
        for m in ["m1", "m2", "m3"] {
            if m != victim {
                assert!(
                    sys.mdp(m).unwrap().engine().document("doc0.rdf").is_some(),
                    "doc0 lost on {m} after {victim} failed"
                );
            }
        }
        // and the LMR follows the leader, its cache intact
        assert_eq!(sys.lmr("l1").unwrap().mdp(), leader);
        assert!(sys.lmr("l1").unwrap().is_cached("doc0.rdf#host"));
        sys.heal_mdp(victim).unwrap();
        assert_committed_identical(&sys, &format!("after healing {victim}"));
    }
    assert_raft_safety(&probes(&sys), "after the minority sweep");
    drop(sys);
    let _ = std::fs::remove_dir_all(&root);
}

/// Deterministic pin of the crash-during-election-window scenario: the
/// leader dies, and before the survivors elect a replacement one of them
/// crash-restarts. Its persisted term and vote come back, the election
/// completes with the restarted voter participating, and no term is ever
/// led twice.
#[test]
fn voter_crash_restart_in_the_election_window_preserves_votes() {
    let root = scratch();
    let mut sys: MdvSystem<DurableEngine> = MdvSystem::new_durable(schema());
    sys.enable_raft(7).unwrap();
    for m in ["m1", "m2", "m3"] {
        sys.add_mdp_durable(m, root.join(m)).unwrap();
    }
    sys.register_document("m1", &provider(0, "a.hub.org", 128, 700))
        .unwrap();
    let leader = sys.raft_leader().expect("initial leader");
    let survivors: Vec<&str> = ["m1", "m2", "m3"]
        .into_iter()
        .filter(|m| *m != leader)
        .collect();

    // kill the leader; do NOT settle — the election is now pending
    sys.fail_mdp(&leader).unwrap();
    let before = sys.raft_probe(survivors[0]).unwrap().unwrap();
    sys.crash_and_restart_mdp(survivors[0]).unwrap();
    let after = sys.raft_probe(survivors[0]).unwrap().unwrap();
    assert_eq!(after.term, before.term, "term lost across the crash");
    assert_eq!(
        after.voted_for, before.voted_for,
        "vote lost across the crash"
    );
    assert_eq!(after.log, before.log, "log rewritten across the crash");

    // the next write settles the election and must commit on the majority
    sys.register_document(survivors[1], &provider(1, "b.hub.org", 96, 650))
        .unwrap();
    let new_leader = sys.raft_leader().expect("new leader");
    assert_ne!(new_leader, leader);
    for m in &survivors {
        assert!(sys.mdp(m).unwrap().engine().document("doc0.rdf").is_some());
        assert!(sys.mdp(m).unwrap().engine().document("doc1.rdf").is_some());
    }

    sys.heal_mdp(&leader).unwrap();
    assert_committed_identical(&sys, "after the old leader heals");
    assert_raft_safety(&probes(&sys), "after the old leader heals");
    drop(sys);
    let _ = std::fs::remove_dir_all(&root);
}
