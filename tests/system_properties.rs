//! Property-based tests of the full 3-tier system: for arbitrary operation
//! sequences (register / update / delete at the backbone), every LMR cache
//! must equal direct rule evaluation over the MDP's data plus the
//! strong-reference closure. Runs on `mdv-testkit` (deterministic seeds,
//! ≥64 cases, see `MDV_PROP_CASES`).

use std::collections::BTreeSet;

use mdv::filter::query_eval;
use mdv::prelude::*;
use mdv::system::MdvSystem;
use mdv_testkit::{prop_assert, prop_assert_eq, property, Source};

fn schema() -> RdfSchema {
    RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()
        .unwrap()
}

#[derive(Debug, Clone)]
struct Spec {
    host: String,
    memory: i64,
    cpu: i64,
}

fn arb_spec(src: &mut Source) -> Spec {
    Spec {
        host: format!(
            "{}.{}.org",
            src.choose(&["a", "b"]),
            src.choose(&["hub", "edge"])
        ),
        memory: src.i64_in(0..150),
        cpu: src.i64_in(300..900),
    }
}

#[derive(Debug, Clone)]
enum Op {
    Register(Spec),
    Update(usize, Spec),
    Delete(usize),
}

fn arb_ops(src: &mut Source) -> Vec<Op> {
    src.vec(1..25, |src| match src.weighted(&[3, 2, 1]) {
        0 => Op::Register(arb_spec(src)),
        1 => Op::Update(src.any_usize(), arb_spec(src)),
        _ => Op::Delete(src.any_usize()),
    })
}

fn make_doc(i: usize, s: &Spec) -> Document {
    let uri = format!("doc{i}.rdf");
    Document::new(uri.clone())
        .with_resource(
            Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                .with("serverHost", Term::literal(&s.host))
                .with("serverPort", Term::literal((4000 + i).to_string()))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new(&uri, "info")),
                ),
        )
        .with_resource(
            Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                .with("memory", Term::literal(s.memory.to_string()))
                .with("cpu", Term::literal(s.cpu.to_string())),
        )
}

const RULES: [&str; 3] = [
    "search CycleProvider c register c where c.serverInformation.memory > 64",
    "search CycleProvider c register c where c.serverHost contains 'hub'",
    "search ServerInformation s register s where s.cpu >= 600",
];

fn expected_cache(sys: &MdvSystem) -> BTreeSet<String> {
    let engine = sys.mdp("mdp").unwrap().engine();
    let mut matched = Vec::new();
    for rule_text in RULES {
        let rule = parse_rule(rule_text).unwrap();
        for conj in split_or(&rule) {
            let n = normalize(&conj, engine.schema()).unwrap();
            matched.extend(query_eval::evaluate(engine.db(), engine.schema(), &n).unwrap());
        }
    }
    engine
        .strong_closure(&matched)
        .unwrap()
        .into_iter()
        .collect()
}

property! {
    /// The LMR cache tracks the backbone exactly through arbitrary
    /// register/update/delete sequences.
    fn lmr_cache_is_always_consistent(src) {
        let ops = arb_ops(src);
        let mut sys = MdvSystem::new(schema());
        sys.add_mdp("mdp").unwrap();
        sys.add_lmr("lmr", "mdp").unwrap();
        for r in RULES {
            sys.subscribe("lmr", r).unwrap();
        }

        let mut live: Vec<usize> = Vec::new();
        let mut next_doc = 0usize;
        for op in ops {
            match op {
                Op::Register(spec) => {
                    let i = next_doc;
                    next_doc += 1;
                    sys.register_document("mdp", &make_doc(i, &spec)).unwrap();
                    live.push(i);
                }
                Op::Update(pick, spec) => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = live[pick % live.len()];
                    sys.update_document("mdp", &make_doc(i, &spec)).unwrap();
                }
                Op::Delete(pick) => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = live.remove(pick % live.len());
                    sys.delete_document("mdp", &format!("doc{i}.rdf")).unwrap();
                }
            }
            // the invariant holds after *every* operation
            let cached: BTreeSet<String> =
                sys.lmr("lmr").unwrap().cached_uris().into_iter().collect();
            prop_assert_eq!(&cached, &expected_cache(&sys));
            // cached copies are never stale
            let engine = sys.mdp("mdp").unwrap().engine();
            for uri in &cached {
                let lmr_copy =
                    sys.lmr("lmr").unwrap().cached_resource(uri).unwrap().unwrap();
                let mdp_copy = engine.resource(uri).unwrap().unwrap();
                prop_assert!(lmr_copy.same_content(&mdp_copy), "stale copy of {}", uri);
            }
        }
    }

    /// Backbone replication is transparent: a two-MDP system in which all
    /// writes enter at the *other* MDP gives an identical cache.
    fn replication_is_transparent(src) {
        let specs = src.vec(1..8, arb_spec);
        // direct: LMR on the same MDP where documents are registered
        let mut direct = MdvSystem::new(schema());
        direct.add_mdp("mdp").unwrap();
        direct.add_lmr("lmr", "mdp").unwrap();
        for r in RULES {
            direct.subscribe("lmr", r).unwrap();
        }
        // replicated: documents enter at a peer MDP
        let mut repl = MdvSystem::new(schema());
        repl.add_mdp("mdp").unwrap();
        repl.add_mdp("origin").unwrap();
        repl.add_lmr("lmr", "mdp").unwrap();
        for r in RULES {
            repl.subscribe("lmr", r).unwrap();
        }
        for (i, s) in specs.iter().enumerate() {
            direct.register_document("mdp", &make_doc(i, s)).unwrap();
            repl.register_document("origin", &make_doc(i, s)).unwrap();
        }
        prop_assert_eq!(
            direct.lmr("lmr").unwrap().cached_uris(),
            repl.lmr("lmr").unwrap().cached_uris()
        );
    }
}
