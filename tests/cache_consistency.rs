//! The system-level consistency oracle: after any sequence of
//! registrations, updates, and deletions, every LMR cache must contain
//! **exactly** the resources matching its subscription rules (evaluated
//! directly against the MDP's full database) plus their strong-reference
//! closure — the paper's cache-consistency guarantee (§2.2/§3.5).

use mdv::filter::{query_eval, BaseStore};
use mdv::prelude::*;
use mdv::system::MdvSystem;
use std::collections::BTreeSet;

fn schema() -> RdfSchema {
    RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()
        .unwrap()
}

fn provider(i: usize, host: &str, memory: i64, cpu: i64) -> Document {
    let uri = format!("doc{i}.rdf");
    Document::new(uri.clone())
        .with_resource(
            Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                .with("serverHost", Term::literal(host))
                .with("serverPort", Term::literal((4000 + i).to_string()))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new(&uri, "info")),
                ),
        )
        .with_resource(
            Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                .with("memory", Term::literal(memory.to_string()))
                .with("cpu", Term::literal(cpu.to_string())),
        )
}

/// Computes the expected cache of an LMR: direct evaluation of each rule
/// against the MDP's base data, plus the strong closure.
fn expected_cache(sys: &MdvSystem, mdp: &str, rules: &[&str]) -> BTreeSet<String> {
    let engine = sys.mdp(mdp).unwrap().engine();
    let schema = engine.schema();
    let db = engine.db();
    let mut matched: Vec<String> = Vec::new();
    for rule_text in rules {
        let rule = parse_rule(rule_text).unwrap();
        for conj in split_or(&rule) {
            let n = match normalize(&conj, schema) {
                Ok(n) => n,
                Err(mdv::rulelang::Error::Unsatisfiable) => continue,
                Err(e) => panic!("bad rule: {e}"),
            };
            matched.extend(query_eval::evaluate(db, schema, &n).unwrap());
        }
    }
    // strong closure over the MDP's data
    engine
        .strong_closure(&matched)
        .unwrap()
        .into_iter()
        .collect()
}

fn assert_consistent(sys: &MdvSystem, lmr: &str, mdp: &str, rules: &[&str], when: &str) {
    let cached: BTreeSet<String> = sys.lmr(lmr).unwrap().cached_uris().into_iter().collect();
    let expected = expected_cache(sys, mdp, rules);
    assert_eq!(cached, expected, "cache of {lmr} inconsistent {when}");
    // cached copies must equal the MDP's current copies, byte for byte
    let engine = sys.mdp(mdp).unwrap().engine();
    for uri in &cached {
        let lmr_copy = sys.lmr(lmr).unwrap().cached_resource(uri).unwrap().unwrap();
        let mdp_copy = engine.resource(uri).unwrap().unwrap();
        assert!(
            lmr_copy.same_content(&mdp_copy),
            "stale copy of {uri} at {lmr} {when}"
        );
    }
    // sanity: resource lookup on the LMR's own statements still works
    let _ = BaseStore::resource_exists(engine.db(), "nonexistent#x").unwrap();
}

#[test]
fn cache_equals_direct_evaluation_through_lifecycle() {
    let rules = [
        "search CycleProvider c register c where c.serverInformation.memory > 64",
        "search CycleProvider c register c where c.serverHost contains 'passau'",
    ];
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("lmr", "mdp").unwrap();
    for r in rules {
        sys.subscribe("lmr", r).unwrap();
    }

    // registrations
    sys.register_document("mdp", &provider(0, "a.passau.de", 32, 500))
        .unwrap();
    sys.register_document("mdp", &provider(1, "b.example.org", 128, 600))
        .unwrap();
    sys.register_document("mdp", &provider(2, "c.example.org", 16, 700))
        .unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after registrations");

    // updates flipping matches in both directions
    sys.update_document("mdp", &provider(0, "a.passau.de", 512, 500))
        .unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after gaining update");
    sys.update_document("mdp", &provider(1, "b.example.org", 8, 600))
        .unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after losing update");
    sys.update_document("mdp", &provider(2, "c.passau.de", 16, 700))
        .unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after host rename");

    // content-only update of a companion
    sys.update_document("mdp", &provider(0, "a.passau.de", 600, 999))
        .unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after companion refresh");

    // deletion
    sys.delete_document("mdp", "doc0.rdf").unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after delete");
}

#[test]
fn consistency_under_randomized_operations() {
    // a deterministic pseudo-random workout across the whole lifecycle
    let rules = [
        "search CycleProvider c register c where c.serverInformation.memory > 50",
        "search ServerInformation s register s where s.cpu >= 800",
        "search CycleProvider c register c \
         where c.serverHost contains 'hub' and c.serverInformation.cpu < 900",
    ];
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("lmr", "mdp").unwrap();
    for r in rules {
        sys.subscribe("lmr", r).unwrap();
    }

    // simple LCG so the sequence is reproducible without extra deps
    let mut state: u64 = 0xdeadbeef;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut live: Vec<usize> = Vec::new();
    for step in 0..60 {
        let roll = next() % 10;
        if roll < 5 || live.is_empty() {
            // register a fresh document
            let i = step + 1000;
            let host = if next() % 2 == 0 {
                format!("n{i}.hub.org")
            } else {
                format!("n{i}.edge.org")
            };
            let doc = provider(i, &host, (next() % 120) as i64, 400 + (next() % 600) as i64);
            sys.register_document("mdp", &doc).unwrap();
            live.push(i);
        } else if roll < 8 {
            // update a random live document
            let i = live[next() % live.len()];
            let host = if next() % 2 == 0 {
                format!("n{i}.hub.org")
            } else {
                format!("n{i}.edge.org")
            };
            let doc = provider(i, &host, (next() % 120) as i64, 400 + (next() % 600) as i64);
            sys.update_document("mdp", &doc).unwrap();
        } else {
            // delete a random live document
            let pos = next() % live.len();
            let i = live.remove(pos);
            sys.delete_document("mdp", &format!("doc{i}.rdf")).unwrap();
        }
        assert_consistent(&sys, "lmr", "mdp", &rules, &format!("at step {step}"));
    }
    assert!(!live.is_empty(), "workout kept some documents alive");
}

#[test]
fn consistency_with_shared_companions_across_documents() {
    // two providers in different documents share one ServerInformation;
    // deleting one provider must keep the shared companion cached
    let rules = ["search CycleProvider c register c where c.serverInformation.memory > 64"];
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("lmr", "mdp").unwrap();
    sys.subscribe("lmr", rules[0]).unwrap();

    let info = Document::new("shared.rdf").with_resource(
        Resource::new(UriRef::new("shared.rdf", "i"), "ServerInformation")
            .with("memory", Term::literal("128"))
            .with("cpu", Term::literal("600")),
    );
    let host = |n: usize| {
        let uri = format!("h{n}.rdf");
        Document::new(uri.clone()).with_resource(
            Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                .with("serverHost", Term::literal("x.org"))
                .with("serverPort", Term::literal("1"))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new("shared.rdf", "i")),
                ),
        )
    };
    sys.register_document("mdp", &info).unwrap();
    sys.register_document("mdp", &host(1)).unwrap();
    sys.register_document("mdp", &host(2)).unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after shared setup");

    sys.delete_document("mdp", "h1.rdf").unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after deleting one referrer");
    assert!(sys.lmr("lmr").unwrap().is_cached("shared.rdf#i"));

    sys.delete_document("mdp", "h2.rdf").unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after deleting both referrers");
    assert!(!sys.lmr("lmr").unwrap().is_cached("shared.rdf#i"));
}
