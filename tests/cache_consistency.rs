//! The system-level consistency oracle: after any sequence of
//! registrations, updates, and deletions, every LMR cache must contain
//! **exactly** the resources matching its subscription rules (evaluated
//! directly against the MDP's full database) plus their strong-reference
//! closure — the paper's cache-consistency guarantee (§2.2/§3.5).
//!
//! The oracle itself lives in `tests/common/mod.rs`; `fault_sim.rs` drives
//! the same oracle through randomized fault schedules.

mod common;

use common::{assert_consistent, mild_fault_plan, provider, schema};
use mdv::prelude::*;
use mdv::system::MdvSystem;

#[test]
fn cache_equals_direct_evaluation_through_lifecycle() {
    let rules = [
        "search CycleProvider c register c where c.serverInformation.memory > 64",
        "search CycleProvider c register c where c.serverHost contains 'passau'",
    ];
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("lmr", "mdp").unwrap();
    for r in rules {
        sys.subscribe("lmr", r).unwrap();
    }

    // registrations
    sys.register_document("mdp", &provider(0, "a.passau.de", 32, 500))
        .unwrap();
    sys.register_document("mdp", &provider(1, "b.example.org", 128, 600))
        .unwrap();
    sys.register_document("mdp", &provider(2, "c.example.org", 16, 700))
        .unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after registrations");

    // updates flipping matches in both directions
    sys.update_document("mdp", &provider(0, "a.passau.de", 512, 500))
        .unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after gaining update");
    sys.update_document("mdp", &provider(1, "b.example.org", 8, 600))
        .unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after losing update");
    sys.update_document("mdp", &provider(2, "c.passau.de", 16, 700))
        .unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after host rename");

    // content-only update of a companion
    sys.update_document("mdp", &provider(0, "a.passau.de", 600, 999))
        .unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after companion refresh");

    // deletion
    sys.delete_document("mdp", "doc0.rdf").unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after delete");
}

/// Runs a deterministic pseudo-random workout over `sys` and checks the
/// oracle after every operation.
fn randomized_workout(mut sys: MdvSystem, rules: &[&str], label: &str) {
    for r in rules {
        sys.subscribe("lmr", r).unwrap();
    }
    // simple LCG so the sequence is reproducible without extra deps
    let mut state: u64 = 0xdeadbeef;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut live: Vec<usize> = Vec::new();
    for step in 0..60 {
        let roll = next() % 10;
        if roll < 5 || live.is_empty() {
            // register a fresh document
            let i = step + 1000;
            let host = if next() % 2 == 0 {
                format!("n{i}.hub.org")
            } else {
                format!("n{i}.edge.org")
            };
            let doc = provider(i, &host, (next() % 120) as i64, 400 + (next() % 600) as i64);
            sys.register_document("mdp", &doc).unwrap();
            live.push(i);
        } else if roll < 8 {
            // update a random live document
            let i = live[next() % live.len()];
            let host = if next() % 2 == 0 {
                format!("n{i}.hub.org")
            } else {
                format!("n{i}.edge.org")
            };
            let doc = provider(i, &host, (next() % 120) as i64, 400 + (next() % 600) as i64);
            sys.update_document("mdp", &doc).unwrap();
        } else {
            // delete a random live document
            let pos = next() % live.len();
            let i = live.remove(pos);
            sys.delete_document("mdp", &format!("doc{i}.rdf")).unwrap();
        }
        assert_consistent(
            &sys,
            "lmr",
            "mdp",
            rules,
            &format!("at step {step} ({label})"),
        );
    }
    assert!(!live.is_empty(), "workout kept some documents alive");
}

const WORKOUT_RULES: [&str; 3] = [
    "search CycleProvider c register c where c.serverInformation.memory > 50",
    "search ServerInformation s register s where s.cpu >= 800",
    "search CycleProvider c register c \
     where c.serverHost contains 'hub' and c.serverInformation.cpu < 900",
];

#[test]
fn consistency_under_randomized_operations() {
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("lmr", "mdp").unwrap();
    randomized_workout(sys, &WORKOUT_RULES, "reliable network");
}

#[test]
fn consistency_under_randomized_operations_with_mild_faults() {
    // same scenario, but the transport now drops, duplicates, and jitters
    // a little — the at-least-once protocol must keep the oracle intact
    let config = NetConfig {
        faults: mild_fault_plan(0x6d64_7602),
        ..NetConfig::default()
    };
    let mut sys = MdvSystem::with_net_config(schema(), config);
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("lmr", "mdp").unwrap();
    randomized_workout(sys, &WORKOUT_RULES, "mild fault plan");
}

#[test]
fn consistency_with_shared_companions_across_documents() {
    // two providers in different documents share one ServerInformation;
    // deleting one provider must keep the shared companion cached
    let rules = ["search CycleProvider c register c where c.serverInformation.memory > 64"];
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("lmr", "mdp").unwrap();
    sys.subscribe("lmr", rules[0]).unwrap();

    let info = Document::new("shared.rdf").with_resource(
        Resource::new(UriRef::new("shared.rdf", "i"), "ServerInformation")
            .with("memory", Term::literal("128"))
            .with("cpu", Term::literal("600")),
    );
    let host = |n: usize| {
        let uri = format!("h{n}.rdf");
        Document::new(uri.clone()).with_resource(
            Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                .with("serverHost", Term::literal("x.org"))
                .with("serverPort", Term::literal("1"))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new("shared.rdf", "i")),
                ),
        )
    };
    sys.register_document("mdp", &info).unwrap();
    sys.register_document("mdp", &host(1)).unwrap();
    sys.register_document("mdp", &host(2)).unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after shared setup");

    sys.delete_document("mdp", "h1.rdf").unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after deleting one referrer");
    assert!(sys.lmr("lmr").unwrap().is_cached("shared.rdf#i"));

    sys.delete_document("mdp", "h2.rdf").unwrap();
    assert_consistent(&sys, "lmr", "mdp", &rules, "after deleting both referrers");
    assert!(!sys.lmr("lmr").unwrap().is_cached("shared.rdf#i"));
}
