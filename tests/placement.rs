//! Placement-mode system tests (DESIGN.md §11): the shard space is
//! rendezvous-hashed onto the MDPs with a configurable replication factor,
//! replacing full backbone replication with partitioned-with-replicas.
//!
//! The tentpole properties drive placed deployments at R ∈ {1, 2, 3}
//! through randomized register/update/delete workloads interleaved with
//! fail/heal cycles (each a rebalance: epoch bump, shard handoff via
//! anti-entropy repair, post-heal pruning) and demand that every LMR cache
//! match the *shadow oracle* — a fault-free single-MDP deployment that
//! replayed the same successful operations — byte for byte. Fixed-seed
//! tests pin the mechanisms in isolation: typed configuration errors,
//! primary routing, full-factor equivalence with legacy full replication,
//! exact R-copies-per-document storage, shard handoff while a
//! publication link is partitioned, and crash-recovered shard ownership.

mod common;

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use common::{assert_consistent, assert_consistent_with_shadow, mild_fault_plan, provider, schema};
use mdv::prelude::*;
use mdv::relstore::StorageEngine;
use mdv::system::{Error, MdvSystem as Mdv, PlacementConfig};
use mdv_testkit::{prop_assert, prop_assert_eq, property, Source};

const RULES: [&str; 2] = [
    "search CycleProvider c register c where c.serverInformation.memory > 64",
    "search ServerInformation s register s where s.cpu >= 600",
];

#[derive(Debug, Clone)]
enum Op {
    Register(i64, i64),
    Update(usize, i64, i64),
    Delete(usize),
}

fn arb_ops(src: &mut Source) -> Vec<Op> {
    src.vec(1..8, |src| match src.weighted(&[4, 3, 2]) {
        0 => Op::Register(src.i64_in(0..150), src.i64_in(300..900)),
        1 => Op::Update(src.any_usize(), src.i64_in(0..150), src.i64_in(300..900)),
        _ => Op::Delete(src.any_usize()),
    })
}

/// Applies one op to the placed system (entering at `entry`, which routes
/// to the shard primary) *and* to the fault-free shadow, keeping both on
/// the same logical history.
fn apply_both<S: StorageEngine + Send + Sync>(
    sys: &mut Mdv<S>,
    shadow: &mut Mdv,
    entry: &str,
    op: Op,
    live: &mut Vec<usize>,
    next: &mut usize,
) {
    match op {
        Op::Register(memory, cpu) => {
            let i = *next;
            *next += 1;
            let doc = provider(i, "a.hub.org", memory, cpu);
            sys.register_document(entry, &doc).unwrap();
            shadow.register_document("m0", &doc).unwrap();
            live.push(i);
        }
        Op::Update(pick, memory, cpu) => {
            if live.is_empty() {
                return;
            }
            let i = live[pick % live.len()];
            let doc = provider(i, "b.hub.org", memory, cpu);
            sys.update_document(entry, &doc).unwrap();
            shadow.update_document("m0", &doc).unwrap();
        }
        Op::Delete(pick) => {
            if live.is_empty() {
                return;
            }
            let i = live.remove(pick % live.len());
            let uri = format!("doc{i}.rdf");
            sys.delete_document(entry, &uri).unwrap();
            shadow.delete_document("m0", &uri).unwrap();
        }
    }
}

/// The fault-free single-MDP deployment the shadow oracle evaluates
/// against.
fn shadow_system() -> Mdv {
    let mut shadow = Mdv::new(schema());
    shadow.add_mdp("m0").unwrap();
    shadow
}

/// Every live document must exist on exactly `factor` MDPs once the
/// topology is quiet and pruned: registrations fan out to the replica set
/// only, and rebalances erase copies outside it.
fn assert_exact_copies<S: StorageEngine + Send + Sync>(
    sys: &Mdv<S>,
    factor: usize,
    corpus: usize,
    when: &str,
) {
    let total: usize = sys
        .mdp_names()
        .iter()
        .map(|m| sys.mdp(m).unwrap().engine().document_count())
        .sum();
    assert_eq!(
        total,
        factor * corpus,
        "expected exactly {factor} copies of each of {corpus} documents {when}"
    );
}

// ---------------------------------------------------------------------------
// configuration surface: typed errors for every rejected combination
// ---------------------------------------------------------------------------

#[test]
fn filter_shard_count_is_rejected_once_mdps_exist() {
    let mut sys = Mdv::new(schema());
    sys.set_filter_shards(4).unwrap(); // before any MDP: fine
    sys.add_mdp("m1").unwrap();
    let err = sys.set_filter_shards(8).unwrap_err();
    assert!(
        matches!(err, Error::Config(_)),
        "mid-run shard change must be a typed configuration error, got: {err}"
    );
    assert!(err.to_string().contains("configuration error"), "{err}");
}

#[test]
fn placement_configuration_errors_are_typed() {
    let mut sys = Mdv::new(schema());
    assert!(matches!(
        sys.set_replication_factor(2).unwrap_err(),
        Error::Config(_) // no MDPs yet
    ));
    sys.add_mdp("m1").unwrap();
    sys.add_mdp("m2").unwrap();
    assert!(matches!(
        sys.set_replication_factor(0).unwrap_err(),
        Error::Config(_)
    ));

    // batch filtering and placement exclude each other, in both orders
    sys.set_batch_size("m1", Some(4)).unwrap();
    assert!(matches!(
        sys.set_replication_factor(2).unwrap_err(),
        Error::Config(_)
    ));
    sys.set_batch_size("m1", None).unwrap();

    // backup failover and placement exclude each other, in both orders
    sys.add_lmr("l1", "m1").unwrap();
    sys.set_backup_mdp("l1", "m2").unwrap();
    assert!(matches!(
        sys.set_replication_factor(2).unwrap_err(),
        Error::Config(_)
    ));

    let mut sys = Mdv::new(schema());
    sys.add_mdp("m1").unwrap();
    sys.add_mdp("m2").unwrap();
    sys.add_lmr("l1", "m1").unwrap();
    sys.set_replication_factor(2).unwrap();
    assert!(matches!(
        sys.set_backup_mdp("l1", "m2").unwrap_err(),
        Error::Config(_)
    ));
    assert!(matches!(
        sys.set_batch_size("m1", Some(4)).unwrap_err(),
        Error::Config(_)
    ));
    // the shard space is fixed at the first call; the factor may change
    assert!(matches!(
        sys.configure_placement(PlacementConfig {
            factor: 2,
            shards: 128,
        })
        .unwrap_err(),
        Error::Config(_)
    ));
    sys.set_replication_factor(1).unwrap();
}

// ---------------------------------------------------------------------------
// routing
// ---------------------------------------------------------------------------

#[test]
fn mdp_for_uri_names_the_placement_primary() {
    let mut sys = Mdv::new(schema());
    for m in ["m1", "m2", "m3"] {
        sys.add_mdp(m).unwrap();
    }
    // placement off: a deterministic suggestion over the full backbone
    let before = sys.mdp_for_uri("doc0.rdf#host").unwrap().to_owned();
    assert_eq!(sys.mdp_for_uri("doc0.rdf").unwrap(), before);
    assert!(sys.mdp_names().contains(&before.as_str()));

    sys.set_replication_factor(1).unwrap();
    let table = sys.placement_table().unwrap().clone();
    for i in 0..20 {
        let uri = format!("doc{i}.rdf");
        assert_eq!(sys.mdp_for_uri(&uri).unwrap(), table.primary_for(&uri));
    }
    // with R=1 the primary is the *only* copy-holder: registering through
    // any entry MDP must land the document exactly there
    sys.register_document("m1", &provider(7, "a.hub.org", 128, 700))
        .unwrap();
    let home = sys.mdp_for_uri("doc7.rdf").unwrap().to_owned();
    for m in sys.mdp_names() {
        let held = sys.mdp(m).unwrap().engine().document("doc7.rdf").is_some();
        assert_eq!(held, m == home, "{m}");
    }
}

// ---------------------------------------------------------------------------
// full-factor equivalence with legacy full replication
// ---------------------------------------------------------------------------

fn run_equivalence_workload(sys: &mut Mdv) {
    for m in ["m1", "m2", "m3"] {
        sys.add_mdp(m).unwrap();
    }
    sys.add_lmr("l1", "m1").unwrap();
    sys.subscribe("l1", RULES[0]).unwrap();
    sys.subscribe("l1", RULES[1]).unwrap();
}

fn equivalence_ops<S: StorageEngine + Send + Sync>(sys: &mut Mdv<S>) {
    for i in 0..8 {
        sys.register_document("m1", &provider(i, "a.hub.org", 60 + 10 * i as i64, 700))
            .unwrap();
    }
    sys.fail_mdp("m2").unwrap();
    sys.update_document("m3", &provider(0, "b.hub.org", 10, 400))
        .unwrap();
    sys.delete_document("m1", "doc3.rdf").unwrap();
    sys.heal_mdp("m2").unwrap();
    sys.register_document("m3", &provider(8, "c.hub.org", 256, 800))
        .unwrap();
    sys.repair_backbone(64).unwrap();
}

fn doc_sets<S: StorageEngine + Send + Sync>(
    sys: &Mdv<S>,
) -> BTreeMap<String, BTreeMap<String, String>> {
    sys.mdp_names()
        .into_iter()
        .map(|m| {
            let docs = sys
                .mdp(m)
                .unwrap()
                .engine()
                .documents()
                .map(|d| (d.uri().to_owned(), write_document(d)))
                .collect();
            (m.to_owned(), docs)
        })
        .collect()
}

#[test]
fn full_factor_placement_matches_legacy_full_replication() {
    // R >= MDP count clamps to "every node owns every shard": the placed
    // system must end byte-identical to the placement-off legacy system on
    // the same workload, and the legacy system must never emit a single
    // placement message (the refactor is invisible until opted into)
    let mut legacy = Mdv::new(schema());
    run_equivalence_workload(&mut legacy);
    equivalence_ops(&mut legacy);

    let mut placed = Mdv::new(schema());
    run_equivalence_workload(&mut placed);
    placed.set_replication_factor(3).unwrap();
    equivalence_ops(&mut placed);

    assert_eq!(doc_sets(&legacy), doc_sets(&placed));
    let legacy_cache: BTreeSet<String> = legacy
        .lmr("l1")
        .unwrap()
        .cached_uris()
        .into_iter()
        .collect();
    let placed_cache: BTreeSet<String> = placed
        .lmr("l1")
        .unwrap()
        .cached_uris()
        .into_iter()
        .collect();
    assert_eq!(legacy_cache, placed_cache);
    assert_consistent(&placed, "l1", "m1", &RULES, "full-factor placement");

    assert_eq!(legacy.network_stats().placement_messages, 0);
    assert_eq!(legacy.network_stats().placement_bytes, 0);
    assert!(legacy.placement_config().is_none());
    assert_eq!(placed.placement_config().unwrap().factor, 3);
}

// ---------------------------------------------------------------------------
// storage partitioning
// ---------------------------------------------------------------------------

#[test]
fn each_document_lives_on_exactly_r_nodes() {
    let mut sys = Mdv::new(schema());
    for m in ["m1", "m2", "m3", "m4"] {
        sys.add_mdp(m).unwrap();
    }
    sys.set_replication_factor(2).unwrap();
    let entries = ["m1", "m2", "m3", "m4"];
    for i in 0..40 {
        sys.register_document(entries[i % 4], &provider(i, "a.hub.org", 100, 700))
            .unwrap();
    }
    assert_exact_copies(&sys, 2, 40, "after the register sweep");
    // the table's analytic share matches the realized one: R/N = 1/2
    let share = sys.placement_table().unwrap().storage_share();
    assert!((share - 0.5).abs() < 0.15, "storage share {share}");
    // no node is a full replica and no node is empty at 40 docs / 64 shards
    for m in sys.mdp_names() {
        let n = sys.mdp(m).unwrap().engine().document_count();
        assert!(n > 0 && n < 40, "{m} holds {n} of 40 documents");
    }
    assert!(sys.backbone_converged());
}

// ---------------------------------------------------------------------------
// shard handoff while a publication link is partitioned
// ---------------------------------------------------------------------------

#[test]
fn handoff_during_partitioned_publication_link_reconverges() {
    // l1's home is m1, but under placement every shard primary publishes
    // its own matches to l1 over a per-sender alternate stream. Black-hole
    // the l1<->m2 link, drive documents whose primaries include m2, and
    // fail/heal m3 inside the window so a rebalance (epoch bump + shard
    // handoff + prune) happens *while* publications to l1 are parked. The
    // at-least-once alt streams must deliver in order once the partition
    // lifts, and the cache must match the shadow oracle exactly.
    let mut config = NetConfig::default();
    config.faults.seed = 0x91ace;
    config.faults.partition_both("l1", "m2", 0, 5000);
    let mut sys = Mdv::with_net_config(schema(), config);
    let mut shadow = shadow_system();
    for m in ["m1", "m2", "m3"] {
        sys.add_mdp(m).unwrap();
    }
    sys.add_lmr("l1", "m1").unwrap();
    sys.subscribe("l1", RULES[0]).unwrap();
    shadow.add_lmr("l0", "m0").unwrap();
    shadow.subscribe("l0", RULES[0]).unwrap();
    sys.set_replication_factor(2).unwrap();

    let mut live = Vec::new();
    let mut next = 0usize;
    for _ in 0..6 {
        apply_both(
            &mut sys,
            &mut shadow,
            "m1",
            Op::Register(128, 700),
            &mut live,
            &mut next,
        );
    }

    // churn while m2 cannot talk to l1: its publications park and
    // retransmit; meanwhile m3 dies and heals, forcing two rebalances
    apply_both(
        &mut sys,
        &mut shadow,
        "m1",
        Op::Register(200, 800),
        &mut live,
        &mut next,
    );
    sys.fail_mdp("m3").unwrap();
    apply_both(
        &mut sys,
        &mut shadow,
        "m2",
        Op::Register(150, 850),
        &mut live,
        &mut next,
    );
    apply_both(
        &mut sys,
        &mut shadow,
        "m1",
        Op::Update(0, 90, 650),
        &mut live,
        &mut next,
    );
    sys.heal_mdp("m3").unwrap();
    apply_both(
        &mut sys,
        &mut shadow,
        "m3",
        Op::Delete(1),
        &mut live,
        &mut next,
    );

    sys.repair_backbone(64).unwrap();
    assert!(sys.backbone_converged());
    assert_consistent_with_shadow(
        &sys,
        "l1",
        &shadow,
        "m0",
        &RULES[..1],
        "after the partition",
    );
    assert_exact_copies(&sys, 2, live.len(), "after the partition");
    for m in ["m1", "m2", "m3"] {
        assert_eq!(sys.mdp(m).unwrap().unacked_publications(), 0, "{m}");
        assert_eq!(sys.mdp(m).unwrap().unacked_replications(), 0, "{m}");
    }
    let stats = sys.network_stats();
    assert!(stats.placement_messages > 0, "no placement digest ran");
}

// ---------------------------------------------------------------------------
// crash recovery of shard ownership
// ---------------------------------------------------------------------------

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mdv-placement-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cleanup(root: &Path) {
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn crash_restart_recovers_shard_ownership() {
    let root = scratch("ownership");
    let mut sys = MdvSystem::durable_with_net_config(schema(), NetConfig::default());
    let mut shadow = shadow_system();
    for m in ["m1", "m2", "m3"] {
        sys.add_mdp_durable(m, root.join(m)).unwrap();
    }
    sys.add_lmr_durable("l1", "m1", root.join("l1")).unwrap();
    sys.subscribe("l1", RULES[0]).unwrap();
    shadow.add_lmr("l0", "m0").unwrap();
    shadow.subscribe("l0", RULES[0]).unwrap();
    sys.set_replication_factor(2).unwrap();
    let epoch = sys.placement_epoch();

    let mut live = Vec::new();
    let mut next = 0usize;
    for k in 0..6 {
        apply_both(
            &mut sys,
            &mut shadow,
            ["m1", "m2", "m3"][k % 3],
            Op::Register(100 + 10 * k as i64, 700),
            &mut live,
            &mut next,
        );
    }

    // the crash wipes memory; the WAL-mirrored placement table (and the
    // LMR's per-sender alt-stream counters) must come back with it
    sys.crash_and_restart_mdp("m2").unwrap();
    sys.crash_and_restart_lmr("l1").unwrap();
    let table = sys.mdp("m2").unwrap().placement().expect("table recovered");
    assert_eq!(table.epoch(), epoch);
    assert_eq!(table.factor(), 2);

    // the recovered node still serves its shards: more traffic, a fail/heal
    // rebalance, and the shadow oracle at the end
    apply_both(
        &mut sys,
        &mut shadow,
        "m2",
        Op::Register(200, 800),
        &mut live,
        &mut next,
    );
    sys.fail_mdp("m1").unwrap();
    apply_both(
        &mut sys,
        &mut shadow,
        "m2",
        Op::Register(150, 850),
        &mut live,
        &mut next,
    );
    sys.heal_mdp("m1").unwrap();
    apply_both(
        &mut sys,
        &mut shadow,
        "m1",
        Op::Update(0, 96, 650),
        &mut live,
        &mut next,
    );

    sys.repair_backbone(64).unwrap();
    assert!(sys.backbone_converged());
    assert_consistent_with_shadow(
        &sys,
        "l1",
        &shadow,
        "m0",
        &RULES[..1],
        "after crash + rebalance",
    );
    assert_exact_copies(&sys, 2, live.len(), "after crash + rebalance");
    cleanup(&root);
}

// ---------------------------------------------------------------------------
// the tentpole properties
// ---------------------------------------------------------------------------

property! {
    /// At any replication factor in {1, 2, 3}, over 3..=5 MDPs, with lossy
    /// links and randomized fail/heal cycles (each one a rebalance: epoch
    /// bump, shard handoff, post-heal pruning), the placed backbone
    /// reconverges and every LMR cache matches the shadow oracle byte for
    /// byte. At R=1 a down node's shards have no live copy, so updates and
    /// deletes pause while a node is down (registrations land on the
    /// rebalanced survivors); at R>=2 the full mix runs throughout.
    fn placed_backbone_reconverges_under_fail_heal_schedules(src) cases = 20; {
        let factor = *src.choose(&[1usize, 2, 3]);
        let n = src.u64_in(3..6) as usize;
        let config = NetConfig {
            faults: mild_fault_plan(src.bits()),
            ..NetConfig::default()
        };
        let mut sys = MdvSystem::with_net_config(schema(), config);
        let mut shadow = shadow_system();
        let names: Vec<String> = (1..=n).map(|i| format!("m{i}")).collect();
        for m in &names {
            sys.add_mdp(m).unwrap();
        }
        sys.add_lmr("l1", "m1").unwrap();
        shadow.add_lmr("l0", "m0").unwrap();
        // one rule before placement is enabled (the enable path must mirror
        // it everywhere), one after (the subscribe path must fan out)
        sys.subscribe("l1", RULES[0]).unwrap();
        shadow.subscribe("l0", RULES[0]).unwrap();
        sys.set_replication_factor(factor).unwrap();
        sys.subscribe("l1", RULES[1]).unwrap();
        shadow.subscribe("l0", RULES[1]).unwrap();

        let mut live: Vec<usize> = Vec::new();
        let mut next = 0usize;
        let mut down: Option<String> = None;
        for _round in 0..src.u64_in(2..5) {
            for op in arb_ops(src) {
                if factor == 1
                    && down.is_some()
                    && !matches!(op, Op::Register(..))
                {
                    continue; // no live copy of a down node's shards at R=1
                }
                let up: Vec<&String> = names
                    .iter()
                    .filter(|m| down.as_deref() != Some(m.as_str()))
                    .collect();
                let entry = up[src.any_usize() % up.len()].clone();
                apply_both(&mut sys, &mut shadow, &entry, op, &mut live, &mut next);
            }
            match (src.weighted(&[2, 3, 3]), down.clone()) {
                (1, None) => {
                    let victim = names[src.any_usize() % n].clone();
                    sys.fail_mdp(&victim).unwrap();
                    down = Some(victim);
                }
                (2, Some(victim)) => {
                    sys.heal_mdp(&victim).unwrap();
                    down = None;
                }
                _ => {}
            }
        }
        if let Some(victim) = down.take() {
            sys.heal_mdp(&victim).unwrap();
        }
        sys.repair_backbone(64).unwrap();

        prop_assert!(sys.backbone_converged());
        assert_consistent_with_shadow(&sys, "l1", &shadow, "m0", &RULES, "at the end");
        assert_exact_copies(&sys, factor.min(n), live.len(), "at the end");
        for m in &names {
            prop_assert_eq!(sys.mdp(m).unwrap().unacked_publications(), 0);
            prop_assert_eq!(sys.mdp(m).unwrap().unacked_replications(), 0);
        }
        let table = sys.placement_table().unwrap();
        prop_assert_eq!(table.mdps().len(), n);
        prop_assert_eq!(table.factor(), factor.min(n));
    }
}

property! {
    /// In Raft mode the placement table itself rides the replicated log:
    /// after enabling R=2 over three voters, killing and healing the
    /// *leader* must leave every voter with the identical applied prefix,
    /// the identical installed table, and a passing cache oracle — and the
    /// LWW anti-entropy machinery must stay cold throughout.
    fn raft_replicates_the_placement_table_through_the_log(src) cases = 10; {
        let config = NetConfig {
            faults: mild_fault_plan(src.bits()),
            ..NetConfig::default()
        };
        let mut sys = MdvSystem::with_net_config(schema(), config);
        sys.enable_raft(src.bits()).unwrap();
        let mdps = ["m1", "m2", "m3"];
        for m in mdps {
            sys.add_mdp(m).unwrap();
        }
        sys.add_lmr("l1", "m1").unwrap();
        sys.subscribe("l1", RULES[0]).unwrap();
        sys.set_replication_factor(2).unwrap();

        let mut live: Vec<usize> = Vec::new();
        let mut next = 0usize;
        let mut shadow = shadow_system(); // tracks ops only; oracle is direct
        for (k, op) in arb_ops(src).into_iter().enumerate() {
            apply_both(&mut sys, &mut shadow, mdps[k % 3], op, &mut live, &mut next);
        }

        let victim = sys.raft_leader().expect("leader before the failure");
        sys.fail_mdp(&victim).unwrap();
        let survivors: Vec<&str> = mdps.iter().copied().filter(|m| *m != victim).collect();
        for (k, op) in arb_ops(src).into_iter().enumerate() {
            apply_both(&mut sys, &mut shadow, survivors[k % 2], op, &mut live, &mut next);
        }
        sys.heal_mdp(&victim).unwrap();
        sys.run_to_quiescence().unwrap();

        common::assert_committed_identical(&sys, "after the leader fail/heal");
        prop_assert_eq!(sys.network_stats().anti_entropy_rounds, 0);
        prop_assert_eq!(sys.network_stats().placement_messages, 0);
        // the log installed one identical table on every voter
        for m in mdps {
            let table = sys.mdp(m).unwrap().placement().expect("table everywhere");
            prop_assert_eq!(table.factor(), 2);
            prop_assert_eq!(table.mdps().len(), 3);
        }
        let home = sys.lmr("l1").unwrap().mdp().to_owned();
        assert_consistent(&sys, "l1", &home, &RULES[..1], "after the leader fail/heal");
    }
}
