//! Backbone robustness: reliable MDP↔MDP replication, anti-entropy repair,
//! and LMR failover to a surviving MDP (DESIGN.md §7).
//!
//! The tentpole property drives a multi-MDP deployment through randomized
//! workloads under randomized fault schedules *plus* one full
//! `fail_mdp`/heal cycle, and demands byte-identical MDP document sets and
//! a passing cache-consistency oracle for every LMR — including LMRs that
//! failed over to their backup MDP mid-schedule. Fixed-seed tests pin each
//! mechanism in isolation: replication retransmission, digest-driven
//! repair after mailbox loss, the failover handshake, and publication
//! de-duplication when the healed old home comes back talking.

mod common;

use common::{assert_consistent, mild_fault_plan, provider, schema};
use mdv::prelude::*;
use mdv::system::transport::{FaultPlan, LinkFaults};
use mdv::system::MdvSystem;
use mdv_testkit::{prop_assert, prop_assert_eq, property, Source};

const RULES: [&str; 2] = [
    "search CycleProvider c register c where c.serverInformation.memory > 64",
    "search ServerInformation s register s where s.cpu >= 600",
];

/// A backbone-heavy fault plan: every link is lossy and duplicating, so
/// replication, repair, and failover traffic all run degraded.
fn arb_fault_plan(src: &mut Source) -> FaultPlan {
    FaultPlan {
        seed: src.bits(),
        default_link: LinkFaults {
            drop_prob: src.f64_in(0.0..0.25),
            dup_prob: src.f64_in(0.0..0.25),
            jitter_ms: src.u64_in(0..30),
            spike_prob: src.f64_in(0.0..0.10),
            spike_ms: src.u64_in(0..100),
        },
        ..FaultPlan::default()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Register(i64, i64),
    Update(usize, i64, i64),
    Delete(usize),
}

fn arb_ops(src: &mut Source) -> Vec<Op> {
    src.vec(1..10, |src| match src.weighted(&[4, 3, 2]) {
        0 => Op::Register(src.i64_in(0..150), src.i64_in(300..900)),
        1 => Op::Update(src.any_usize(), src.i64_in(0..150), src.i64_in(300..900)),
        _ => Op::Delete(src.any_usize()),
    })
}

/// Applies an op at a named MDP, tracking which documents are live.
fn apply_op(sys: &mut MdvSystem, mdp: &str, op: Op, live: &mut Vec<usize>, next: &mut usize) {
    match op {
        Op::Register(memory, cpu) => {
            let i = *next;
            *next += 1;
            sys.register_document(mdp, &provider(i, "a.hub.org", memory, cpu))
                .unwrap();
            live.push(i);
        }
        Op::Update(pick, memory, cpu) => {
            if live.is_empty() {
                return;
            }
            let i = live[pick % live.len()];
            sys.update_document(mdp, &provider(i, "b.hub.org", memory, cpu))
                .unwrap();
        }
        Op::Delete(pick) => {
            if live.is_empty() {
                return;
            }
            let i = live.remove(pick % live.len());
            sys.delete_document(mdp, &format!("doc{i}.rdf")).unwrap();
        }
    }
}

/// All live MDPs hold byte-identical document sets.
fn assert_backbone_converged(sys: &MdvSystem, when: &str) {
    assert!(sys.backbone_converged(), "backbone divergent {when}");
}

property! {
    /// With any seeded fault plan plus one fail/heal cycle of an MDP, the
    /// system reconverges: anti-entropy makes all MDP document sets
    /// byte-identical, and the oracle passes for every LMR — including the
    /// one that failed over to its backup while its home was down.
    fn backbone_reconverges_under_faults_and_a_fail_heal_cycle(src) cases = 25; {
        let config = NetConfig {
            faults: arb_fault_plan(src),
            ..NetConfig::default()
        };
        let mut sys = MdvSystem::with_net_config(schema(), config);
        for m in ["m1", "m2", "m3"] {
            sys.add_mdp(m).unwrap();
        }
        sys.add_lmr("l1", "m1").unwrap();
        sys.add_lmr("l2", "m2").unwrap();
        sys.set_backup_mdp("l1", "m2").unwrap();
        sys.set_backup_mdp("l2", "m3").unwrap();
        let r1 = sys.subscribe("l1", RULES[0]).unwrap();
        sys.subscribe("l2", RULES[1]).unwrap();

        let mut live: Vec<usize> = Vec::new();
        let mut next = 0usize;
        let mdps = ["m1", "m2", "m3"];
        for (k, op) in arb_ops(src).into_iter().enumerate() {
            apply_op(&mut sys, mdps[k % 3], op, &mut live, &mut next);
        }
        assert_backbone_converged(&sys, "before the failure (reliable replication)");

        // one fail/heal cycle: m1 dies with its mailbox, l1 must fail over
        sys.fail_mdp("m1").unwrap();
        for (k, op) in arb_ops(src).into_iter().enumerate() {
            apply_op(&mut sys, mdps[1 + k % 2], op, &mut live, &mut next);
        }
        // control churn detects the silence: the retransmission budget runs
        // out and l1 re-registers everything at its backup
        sys.unsubscribe("l1", r1).unwrap();
        let r1b = sys.subscribe("l1", RULES[0]).unwrap();
        prop_assert_eq!(sys.lmr("l1").unwrap().mdp(), "m2");
        prop_assert!(!sys.lmr("l1").unwrap().failing_over());

        sys.heal_mdp("m1").unwrap();
        assert_backbone_converged(&sys, "after the heal");

        // a post-heal workload keeps flowing through the healed backbone
        for (k, op) in arb_ops(src).into_iter().enumerate() {
            apply_op(&mut sys, mdps[k % 3], op, &mut live, &mut next);
        }
        sys.repair_backbone(64).unwrap();
        assert_backbone_converged(&sys, "after the post-heal workload");

        // the oracle holds for every LMR against its *current* home
        let l1_home = sys.lmr("l1").unwrap().mdp().to_owned();
        let l2_home = sys.lmr("l2").unwrap().mdp().to_owned();
        assert_consistent(&sys, "l1", &l1_home, &RULES[..1], "at the end (failed-over LMR)");
        assert_consistent(&sys, "l2", &l2_home, &RULES[1..], "at the end");
        let _ = r1b;

        // fully quiescent: nothing unacked anywhere
        for m in mdps {
            prop_assert_eq!(sys.mdp(m).unwrap().unacked_publications(), 0);
            prop_assert_eq!(sys.mdp(m).unwrap().unacked_replications(), 0);
        }
    }
}

#[test]
fn replication_survives_a_lossy_backbone_without_repair() {
    // reliable replication alone (no anti-entropy, no failure) must converge
    // the backbone under loss: the repair machinery stays cold
    let cfg = NetConfig {
        faults: mild_fault_plan(0xbacb_0e5e),
        ..NetConfig::default()
    };
    let mut sys = MdvSystem::with_net_config(schema(), cfg);
    sys.add_mdp("m1").unwrap();
    sys.add_mdp("m2").unwrap();
    for i in 0..5 {
        sys.register_document("m1", &provider(i, "a.hub.org", 100 + i as i64, 700))
            .unwrap();
    }
    sys.update_document("m2", &provider(0, "b.hub.org", 10, 400))
        .unwrap();
    sys.delete_document("m1", "doc1.rdf").unwrap();
    assert!(sys.backbone_converged(), "replication did not converge");
    let stats = sys.network_stats();
    assert_eq!(stats.anti_entropy_rounds, 0);
    assert_eq!(stats.repairs_applied, 0);
    assert_eq!(sys.mdp("m1").unwrap().unacked_replications(), 0);
    assert_eq!(sys.mdp("m2").unwrap().unacked_replications(), 0);
}

#[test]
fn down_peer_heals_via_parked_retransmission_not_repair() {
    // a replication dropped against a down peer survives in the sender's
    // outbox (parked), so the heal converges by ordinary retransmission —
    // the repair machinery stays cold
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("m1").unwrap();
    sys.add_mdp("m2").unwrap();
    sys.fail_mdp("m2").unwrap();
    sys.register_document("m1", &provider(0, "a.hub.org", 128, 700))
        .unwrap();
    assert_eq!(sys.mdp("m1").unwrap().unacked_replications(), 1);
    assert!(sys
        .mdp("m2")
        .unwrap()
        .engine()
        .document("doc0.rdf")
        .is_none());
    sys.heal_mdp("m2").unwrap();
    assert!(sys
        .mdp("m2")
        .unwrap()
        .engine()
        .document("doc0.rdf")
        .is_some());
    assert!(sys.backbone_converged());
    assert_eq!(sys.mdp("m1").unwrap().unacked_replications(), 0);
    assert_eq!(sys.network_stats().repairs_applied, 0);
}

#[test]
fn anti_entropy_repairs_what_a_down_origin_cannot_retransmit() {
    // m3 misses a document whose *origin* (m1) is down when m3 heals: the
    // only live copy-holder, m2, never had an outbox entry for m3
    // (replication is origin-to-peers, not gossip) — the digest exchange is
    // the only path that can restore it
    let mut sys = MdvSystem::new(schema());
    for m in ["m1", "m2", "m3"] {
        sys.add_mdp(m).unwrap();
    }
    sys.fail_mdp("m3").unwrap();
    sys.register_document("m1", &provider(0, "a.hub.org", 128, 700))
        .unwrap();
    sys.fail_mdp("m1").unwrap(); // the origin dies, parked outbox and all
    sys.heal_mdp("m3").unwrap();
    assert!(
        sys.mdp("m3")
            .unwrap()
            .engine()
            .document("doc0.rdf")
            .is_some(),
        "anti-entropy must pull the missed document from m2"
    );
    let stats = sys.network_stats();
    assert!(
        stats.anti_entropy_rounds > 0,
        "no digest round ran: {stats:?}"
    );
    assert!(stats.repairs_applied > 0, "no repair applied: {stats:?}");
    assert!(stats.down_dropped > 0, "the down nodes never dropped mail");
    // the origin comes back; its parked retransmission to m3 is now a
    // version-gated no-op and the whole backbone is byte-identical
    sys.heal_mdp("m1").unwrap();
    assert!(sys.backbone_converged());
    for m in ["m1", "m2", "m3"] {
        assert_eq!(sys.mdp(m).unwrap().unacked_replications(), 0, "{m}");
    }
}

#[test]
fn lmr_fails_over_to_backup_and_resyncs_its_cache() {
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("m1").unwrap();
    sys.add_mdp("m2").unwrap();
    sys.add_lmr("l1", "m1").unwrap();
    sys.set_backup_mdp("l1", "m2").unwrap();
    sys.subscribe("l1", RULES[0]).unwrap();
    sys.register_document("m1", &provider(0, "a.hub.org", 128, 700))
        .unwrap();

    sys.fail_mdp("m1").unwrap();
    // the world changes while l1's home is down: doc0 shrinks below the
    // rule threshold at the surviving MDP, doc1 appears
    sys.update_document("m2", &provider(0, "a.hub.org", 8, 700))
        .unwrap();
    sys.register_document("m2", &provider(1, "b.hub.org", 256, 800))
        .unwrap();
    // control churn exhausts the retransmission budget → failover
    let extra = sys.subscribe("l1", RULES[1]).unwrap();
    assert_eq!(sys.lmr("l1").unwrap().mdp(), "m2", "l1 did not fail over");
    assert!(!sys.lmr("l1").unwrap().failing_over());

    // the Resubscribe snapshot dropped the stale doc0 anchors and pulled
    // doc1: the oracle holds against the new home
    assert_consistent(&sys, "l1", "m2", &RULES, "after failover");
    assert!(!sys.lmr("l1").unwrap().is_cached("doc0.rdf#host"));
    assert!(sys.lmr("l1").unwrap().is_cached("doc1.rdf#host"));
    sys.unsubscribe("l1", extra).unwrap();
    assert_consistent(
        &sys,
        "l1",
        "m2",
        &RULES[..1],
        "after post-failover unsubscribe",
    );
}

#[test]
fn healed_old_home_publications_are_deduplicated_and_retired() {
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("m1").unwrap();
    sys.add_mdp("m2").unwrap();
    sys.add_lmr("l1", "m1").unwrap();
    sys.set_backup_mdp("l1", "m2").unwrap();
    sys.subscribe("l1", RULES[0]).unwrap();
    sys.register_document("m1", &provider(0, "a.hub.org", 128, 700))
        .unwrap();
    sys.fail_mdp("m1").unwrap();
    let probe = sys.subscribe("l1", RULES[1]).unwrap();
    assert_eq!(sys.lmr("l1").unwrap().mdp(), "m2");
    sys.heal_mdp("m1").unwrap();

    // the healed old home repairs its document set and — still holding its
    // stale subscriptions for l1 — publishes to it; l1 acks, discards, and
    // retires the old subscription with a cleanup unsubscribe. New work
    // arrives exactly once, via the new home.
    sys.register_document("m1", &provider(1, "b.hub.org", 256, 800))
        .unwrap();
    sys.repair_backbone(8).unwrap();
    assert_consistent(&sys, "l1", "m2", &RULES, "after the heal");
    assert_eq!(sys.mdp("m1").unwrap().unacked_publications(), 0);
    assert_eq!(sys.mdp("m2").unwrap().unacked_publications(), 0);
    let _ = probe;
}

#[test]
fn delete_recreate_race_with_duplicated_replication_converges() {
    // duplicate-delivery idempotence across the backbone: a document is
    // deleted and immediately recreated at a different MDP while the
    // transport duplicates aggressively — version-gated application must
    // keep the recreate, not resurrect the tombstone
    let mut cfg = NetConfig::default();
    cfg.faults.seed = 0xdead_bee5;
    cfg.faults.default_link = LinkFaults {
        drop_prob: 0.0,
        dup_prob: 0.7,
        jitter_ms: 25,
        spike_prob: 0.0,
        spike_ms: 0,
    };
    let mut sys = MdvSystem::with_net_config(schema(), cfg);
    sys.add_mdp("m1").unwrap();
    sys.add_mdp("m2").unwrap();
    sys.add_lmr("l1", "m2").unwrap();
    sys.subscribe("l1", RULES[0]).unwrap();
    sys.register_document("m1", &provider(0, "a.hub.org", 128, 700))
        .unwrap();
    sys.delete_document("m1", "doc0.rdf").unwrap();
    // recreate the same URI at the *other* MDP with fresh content
    sys.register_document("m2", &provider(0, "b.hub.org", 100, 750))
        .unwrap();
    assert!(sys.backbone_converged(), "delete/recreate diverged");
    let doc = sys.mdp("m1").unwrap().engine().document("doc0.rdf");
    assert!(doc.is_some(), "tombstone resurrected over the recreate");
    assert_consistent(&sys, "l1", "m2", &RULES[..1], "after delete/recreate");
    let stats = sys.network_stats();
    assert!(stats.duplicates_delivered > 0, "no duplicates injected");
}

/// The fixed 3-MDP/2-LMR fail-heal schedule, shared between replication
/// modes. In LWW mode the LMRs fail over to their configured backups and
/// anti-entropy repairs the healed node; in Raft mode re-homing is
/// automatic (LMRs follow the leader) and the healed voter catches up from
/// the replicated log — the end state must satisfy the same oracles either
/// way, plus the stricter identical-committed-state check for Raft.
fn run_fail_heal_schedule(raft: bool) {
    let config = NetConfig {
        faults: mild_fault_plan(0x5eed_fa11),
        ..NetConfig::default()
    };
    let mut sys = MdvSystem::with_net_config(schema(), config);
    if raft {
        sys.enable_raft(0xace).unwrap();
    }
    let mdps = ["m1", "m2", "m3"];
    for m in mdps {
        sys.add_mdp(m).unwrap();
    }
    sys.add_lmr("l1", "m1").unwrap();
    sys.add_lmr("l2", "m2").unwrap();
    if !raft {
        sys.set_backup_mdp("l1", "m2").unwrap();
        sys.set_backup_mdp("l2", "m3").unwrap();
    }
    let r1 = sys.subscribe("l1", RULES[0]).unwrap();
    sys.subscribe("l2", RULES[1]).unwrap();

    let mut live: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let phase1 = [
        Op::Register(128, 700),
        Op::Register(32, 400),
        Op::Update(0, 96, 650),
        Op::Register(200, 800),
        Op::Delete(1),
    ];
    for (k, op) in phase1.into_iter().enumerate() {
        apply_op(&mut sys, mdps[k % 3], op.clone(), &mut live, &mut next);
    }

    // the failure: in Raft mode kill the *leader* (the hardest victim — a
    // new election and LMR re-homing must both happen); in LWW kill l1's
    // home so the failover handshake fires
    let victim = if raft {
        sys.raft_leader().expect("leader before the failure")
    } else {
        "m1".to_owned()
    };
    sys.fail_mdp(&victim).unwrap();
    let survivors: Vec<&str> = mdps.iter().copied().filter(|m| *m != victim).collect();
    let phase2 = [
        Op::Register(150, 850),
        Op::Update(0, 80, 600),
        Op::Delete(0),
    ];
    for (k, op) in phase2.into_iter().enumerate() {
        apply_op(&mut sys, survivors[k % 2], op.clone(), &mut live, &mut next);
    }
    // control churn while the old home is down: detects the silence in LWW
    // (budget exhaustion → backup), rides automatic re-homing in Raft
    sys.unsubscribe("l1", r1).unwrap();
    let _r1b = sys.subscribe("l1", RULES[0]).unwrap();
    if raft {
        let leader = sys.raft_leader().expect("a surviving majority leads");
        assert_ne!(leader, victim);
        assert_eq!(
            sys.lmr("l1").unwrap().mdp(),
            leader,
            "l1 follows the leader"
        );
    } else {
        assert_eq!(sys.lmr("l1").unwrap().mdp(), "m2", "l1 failed over");
    }
    assert!(!sys.lmr("l1").unwrap().failing_over());

    sys.heal_mdp(&victim).unwrap();
    let phase3 = [Op::Register(99, 777), Op::Update(1, 70, 620)];
    for (k, op) in phase3.into_iter().enumerate() {
        apply_op(&mut sys, mdps[k % 3], op.clone(), &mut live, &mut next);
    }
    sys.repair_backbone(64).unwrap();

    if raft {
        common::assert_committed_identical(&sys, "at the end of the shared schedule");
        assert_eq!(
            sys.network_stats().anti_entropy_rounds,
            0,
            "Raft mode must never run LWW anti-entropy"
        );
    }
    assert!(sys.backbone_converged(), "backbone divergent at the end");
    let l1_home = sys.lmr("l1").unwrap().mdp().to_owned();
    let l2_home = sys.lmr("l2").unwrap().mdp().to_owned();
    assert_consistent(
        &sys,
        "l1",
        &l1_home,
        &RULES[..1],
        "shared schedule end (l1)",
    );
    assert_consistent(
        &sys,
        "l2",
        &l2_home,
        &RULES[1..],
        "shared schedule end (l2)",
    );
    for m in mdps {
        assert_eq!(sys.mdp(m).unwrap().unacked_publications(), 0, "{m}");
        assert_eq!(sys.mdp(m).unwrap().unacked_replications(), 0, "{m}");
    }
}

#[test]
fn shared_fail_heal_schedule_converges_in_lww_mode() {
    run_fail_heal_schedule(false);
}

#[test]
fn shared_fail_heal_schedule_converges_in_raft_mode() {
    run_fail_heal_schedule(true);
}

#[test]
fn stranded_lmr_without_backup_parks_and_resumes_on_heal() {
    // no backup configured: the LMR must not fail over, must not spin the
    // clock forever, and must complete its handshakes once the home heals
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("m1").unwrap();
    sys.add_lmr("l1", "m1").unwrap();
    sys.subscribe("l1", RULES[0]).unwrap();
    sys.fail_mdp("m1").unwrap();
    let err = sys.subscribe("l1", RULES[1]).unwrap_err();
    assert!(
        err.to_string().contains("pending"),
        "subscribe against a dead home must park as pending: {err}"
    );
    assert_eq!(sys.lmr("l1").unwrap().mdp(), "m1", "no backup: no failover");
    sys.heal_mdp("m1").unwrap();
    // the parked Subscribe resumes and completes
    sys.register_document("m1", &provider(0, "a.hub.org", 128, 700))
        .unwrap();
    assert_consistent(&sys, "l1", "m1", &RULES, "after the heal");
}
