//! Shared helpers for the system-level integration tests: the paper's
//! cache-consistency oracle (§2.2/§3.5) plus the schema/document builders
//! and fault-plan presets used by `cache_consistency.rs` and
//! `fault_sim.rs`.
//!
//! The oracle is the heart of the test tier: after any sequence of
//! registrations, updates, and deletions — and any amount of message loss,
//! duplication, or reordering the transport injected along the way — every
//! LMR cache must contain **exactly** the resources matching its
//! subscription rules (evaluated directly against the MDP's full database)
//! plus their strong-reference closure, byte-for-byte fresh.

#![allow(dead_code)] // each test binary uses a subset of these helpers

use std::collections::BTreeSet;

use mdv::filter::{query_eval, BaseStore};
use mdv::prelude::*;
use mdv::relstore::StorageEngine;
use mdv::system::transport::{FaultPlan, LinkFaults};

pub fn schema() -> RdfSchema {
    RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()
        .unwrap()
}

pub fn provider(i: usize, host: &str, memory: i64, cpu: i64) -> Document {
    let uri = format!("doc{i}.rdf");
    Document::new(uri.clone())
        .with_resource(
            Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                .with("serverHost", Term::literal(host))
                .with("serverPort", Term::literal((4000 + i).to_string()))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new(&uri, "info")),
                ),
        )
        .with_resource(
            Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                .with("memory", Term::literal(memory.to_string()))
                .with("cpu", Term::literal(cpu.to_string())),
        )
}

/// Computes the expected cache of an LMR: direct evaluation of each rule
/// against the MDP's base data, plus the strong closure.
pub fn expected_cache<S: StorageEngine + Send + Sync>(
    sys: &MdvSystem<S>,
    mdp: &str,
    rules: &[&str],
) -> BTreeSet<String> {
    let engine = sys.mdp(mdp).unwrap().engine();
    let schema = engine.schema();
    let db = engine.db();
    let mut matched: Vec<String> = Vec::new();
    for rule_text in rules {
        let rule = parse_rule(rule_text).unwrap();
        for conj in split_or(&rule) {
            let n = match normalize(&conj, schema) {
                Ok(n) => n,
                Err(mdv::rulelang::Error::Unsatisfiable) => continue,
                Err(e) => panic!("bad rule: {e}"),
            };
            matched.extend(query_eval::evaluate(db, schema, &n).unwrap());
        }
    }
    // strong closure over the MDP's data
    engine
        .strong_closure(&matched)
        .unwrap()
        .into_iter()
        .collect()
}

/// Asserts that an LMR cache matches the oracle exactly, with every cached
/// copy byte-identical to the MDP's current copy.
pub fn assert_consistent<S: StorageEngine + Send + Sync>(
    sys: &MdvSystem<S>,
    lmr: &str,
    mdp: &str,
    rules: &[&str],
    when: &str,
) {
    let cached: BTreeSet<String> = sys.lmr(lmr).unwrap().cached_uris().into_iter().collect();
    let expected = expected_cache(sys, mdp, rules);
    assert_eq!(cached, expected, "cache of {lmr} inconsistent {when}");
    // cached copies must equal the MDP's current copies, byte for byte
    let engine = sys.mdp(mdp).unwrap().engine();
    for uri in &cached {
        let lmr_copy = sys.lmr(lmr).unwrap().cached_resource(uri).unwrap().unwrap();
        let mdp_copy = engine.resource(uri).unwrap().unwrap();
        assert!(
            lmr_copy.same_content(&mdp_copy),
            "stale copy of {uri} at {lmr} {when}"
        );
    }
    // sanity: resource lookup on the MDP's own statements still works
    let _ = BaseStore::resource_exists(engine.db(), "nonexistent#x").unwrap();
}

/// The placement-mode cache-consistency oracle (DESIGN.md §11): under
/// partitioned replication no single MDP holds the full corpus, so the
/// direct-evaluation oracle runs against a *shadow* deployment — a
/// fault-free single-MDP system that replayed the same successful
/// operations. The LMR's cache in the placed system must exactly equal the
/// rule evaluation (plus strong closure) over the shadow's full database,
/// byte for byte.
pub fn assert_consistent_with_shadow<S, T>(
    sys: &MdvSystem<S>,
    lmr: &str,
    shadow: &MdvSystem<T>,
    shadow_mdp: &str,
    rules: &[&str],
    when: &str,
) where
    S: StorageEngine + Send + Sync,
    T: StorageEngine + Send + Sync,
{
    let cached: BTreeSet<String> = sys.lmr(lmr).unwrap().cached_uris().into_iter().collect();
    let expected = expected_cache(shadow, shadow_mdp, rules);
    assert_eq!(cached, expected, "cache of {lmr} inconsistent {when}");
    let engine = shadow.mdp(shadow_mdp).unwrap().engine();
    for uri in &cached {
        let ours = sys.lmr(lmr).unwrap().cached_resource(uri).unwrap().unwrap();
        let truth = engine.resource(uri).unwrap().unwrap();
        assert!(
            ours.same_content(&truth),
            "stale copy of {uri} at {lmr} {when}"
        );
    }
}

/// The Raft-mode convergence oracle (DESIGN.md §9): every live voter must
/// expose *identical committed state* — same applied log prefix (equal
/// `applied` index and equal apply hash-chain value) and byte-identical
/// document sets. This is strictly stronger than the LWW notion of
/// convergence, which only demands equal document sets eventually.
pub fn assert_committed_identical<S: StorageEngine + Send + Sync>(sys: &MdvSystem<S>, when: &str) {
    let mut reference: Option<(String, u64, u64)> = None;
    for name in sys.mdp_names() {
        if sys.is_down(name) {
            continue;
        }
        let probe = sys
            .raft_probe(name)
            .unwrap()
            .unwrap_or_else(|| panic!("{name} is not a raft voter {when}"));
        match &reference {
            None => reference = Some((name.to_owned(), probe.applied, probe.cum_hash)),
            Some((ref_name, applied, cum_hash)) => {
                assert_eq!(
                    probe.applied, *applied,
                    "{name} applied a different prefix than {ref_name} {when}"
                );
                assert_eq!(
                    probe.cum_hash, *cum_hash,
                    "{name} applied different commands than {ref_name} {when}"
                );
            }
        }
    }
    assert!(
        sys.backbone_converged(),
        "identical applied prefixes but divergent document sets {when}"
    );
}

/// A gentle all-links fault plan: a little loss, duplication, and jitter —
/// enough to exercise the at-least-once machinery without making tests
/// crawl through long retry chains.
pub fn mild_fault_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        default_link: LinkFaults {
            drop_prob: 0.05,
            dup_prob: 0.05,
            jitter_ms: 15,
            spike_prob: 0.02,
            spike_ms: 60,
        },
        ..FaultPlan::default()
    }
}
