//! Deterministic fault-injection simulation of the 3-tier system.
//!
//! The paper's cache-consistency guarantee (§2.2/§3.5) is only meaningful
//! if it survives a degraded network. These tests drive the shared
//! cache-consistency oracle (`tests/common/mod.rs`) through randomized
//! fault schedules — message loss up to 30%, duplication, reordering
//! jitter, latency spikes, and timed partitions — generated from the
//! `mdv-testkit` choice stream, so every failing schedule shrinks and
//! replays exactly via `MDV_PROP_SEED`.
//!
//! Alongside the property, fixed-seed tests pin down each fault class in
//! isolation and prove two framing guarantees: the whole schedule is a
//! pure function of `(NetConfig, seed)`, and an inert (zero) fault plan
//! leaves the transport byte-identical to the fault-free default.

mod common;

use std::collections::BTreeSet;

use common::{assert_consistent, expected_cache, provider, schema};
use mdv::prelude::*;
use mdv::system::transport::{FaultPlan, LinkFaults, LogRecord, NetStats};
use mdv::system::MdvSystem;
use mdv_testkit::{prop_assert, prop_assert_eq, property, Source};

const RULES: [&str; 3] = [
    "search CycleProvider c register c where c.serverInformation.memory > 64",
    "search CycleProvider c register c where c.serverHost contains 'hub'",
    "search ServerInformation s register s where s.cpu >= 600",
];

#[derive(Debug, Clone)]
struct Spec {
    host: String,
    memory: i64,
    cpu: i64,
}

fn arb_spec(src: &mut Source) -> Spec {
    Spec {
        host: format!(
            "{}.{}.org",
            src.choose(&["a", "b"]),
            src.choose(&["hub", "edge"])
        ),
        memory: src.i64_in(0..150),
        cpu: src.i64_in(300..900),
    }
}

#[derive(Debug, Clone)]
enum Op {
    Register(Spec),
    Update(usize, Spec),
    Delete(usize),
    /// Unsubscribe an active rule, or re-subscribe a retracted one.
    ToggleRule(usize),
}

fn arb_ops(src: &mut Source) -> Vec<Op> {
    src.vec(1..15, |src| match src.weighted(&[4, 3, 2, 2]) {
        0 => Op::Register(arb_spec(src)),
        1 => Op::Update(src.any_usize(), arb_spec(src)),
        2 => Op::Delete(src.any_usize()),
        _ => Op::ToggleRule(src.any_usize()),
    })
}

/// A randomized fault plan: loss up to 30%, duplication up to 30%,
/// reordering jitter, occasional latency spikes, and sometimes a timed
/// partition of the MDP↔LMR pair. A zeroed choice stream yields the inert
/// plan, so the shrunk minimum of any failure is the fault-free schedule.
fn arb_fault_plan(src: &mut Source) -> FaultPlan {
    let mut plan = FaultPlan {
        seed: src.bits(),
        default_link: LinkFaults {
            drop_prob: src.f64_in(0.0..0.30),
            dup_prob: src.f64_in(0.0..0.30),
            jitter_ms: src.u64_in(0..40),
            spike_prob: src.f64_in(0.0..0.15),
            spike_ms: src.u64_in(0..150),
        },
        ..FaultPlan::default()
    };
    // sometimes hit the publish path harder than the rest of the network
    if src.bool_with(0.3) {
        plan.links.insert(
            ("mdp".into(), "lmr".into()),
            LinkFaults {
                drop_prob: src.f64_in(0.0..0.30),
                dup_prob: src.f64_in(0.0..0.30),
                jitter_ms: src.u64_in(0..60),
                spike_prob: 0.0,
                spike_ms: 0,
            },
        );
    }
    // sometimes cut the pair off entirely for a bounded window
    if src.bool_with(0.3) {
        let from = src.u64_in(0..400);
        let len = src.u64_in(50..400);
        plan.partition_both("mdp", "lmr", from, from + len);
    }
    plan
}

property! {
    /// The cache-consistency oracle holds after every operation of a
    /// randomized workload, for every randomized fault schedule — and the
    /// at-least-once protocol fully quiesces (nothing buffered, nothing
    /// unacked) before each check.
    fn oracle_holds_under_randomized_fault_schedules(src) cases = 50; {
        let config = NetConfig {
            faults: arb_fault_plan(src),
            ..NetConfig::default()
        };
        let ops = arb_ops(src);

        let mut sys = MdvSystem::with_net_config(schema(), config);
        sys.add_mdp("mdp").unwrap();
        sys.add_lmr("lmr", "mdp").unwrap();
        // (rule id, index into RULES) for every currently active rule
        let mut active: Vec<(u64, usize)> = Vec::new();
        let mut retracted: Vec<usize> = Vec::new();
        for (idx, r) in RULES.iter().enumerate() {
            active.push((sys.subscribe("lmr", r).unwrap(), idx));
        }

        let mut live: Vec<usize> = Vec::new();
        let mut next_doc = 0usize;
        for (step, op) in ops.into_iter().enumerate() {
            match op {
                Op::Register(spec) => {
                    let i = next_doc;
                    next_doc += 1;
                    sys.register_document("mdp", &provider(i, &spec.host, spec.memory, spec.cpu))
                        .unwrap();
                    live.push(i);
                }
                Op::Update(pick, spec) => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = live[pick % live.len()];
                    sys.update_document("mdp", &provider(i, &spec.host, spec.memory, spec.cpu))
                        .unwrap();
                }
                Op::Delete(pick) => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = live.remove(pick % live.len());
                    sys.delete_document("mdp", &format!("doc{i}.rdf")).unwrap();
                }
                Op::ToggleRule(pick) => {
                    if !retracted.is_empty() && (active.is_empty() || pick % 2 == 0) {
                        // re-subscribe a retracted rule (fresh id)
                        let idx = retracted.remove(pick % retracted.len());
                        active.push((sys.subscribe("lmr", RULES[idx]).unwrap(), idx));
                    } else if !active.is_empty() {
                        let (id, idx) = active.remove(pick % active.len());
                        sys.unsubscribe("lmr", id).unwrap();
                        retracted.push(idx);
                    }
                }
            }
            // every operation ran to quiescence: nothing may be unacked,
            // parked, or half-applied
            prop_assert_eq!(sys.mdp("mdp").unwrap().unacked_publications(), 0);
            prop_assert_eq!(sys.lmr("lmr").unwrap().buffered_publications(), 0);
            // the oracle holds for exactly the currently active rules
            let texts: Vec<&str> = active.iter().map(|(_, idx)| RULES[*idx]).collect();
            assert_consistent(&sys, "lmr", "mdp", &texts, &format!("after step {step}"));
            // no retracted rule keeps cache entries anchored
            let active_ids: BTreeSet<u64> = active.iter().map(|(id, _)| *id).collect();
            let anchored = sys.lmr("lmr").unwrap().tracker().rules_referenced();
            prop_assert!(
                anchored.is_subset(&active_ids),
                "dead rule still anchors cache entries: {:?} ⊄ {:?}",
                anchored,
                active_ids
            );
        }
    }
}

/// A fixed workload used by the determinism and zero-fault tests.
fn run_fixed_scenario(config: NetConfig) -> (MdvSystem, Vec<LogRecord>, NetStats) {
    let mut sys = MdvSystem::with_net_config(schema(), config);
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("lmr", "mdp").unwrap();
    for r in &RULES[..2] {
        sys.subscribe("lmr", r).unwrap();
    }
    sys.register_document("mdp", &provider(1, "a.hub.org", 128, 700))
        .unwrap();
    sys.register_document("mdp", &provider(2, "b.edge.org", 32, 500))
        .unwrap();
    sys.update_document("mdp", &provider(2, "b.hub.org", 96, 500))
        .unwrap();
    sys.delete_document("mdp", "doc1.rdf").unwrap();
    let log = sys.network().log();
    let stats = sys.network_stats();
    (sys, log, stats)
}

#[test]
fn zero_fault_plan_is_byte_identical_to_default_transport() {
    let (_, base_log, base_stats) = run_fixed_scenario(NetConfig::default());
    // an explicitly-seeded but inert plan must not perturb anything: the
    // fault path draws no randomness when every fault knob is zero
    let mut cfg = NetConfig::default();
    cfg.faults.seed = 0x5eed_cafe;
    assert!(cfg.faults.is_inert());
    let (_, log, stats) = run_fixed_scenario(cfg);
    assert_eq!(base_log, log, "inert plan changed the traffic log");
    assert_eq!(base_stats, stats, "inert plan changed the stats");
    assert_eq!(base_stats.retries, 0);
    assert_eq!(base_stats.duplicates_delivered, 0);
    assert_eq!(base_stats.dropped, 0);
    // the repair machinery must stay completely cold on a healthy network
    assert_eq!(base_stats.anti_entropy_rounds, 0);
    assert_eq!(base_stats.repairs_applied, 0);
    assert_eq!(base_stats.down_dropped, 0);
    for kind in ["replica-digest", "repair-request", "repair-docs"] {
        assert!(
            base_log.iter().all(|r| r.kind != kind),
            "inert run carried a {kind} message"
        );
    }
}

fn faulty_config(seed: u64) -> NetConfig {
    let mut cfg = NetConfig::default();
    cfg.faults.seed = seed;
    cfg.faults.default_link = LinkFaults {
        drop_prob: 0.25,
        dup_prob: 0.20,
        jitter_ms: 30,
        spike_prob: 0.10,
        spike_ms: 120,
    };
    cfg
}

#[test]
fn fault_schedule_is_a_pure_function_of_config_and_seed() {
    let (_, log_a, stats_a) = run_fixed_scenario(faulty_config(7));
    let (_, log_b, stats_b) = run_fixed_scenario(faulty_config(7));
    assert_eq!(log_a, log_b, "same seed must replay the exact schedule");
    assert_eq!(stats_a, stats_b);
    let (_, log_c, _) = run_fixed_scenario(faulty_config(8));
    assert_ne!(
        log_a, log_c,
        "different seeds must explore different faults"
    );
}

#[test]
fn heavy_loss_on_the_publish_path_is_recovered_by_retries() {
    let mut cfg = NetConfig::default();
    cfg.faults.seed = 42;
    // only the MDP→LMR direction is lossy; acks and control flow are clean
    cfg.faults.links.insert(
        ("mdp".into(), "lmr".into()),
        LinkFaults {
            drop_prob: 0.5,
            dup_prob: 0.0,
            jitter_ms: 0,
            spike_prob: 0.0,
            spike_ms: 0,
        },
    );
    let (sys, _, stats) = run_fixed_scenario(cfg);
    assert_consistent(&sys, "lmr", "mdp", &RULES[..2], "after lossy run");
    assert!(stats.dropped > 0, "the loss process never fired: {stats:?}");
    assert!(stats.retries > 0, "drops must be recovered by retries");
    assert_eq!(sys.mdp("mdp").unwrap().unacked_publications(), 0);
}

#[test]
fn duplication_and_reordering_do_not_corrupt_the_cache() {
    let mut cfg = NetConfig::default();
    cfg.faults.seed = 99;
    cfg.faults.default_link = LinkFaults {
        drop_prob: 0.0,
        dup_prob: 0.6,
        jitter_ms: 25,
        spike_prob: 0.0,
        spike_ms: 0,
    };
    let (sys, _, stats) = run_fixed_scenario(cfg);
    assert_consistent(&sys, "lmr", "mdp", &RULES[..2], "after dup/jitter run");
    assert!(
        stats.duplicates_delivered > 0,
        "no duplicate injected: {stats:?}"
    );
    // nothing was lost, so the protocol never had to retransmit
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.dropped, 0);
}

#[test]
fn partition_heals_and_the_cache_catches_up() {
    let mut cfg = NetConfig::default();
    cfg.faults.partition_both("mdp", "lmr", 0, 2000);
    let (sys, _, stats) = run_fixed_scenario(cfg);
    assert_consistent(&sys, "lmr", "mdp", &RULES[..2], "after partition heals");
    assert!(stats.dropped > 0, "partition never black-holed a message");
    assert!(stats.retries > 0, "recovery requires retransmissions");
    assert!(
        stats.clock_ms >= 2000,
        "the retry clock must step past the partition window: {stats:?}"
    );
}

#[test]
fn expected_cache_oracle_matches_live_cache_helper() {
    // sanity-check the shared oracle helper itself: on a quiescent healthy
    // system, oracle and cache agree and are non-trivial
    let (sys, _, _) = run_fixed_scenario(NetConfig::default());
    let expected = expected_cache(&sys, "mdp", &RULES[..2]);
    let cached: BTreeSet<String> = sys.lmr("lmr").unwrap().cached_uris().into_iter().collect();
    assert_eq!(expected, cached);
    assert!(
        !expected.is_empty(),
        "fixed scenario should cache something"
    );
}
