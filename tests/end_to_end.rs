//! End-to-end integration tests spanning all crates: RDF/XML in, 3-tier
//! routing, filter evaluation, cache maintenance, local queries out.

use mdv::prelude::*;
use mdv::workload::scenario::{marketplace_documents, MarketplaceParams};
use mdv::workload::schema::objectglobe_schema;

fn schema() -> RdfSchema {
    RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()
        .unwrap()
}

fn provider_xml(i: usize, host: &str, memory: i64) -> Document {
    parse_document(
        &format!("doc{i}.rdf"),
        &format!(
            r##"<rdf:RDF>
              <CycleProvider rdf:ID="host">
                <serverHost>{host}</serverHost>
                <serverPort>{port}</serverPort>
                <serverInformation rdf:resource="#info"/>
              </CycleProvider>
              <ServerInformation rdf:ID="info">
                <memory>{memory}</memory><cpu>600</cpu>
              </ServerInformation>
            </rdf:RDF>"##,
            port = 4000 + i
        ),
    )
    .unwrap()
}

#[test]
fn xml_to_cache_roundtrip() {
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("lmr", "mdp").unwrap();
    sys.subscribe(
        "lmr",
        "search CycleProvider c register c where c.serverInformation.memory > 64",
    )
    .unwrap();
    sys.register_document("mdp", &provider_xml(1, "a.org", 128))
        .unwrap();
    // the cached copy round-tripped through publication intact
    let cached = sys
        .lmr("lmr")
        .unwrap()
        .cached_resource("doc1.rdf#host")
        .unwrap()
        .unwrap();
    assert_eq!(cached.property("serverHost").unwrap().lexical(), "a.org");
    assert_eq!(cached.property("serverPort").unwrap().as_int(), Some(4001));
    // re-serializing the cached resources (host + strong companion) parses back
    let companion = sys
        .lmr("lmr")
        .unwrap()
        .cached_resource("doc1.rdf#info")
        .unwrap()
        .unwrap();
    let mut doc = Document::new("doc1.rdf");
    doc.add_resource(cached).unwrap();
    doc.add_resource(companion).unwrap();
    let xml = write_document(&doc);
    let reparsed = parse_document("doc1.rdf", &xml).unwrap();
    assert_eq!(reparsed.resources().len(), 2);
}

#[test]
fn or_rules_work_through_the_system() {
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("lmr", "mdp").unwrap();
    sys.subscribe(
        "lmr",
        "search CycleProvider c register c \
         where c.serverHost contains 'alpha' or c.serverInformation.memory > 1000",
    )
    .unwrap();
    sys.register_document("mdp", &provider_xml(1, "alpha.org", 1))
        .unwrap();
    sys.register_document("mdp", &provider_xml(2, "beta.org", 2000))
        .unwrap();
    sys.register_document("mdp", &provider_xml(3, "gamma.org", 1))
        .unwrap();
    let lmr = sys.lmr("lmr").unwrap();
    assert!(
        lmr.is_cached("doc1.rdf#host"),
        "matched via the contains disjunct"
    );
    assert!(
        lmr.is_cached("doc2.rdf#host"),
        "matched via the memory disjunct"
    );
    assert!(!lmr.is_cached("doc3.rdf#host"));
}

#[test]
fn two_lmrs_get_independent_views() {
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("lmr-big", "mdp").unwrap();
    sys.add_lmr("lmr-passau", "mdp").unwrap();
    sys.subscribe(
        "lmr-big",
        "search CycleProvider c register c where c.serverInformation.memory >= 256",
    )
    .unwrap();
    sys.subscribe(
        "lmr-passau",
        "search CycleProvider c register c where c.serverHost contains 'uni-passau.de'",
    )
    .unwrap();
    sys.register_document("mdp", &provider_xml(1, "x.uni-passau.de", 64))
        .unwrap();
    sys.register_document("mdp", &provider_xml(2, "y.example.org", 512))
        .unwrap();
    sys.register_document("mdp", &provider_xml(3, "z.uni-passau.de", 512))
        .unwrap();

    let big = sys.lmr("lmr-big").unwrap().cached_uris();
    let passau = sys.lmr("lmr-passau").unwrap().cached_uris();
    assert!(big.contains(&"doc2.rdf#host".to_owned()));
    assert!(big.contains(&"doc3.rdf#host".to_owned()));
    assert!(!big.contains(&"doc1.rdf#host".to_owned()));
    assert!(passau.contains(&"doc1.rdf#host".to_owned()));
    assert!(passau.contains(&"doc3.rdf#host".to_owned()));
    assert!(!passau.contains(&"doc2.rdf#host".to_owned()));
}

#[test]
fn update_reclassifies_across_lmrs() {
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("lmr-small", "mdp").unwrap();
    sys.add_lmr("lmr-big", "mdp").unwrap();
    sys.subscribe(
        "lmr-small",
        "search CycleProvider c register c where c.serverInformation.memory < 100",
    )
    .unwrap();
    sys.subscribe(
        "lmr-big",
        "search CycleProvider c register c where c.serverInformation.memory >= 100",
    )
    .unwrap();
    sys.register_document("mdp", &provider_xml(1, "a.org", 64))
        .unwrap();
    assert!(sys.lmr("lmr-small").unwrap().is_cached("doc1.rdf#host"));
    assert!(!sys.lmr("lmr-big").unwrap().is_cached("doc1.rdf#host"));
    // the update migrates the provider from one cache to the other
    sys.update_document("mdp", &provider_xml(1, "a.org", 256))
        .unwrap();
    assert!(!sys.lmr("lmr-small").unwrap().is_cached("doc1.rdf#host"));
    assert!(sys.lmr("lmr-big").unwrap().is_cached("doc1.rdf#host"));
}

#[test]
fn marketplace_through_full_stack() {
    let mut sys = MdvSystem::new(objectglobe_schema());
    sys.add_mdp("mdp-a").unwrap();
    sys.add_mdp("mdp-b").unwrap();
    sys.add_lmr("lmr", "mdp-b").unwrap();
    sys.subscribe(
        "lmr",
        "search DataProvider d register d where d.theme = 'astronomy'",
    )
    .unwrap();

    // all documents enter at mdp-a; replication must carry them to mdp-b
    let docs = marketplace_documents(&MarketplaceParams::default());
    for doc in &docs {
        sys.register_document("mdp-a", doc).unwrap();
    }

    // cross-check: the LMR cache equals a direct query at the origin MDP
    let cached = sys.lmr("lmr").unwrap().cached_uris();
    let expected: Vec<String> = sys
        .browse_resources("mdp-a", "DataProvider")
        .unwrap()
        .into_iter()
        .filter(|d| d.property("theme").unwrap().lexical() == "astronomy")
        .map(|d| d.uri().to_string())
        .collect();
    assert!(
        !expected.is_empty(),
        "the generator produces astronomy providers"
    );
    assert_eq!(cached, expected);
}

#[test]
fn unsubscribe_cleans_everything_everywhere() {
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("lmr", "mdp").unwrap();
    let rule = sys
        .subscribe(
            "lmr",
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        )
        .unwrap();
    sys.register_document("mdp", &provider_xml(1, "a.org", 128))
        .unwrap();
    assert_eq!(sys.lmr("lmr").unwrap().cached_uris().len(), 2);
    sys.unsubscribe("lmr", rule).unwrap();
    // the cache is empty and the MDP's rule tables are retracted
    assert!(sys.lmr("lmr").unwrap().cached_uris().is_empty());
    assert!(sys.mdp("mdp").unwrap().engine().graph().is_empty());
}

#[test]
fn late_subscriber_catches_up_through_backfill() {
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("early", "mdp").unwrap();
    sys.add_lmr("late", "mdp").unwrap();
    sys.subscribe(
        "early",
        "search CycleProvider c register c where c.serverInformation.memory > 64",
    )
    .unwrap();
    for i in 0..5 {
        sys.register_document("mdp", &provider_xml(i, "a.org", 128))
            .unwrap();
    }
    // the late subscriber registers the same rule afterwards
    sys.subscribe(
        "late",
        "search CycleProvider c register c where c.serverInformation.memory > 64",
    )
    .unwrap();
    assert_eq!(
        sys.lmr("early").unwrap().cached_uris(),
        sys.lmr("late").unwrap().cached_uris(),
        "backfill gives the late subscriber the identical view"
    );
}

#[test]
fn queries_use_only_local_metadata() {
    // paper §2.2: query processing never leaves the LMR
    let mut sys = MdvSystem::new(schema());
    sys.add_mdp("mdp").unwrap();
    sys.add_lmr("lmr", "mdp").unwrap();
    sys.register_document("mdp", &provider_xml(1, "a.org", 128))
        .unwrap();
    let messages_before = sys.network_stats().messages;
    // no subscription: the cache is empty, so the query sees nothing even
    // though the MDP stores a matching provider
    let hits = sys
        .query("lmr", "search CycleProvider c register c")
        .unwrap();
    assert!(hits.is_empty());
    assert_eq!(
        sys.network_stats().messages,
        messages_before,
        "no network traffic for queries"
    );
}
