//! Panic-freedom fuzzing: every parser and entry point in the workspace
//! must return `Err` on malformed input — never panic — because MDPs accept
//! rule text and documents from remote, untrusted LMRs and clients.

use proptest::prelude::*;

use mdv::filter::FilterEngine;
use mdv::prelude::*;
use mdv::rdf::{parse_schema, xml};
use mdv::relstore::sql;
use mdv::workload::benchmark_schema;

/// Arbitrary garbage plus near-miss inputs built from real token fragments.
fn arb_garbage() -> impl Strategy<Value = String> {
    prop_oneof![
        // raw bytes-ish strings
        "\\PC{0,40}",
        // fragments of valid syntax, shuffled
        prop::collection::vec(
            prop_oneof![
                Just("search".to_owned()),
                Just("register".to_owned()),
                Just("where".to_owned()),
                Just("CycleProvider".to_owned()),
                Just("c".to_owned()),
                Just("c.serverHost".to_owned()),
                Just("contains".to_owned()),
                Just("'uni-passau.de'".to_owned()),
                Just(">".to_owned()),
                Just("64".to_owned()),
                Just("and".to_owned()),
                Just("or".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just("?".to_owned()),
                Just(".".to_owned()),
                Just("''".to_owned()),
                Just("!".to_owned()),
            ],
            0..12
        )
        .prop_map(|v| v.join(" ")),
    ]
}

fn arb_xmlish() -> impl Strategy<Value = String> {
    prop_oneof![
        "\\PC{0,60}",
        prop::collection::vec(
            prop_oneof![
                Just("<rdf:RDF>".to_owned()),
                Just("</rdf:RDF>".to_owned()),
                Just("<CycleProvider rdf:ID=\"h\">".to_owned()),
                Just("</CycleProvider>".to_owned()),
                Just("<p>".to_owned()),
                Just("</p>".to_owned()),
                Just("<p/>".to_owned()),
                Just("text &amp; more".to_owned()),
                Just("&bogus;".to_owned()),
                Just("<!--".to_owned()),
                Just("-->".to_owned()),
                Just("<?pi".to_owned()),
                Just("rdf:resource=\"#x\"".to_owned()),
                Just("\"".to_owned()),
                Just("<".to_owned()),
                Just(">".to_owned()),
            ],
            0..10
        )
        .prop_map(|v| v.join("")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The rule parser never panics.
    #[test]
    fn rule_parser_never_panics(input in arb_garbage()) {
        let _ = parse_rule(&input);
    }

    /// The full subscription pipeline (parse → split → normalize →
    /// typecheck → decompose → merge) never panics, whatever the input.
    #[test]
    fn subscription_pipeline_never_panics(input in arb_garbage()) {
        let mut engine = FilterEngine::new(benchmark_schema());
        let _ = engine.register_subscription(&input);
        // the engine stays usable afterwards
        let _ = engine.register_subscription(
            "search CycleProvider c register c where c.serverPort > 1",
        );
    }

    /// The XML parser never panics.
    #[test]
    fn xml_parser_never_panics(input in arb_xmlish()) {
        let _ = xml::parse(&input);
    }

    /// The RDF document parser never panics.
    #[test]
    fn rdf_parser_never_panics(input in arb_xmlish()) {
        let _ = parse_document("fuzz.rdf", &input);
    }

    /// The schema-text parser never panics.
    #[test]
    fn schema_parser_never_panics(input in "\\PC{0,80}") {
        let _ = parse_schema(&input);
    }

    /// The SQL front end never panics, even on garbage statements.
    #[test]
    fn sql_never_panics(input in arb_garbage()) {
        let mut db = mdv::relstore::Database::new();
        mdv::filter::store::create_base_tables(&mut db).unwrap();
        let _ = sql::execute(&db, &input);
        let _ = sql::execute(&db, &format!("SELECT {input} FROM Statements"));
    }

    /// LMR queries over an empty cache never panic.
    #[test]
    fn lmr_query_never_panics(input in arb_garbage()) {
        let lmr = mdv::system::Lmr::new("l", "m", benchmark_schema());
        let _ = lmr.query(&input);
        let _ = lmr.query_sql(&input);
    }
}
