//! Panic-freedom fuzzing: every parser and entry point in the workspace
//! must return `Err` on malformed input — never panic — because MDPs accept
//! rule text and documents from remote, untrusted LMRs and clients.
//! Runs on `mdv-testkit` at 256 deterministic cases per property.

use std::sync::atomic::{AtomicU64, Ordering};

use mdv::filter::FilterEngine;
use mdv::prelude::*;
use mdv::rdf::{parse_schema, xml};
use mdv::relstore::{
    sql, CrashMode, DiskFaultPlan, DurableEngine, FaultVfs, Vfs, VfsFile, CRASH_MODES,
};
use mdv::system::transport::{FaultPlan, LinkFaults};
use mdv::system::MdvSystem;
use mdv::workload::benchmark_schema;
use mdv_testkit::{prop_assert, property, Source};

mod common;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory for one fuzz case's durable stores.
fn scratch() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "mdv-fuzz-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Arbitrary garbage plus near-miss inputs built from real token fragments.
fn arb_garbage(src: &mut Source) -> String {
    const FRAGMENTS: [&str; 18] = [
        "search",
        "register",
        "where",
        "CycleProvider",
        "c",
        "c.serverHost",
        "contains",
        "'uni-passau.de'",
        ">",
        "64",
        "and",
        "or",
        "(",
        ")",
        "?",
        ".",
        "''",
        "!",
    ];
    if src.bool() {
        // raw printable garbage
        src.printable(0..41)
    } else {
        // fragments of valid syntax, shuffled
        src.vec(0..12, |src| *src.choose(&FRAGMENTS)).join(" ")
    }
}

fn arb_xmlish(src: &mut Source) -> String {
    const FRAGMENTS: [&str; 16] = [
        "<rdf:RDF>",
        "</rdf:RDF>",
        "<CycleProvider rdf:ID=\"h\">",
        "</CycleProvider>",
        "<p>",
        "</p>",
        "<p/>",
        "text &amp; more",
        "&bogus;",
        "<!--",
        "-->",
        "<?pi",
        "rdf:resource=\"#x\"",
        "\"",
        "<",
        ">",
    ];
    if src.bool() {
        src.printable(0..61)
    } else {
        src.vec(0..10, |src| *src.choose(&FRAGMENTS)).concat()
    }
}

property! {
    /// The rule parser never panics.
    fn rule_parser_never_panics(src) cases = 256; {
        let input = arb_garbage(src);
        let _ = parse_rule(&input);
    }

    /// The full subscription pipeline (parse → split → normalize →
    /// typecheck → decompose → merge) never panics, whatever the input.
    fn subscription_pipeline_never_panics(src) cases = 256; {
        let input = arb_garbage(src);
        let mut engine = FilterEngine::new(benchmark_schema());
        let _ = engine.register_subscription(&input);
        // the engine stays usable afterwards
        let _ = engine.register_subscription(
            "search CycleProvider c register c where c.serverPort > 1",
        );
    }

    /// The XML parser never panics.
    fn xml_parser_never_panics(src) cases = 256; {
        let input = arb_xmlish(src);
        let _ = xml::parse(&input);
    }

    /// The RDF document parser never panics.
    fn rdf_parser_never_panics(src) cases = 256; {
        let input = arb_xmlish(src);
        let _ = parse_document("fuzz.rdf", &input);
    }

    /// The schema-text parser never panics.
    fn schema_parser_never_panics(src) cases = 256; {
        let input = src.printable(0..81);
        let _ = parse_schema(&input);
    }

    /// The SQL front end never panics, even on garbage statements.
    fn sql_never_panics(src) cases = 256; {
        let input = arb_garbage(src);
        let mut db = mdv::relstore::Database::new();
        mdv::filter::store::create_base_tables(&mut db).unwrap();
        let _ = sql::execute(&db, &input);
        let _ = sql::execute(&db, &format!("SELECT {input} FROM Statements"));
    }

    /// LMR queries over an empty cache never panic.
    fn lmr_query_never_panics(src) cases = 256; {
        let input = arb_garbage(src);
        let lmr = mdv::system::Lmr::new("l", "m", benchmark_schema());
        let _ = lmr.query(&input);
        let _ = lmr.query_sql(&input);
    }

    /// The whole 3-tier system never panics or spins forever under a
    /// random fault plan: every operation — valid or garbage, on any node —
    /// still runs to quiescence, and logical time stays bounded.
    fn system_tier_never_panics_under_faults(src) cases = 64; {
        let mut config = NetConfig {
            faults: FaultPlan {
                seed: src.bits(),
                default_link: LinkFaults {
                    drop_prob: src.f64_in(0.0..0.30),
                    dup_prob: src.f64_in(0.0..0.30),
                    jitter_ms: src.u64_in(0..50),
                    spike_prob: src.f64_in(0.0..0.20),
                    spike_ms: src.u64_in(0..200),
                },
                ..FaultPlan::default()
            },
            ..NetConfig::default()
        };
        if src.bool() {
            let from = src.u64_in(0..500);
            let until = from + src.u64_in(1..500);
            config.faults.partition_both("m1", "l1", from, until);
        }

        let mut sys = MdvSystem::with_net_config(common::schema(), config);
        // random shard topology (DESIGN.md §8): publications are shard-count
        // invariant, so any layout must survive the same fault schedule
        sys.set_filter_shards(*src.choose(&[1usize, 2, 4, 8]))
            .unwrap();
        sys.add_mdp("m1").unwrap();
        sys.add_mdp("m2").unwrap(); // reliable MDP↔MDP replication
        sys.add_lmr("l1", "m1").unwrap();
        sys.add_lmr("l2", "m2").unwrap();
        if src.bool() {
            // arm failover so node failures also exercise LMR re-homing
            sys.set_backup_mdp("l1", "m2").unwrap();
            sys.set_backup_mdp("l2", "m1").unwrap();
        }

        let mut rule_ids: Vec<(String, u64)> = Vec::new();
        for _ in 0..src.u64_in(1..20) {
            let mdp = (*src.choose(&["m1", "m2"])).to_owned();
            let lmr = (*src.choose(&["l1", "l2"])).to_owned();
            match src.weighted(&[4, 2, 2, 2, 1, 1, 2]) {
                0 => {
                    let i = src.u64_in(0..6) as usize;
                    let doc = common::provider(i, "n.hub.org", src.i64_in(0..200), 500);
                    let _ = sys.register_document(&mdp, &doc);
                }
                1 => {
                    let i = src.u64_in(0..6) as usize;
                    let doc = common::provider(i, "n.edge.org", src.i64_in(0..200), 700);
                    let _ = sys.update_document(&mdp, &doc);
                }
                2 => {
                    let i = src.u64_in(0..6);
                    let _ = sys.delete_document(&mdp, &format!("doc{i}.rdf"));
                }
                3 => {
                    if let Ok(id) = sys.subscribe(
                        &lmr,
                        "search CycleProvider c register c \
                         where c.serverInformation.memory > 64",
                    ) {
                        rule_ids.push((lmr, id));
                    }
                }
                4 => {
                    // garbage rule: must fail cleanly, even mid-faults
                    let _ = sys.subscribe(&lmr, &arb_garbage(src));
                }
                5 => {
                    if let Some(pick) = rule_ids.pop() {
                        let _ = sys.unsubscribe(&pick.0, pick.1);
                    } else {
                        let _ = sys.unsubscribe(&lmr, src.bits());
                    }
                }
                _ => {
                    // flip the node's liveness: fail it if up, heal it if
                    // down — operations against a down MDP must fail
                    // cleanly, never wedge quiescence
                    if sys.is_down(&mdp) {
                        let _ = sys.heal_mdp(&mdp);
                    } else {
                        let _ = sys.fail_mdp(&mdp);
                    }
                }
            }
        }
        for m in ["m1", "m2"] {
            if sys.is_down(m) {
                let _ = sys.heal_mdp(m);
            }
        }
        let stats = sys.network_stats();
        prop_assert!(
            stats.clock_ms < 200_000,
            "logical time ran away: {:?}",
            stats
        );
    }

    /// The durable tier survives arbitrary interleavings of crash-restarts,
    /// fail/heal cycles, and rule churn under faults: no panic, no wedged
    /// quiescence, and logical time stays bounded.
    fn durable_tier_never_panics_under_crashes_and_failures(src) cases = 16; {
        let root = scratch();
        let config = NetConfig {
            faults: FaultPlan {
                seed: src.bits(),
                default_link: LinkFaults {
                    drop_prob: src.f64_in(0.0..0.25),
                    dup_prob: src.f64_in(0.0..0.25),
                    jitter_ms: src.u64_in(0..30),
                    spike_prob: 0.0,
                    spike_ms: 0,
                },
                ..FaultPlan::default()
            },
            ..NetConfig::default()
        };
        let mut sys: MdvSystem<DurableEngine> =
            MdvSystem::durable_with_net_config(common::schema(), config);
        // random shard topology: crash-restarts must recover every shard's
        // WAL, whatever the layout (DESIGN.md §8)
        sys.set_filter_shards(*src.choose(&[1usize, 2, 4])).unwrap();
        sys.add_mdp_durable("m1", root.join("m1")).unwrap();
        sys.add_mdp_durable("m2", root.join("m2")).unwrap();
        sys.add_lmr_durable("l1", "m1", root.join("l1")).unwrap();
        sys.set_backup_mdp("l1", "m2").unwrap();

        let mut rule_ids: Vec<u64> = Vec::new();
        for _ in 0..src.u64_in(1..14) {
            let mdp = (*src.choose(&["m1", "m2"])).to_owned();
            match src.weighted(&[4, 2, 2, 2, 2, 2]) {
                0 => {
                    let i = src.u64_in(0..5) as usize;
                    let doc = common::provider(i, "n.hub.org", src.i64_in(0..200), 500);
                    let _ = sys.register_document(&mdp, &doc);
                }
                1 => {
                    let i = src.u64_in(0..5);
                    let _ = sys.delete_document(&mdp, &format!("doc{i}.rdf"));
                }
                2 => {
                    if let Ok(id) = sys.subscribe(
                        "l1",
                        "search CycleProvider c register c \
                         where c.serverInformation.memory > 64",
                    ) {
                        rule_ids.push(id);
                    }
                }
                3 => {
                    if let Some(id) = rule_ids.pop() {
                        let _ = sys.unsubscribe("l1", id);
                    }
                }
                4 => {
                    // a crash-restart loses volatile state but must
                    // recover everything mirrored in the WAL
                    if !sys.is_down(&mdp) {
                        sys.crash_and_restart_mdp(&mdp).unwrap();
                    }
                }
                _ => {
                    if sys.is_down(&mdp) {
                        let _ = sys.heal_mdp(&mdp);
                    } else {
                        let _ = sys.fail_mdp(&mdp);
                    }
                }
            }
        }
        for m in ["m1", "m2"] {
            if sys.is_down(m) {
                let _ = sys.heal_mdp(m);
            }
        }
        let stats = sys.network_stats();
        prop_assert!(
            stats.clock_ms < 500_000,
            "logical time ran away: {:?}",
            stats
        );
        drop(sys);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Combined transport-fault × disk-fault torture (DESIGN.md §12): link
    /// loss, duplication and jitter run *concurrently* with injected disk
    /// faults — write errors, short writes, failed syncs, silent bit rot —
    /// plus raw garbage appended straight into store files and whole-disk
    /// crashes under every crash mode. Operations may fail with typed
    /// errors, nodes may become unrecoverable (detected corruption), but
    /// nothing may panic and logical time stays bounded.
    fn combined_transport_and_disk_faults_never_panic(src) cases = 12; {
        let config = NetConfig {
            faults: FaultPlan {
                seed: src.bits(),
                default_link: LinkFaults {
                    drop_prob: src.f64_in(0.0..0.25),
                    dup_prob: src.f64_in(0.0..0.25),
                    jitter_ms: src.u64_in(0..30),
                    spike_prob: 0.0,
                    spike_ms: 0,
                },
                ..FaultPlan::default()
            },
            ..NetConfig::default()
        };
        let disk = FaultVfs::new(src.bits());
        disk.arm(false); // the stores must at least finish creating
        let mut sys: MdvSystem<DurableEngine<FaultVfs>> =
            MdvSystem::durable_on(common::schema(), config);
        sys.set_filter_shards(*src.choose(&[1usize, 2])).unwrap();
        sys.add_mdp_durable_on("m1", "/m1", disk.clone()).unwrap();
        sys.add_lmr_durable_on("l1", "m1", "/l1", disk.clone()).unwrap();
        disk.set_plan(DiskFaultPlan {
            read_err: src.f64_in(0.0..0.05),
            write_err: src.f64_in(0.0..0.10),
            short_write: src.f64_in(0.0..0.10),
            sync_err: src.f64_in(0.0..0.10),
            corrupt: src.f64_in(0.0..0.05),
        });
        disk.arm(true);

        let mut rule_ids: Vec<u64> = Vec::new();
        for _ in 0..src.u64_in(1..14) {
            match src.weighted(&[4, 2, 2, 2, 1, 1]) {
                0 => {
                    let i = src.u64_in(0..5) as usize;
                    let doc = common::provider(i, "n.hub.org", src.i64_in(0..200), 500);
                    let _ = sys.register_document("m1", &doc);
                }
                1 => {
                    let i = src.u64_in(0..5);
                    let _ = sys.delete_document("m1", &format!("doc{i}.rdf"));
                }
                2 => {
                    match sys.subscribe(
                        "l1",
                        "search CycleProvider c register c \
                         where c.serverInformation.memory > 64",
                    ) {
                        Ok(id) => rule_ids.push(id),
                        Err(_) => {
                            if let Some(id) = rule_ids.pop() {
                                let _ = sys.unsubscribe("l1", id);
                            }
                        }
                    }
                }
                3 => {
                    // a whole-disk crash under a random mode, then both
                    // nodes reopen from whatever survived; recovery may
                    // refuse (typed) when bit rot landed in the wrong place
                    disk.crash(*src.choose(&CRASH_MODES));
                    let _ = sys.crash_and_restart_mdp("m1");
                    let _ = sys.crash_and_restart_lmr("l1");
                    let _ = sys.run_to_quiescence();
                }
                4 => {
                    // raw garbage appended straight into a random store
                    // file, as an external writer (or firmware bug) would
                    let files: Vec<std::path::PathBuf> =
                        disk.dump().keys().cloned().collect();
                    if !files.is_empty() {
                        let path = files[src.usize_in(0..files.len())].clone();
                        let garbage = src.bytes(1..24);
                        if let Ok(mut f) = disk.open_append(&path, false) {
                            let _ = f.append(&garbage);
                            let _ = f.sync();
                        }
                    }
                }
                _ => {
                    let _ = sys.run_to_quiescence();
                }
            }
        }
        // the wedged-or-corrupt end state is acceptable; an unbounded clock
        // or a panic is not. When a restart refuses its recovery oracle the
        // node stays gone and every later quiescence call burns its full
        // stall budget against the ghost (256 rounds x 1600 ms retry cap
        // ~ 410 s of virtual time per call, up to 15 calls), so the bound
        // proves terminating pumps rather than a quiet network.
        let _ = sys.run_to_quiescence();
        let stats = sys.network_stats();
        prop_assert!(
            stats.clock_ms < 10_000_000,
            "logical time ran away: {:?}",
            stats
        );
        // restart on a healed disk: whatever state the fault schedule left
        // behind must either reopen or fail with a typed error
        disk.arm(false);
        disk.crash(CrashMode::DurableOnly);
        let _ = sys.crash_and_restart_mdp("m1");
        let _ = sys.crash_and_restart_lmr("l1");
        let _ = sys.run_to_quiescence();
    }

    /// The Raft-replicated backbone never panics and never wedges the
    /// logical clock, whatever the fault plan throws at it: random loss,
    /// duplication, jitter, timed partitions between voters, fail/heal
    /// cycles, full crash-restarts, and garbage rule text — all interleaved.
    /// Writes may fail `Unavailable` while no quorum is reachable; nothing
    /// may panic or spin.
    fn raft_tier_never_panics_under_faults_and_crashes(src) cases = 12; {
        let root = scratch();
        let voters = ["m1", "m2", "m3"];
        let mut config = NetConfig {
            faults: FaultPlan {
                seed: src.bits(),
                default_link: LinkFaults {
                    drop_prob: src.f64_in(0.0..0.25),
                    dup_prob: src.f64_in(0.0..0.25),
                    jitter_ms: src.u64_in(0..30),
                    spike_prob: 0.0,
                    spike_ms: 0,
                },
                ..FaultPlan::default()
            },
            ..NetConfig::default()
        };
        if src.bool() {
            let a = *src.choose(&voters);
            let b = *src.choose(&voters);
            if a != b {
                let from = src.u64_in(0..2_000);
                config.faults.partition_both(a, b, from, from + src.u64_in(1..3_000));
            }
        }
        let mut sys: MdvSystem<DurableEngine> =
            MdvSystem::durable_with_net_config(common::schema(), config);
        sys.enable_raft(src.bits()).unwrap();
        for m in voters {
            sys.add_mdp_durable(m, root.join(m)).unwrap();
        }
        sys.add_lmr_durable("l1", "m1", root.join("l1")).unwrap();

        let mut rule_ids: Vec<u64> = Vec::new();
        for _ in 0..src.u64_in(1..12) {
            let mdp = (*src.choose(&voters)).to_owned();
            match src.weighted(&[4, 2, 2, 1, 2, 2]) {
                0 => {
                    let i = src.u64_in(0..5) as usize;
                    let doc = common::provider(i, "n.hub.org", src.i64_in(0..200), 500);
                    let _ = sys.register_document(&mdp, &doc);
                }
                1 => {
                    let i = src.u64_in(0..5);
                    let _ = sys.delete_document(&mdp, &format!("doc{i}.rdf"));
                }
                2 => {
                    if let Ok(id) = sys.subscribe(
                        "l1",
                        "search CycleProvider c register c \
                         where c.serverInformation.memory > 64",
                    ) {
                        rule_ids.push(id);
                    }
                }
                3 => {
                    // garbage rule text must fail cleanly through the log too
                    let _ = sys.subscribe("l1", &arb_garbage(src));
                    if let Some(id) = rule_ids.pop() {
                        let _ = sys.unsubscribe("l1", id);
                    }
                }
                4 => {
                    if !sys.is_down(&mdp) {
                        sys.crash_and_restart_mdp(&mdp).unwrap();
                    }
                }
                _ => {
                    if sys.is_down(&mdp) {
                        let _ = sys.heal_mdp(&mdp);
                    } else {
                        let _ = sys.fail_mdp(&mdp);
                    }
                }
            }
        }
        for m in voters {
            if sys.is_down(m) {
                let _ = sys.heal_mdp(m);
            }
        }
        let stats = sys.network_stats();
        prop_assert!(
            stats.clock_ms < 500_000,
            "logical time ran away: {:?}",
            stats
        );
        drop(sys);
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// Linearizability smoke for the Raft backbone: once a registration has
/// been acknowledged (committed through the log), it survives *any* single
/// voter crash-restarting — including the leader that acknowledged it —
/// and stays readable at every voter.
#[test]
fn raft_committed_registration_survives_any_single_node_crash() {
    for crashed in ["m1", "m2", "m3"] {
        let root = scratch();
        let mut sys: MdvSystem<DurableEngine> = MdvSystem::new_durable(common::schema());
        sys.enable_raft(99).unwrap();
        for m in ["m1", "m2", "m3"] {
            sys.add_mdp_durable(m, root.join(m)).unwrap();
        }
        let doc = common::provider(0, "a.hub.org", 128, 700);
        sys.register_document("m1", &doc).unwrap(); // acknowledged = committed
        sys.crash_and_restart_mdp(crashed).unwrap();
        sys.run_to_quiescence().unwrap();
        for m in ["m1", "m2", "m3"] {
            assert!(
                sys.mdp(m).unwrap().engine().document("doc0.rdf").is_some(),
                "committed doc0 lost on {m} after {crashed} crash-restarted"
            );
        }
        // the backbone still accepts and commits new writes
        sys.register_document(crashed, &common::provider(1, "b.hub.org", 96, 650))
            .unwrap();
        assert!(sys.backbone_converged());
        drop(sys);
        let _ = std::fs::remove_dir_all(&root);
    }
}
