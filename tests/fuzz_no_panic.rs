//! Panic-freedom fuzzing: every parser and entry point in the workspace
//! must return `Err` on malformed input — never panic — because MDPs accept
//! rule text and documents from remote, untrusted LMRs and clients.
//! Runs on `mdv-testkit` at 256 deterministic cases per property.

use mdv::filter::FilterEngine;
use mdv::prelude::*;
use mdv::rdf::{parse_schema, xml};
use mdv::relstore::sql;
use mdv::workload::benchmark_schema;
use mdv_testkit::{property, Source};

/// Arbitrary garbage plus near-miss inputs built from real token fragments.
fn arb_garbage(src: &mut Source) -> String {
    const FRAGMENTS: [&str; 18] = [
        "search",
        "register",
        "where",
        "CycleProvider",
        "c",
        "c.serverHost",
        "contains",
        "'uni-passau.de'",
        ">",
        "64",
        "and",
        "or",
        "(",
        ")",
        "?",
        ".",
        "''",
        "!",
    ];
    if src.bool() {
        // raw printable garbage
        src.printable(0..41)
    } else {
        // fragments of valid syntax, shuffled
        src.vec(0..12, |src| *src.choose(&FRAGMENTS)).join(" ")
    }
}

fn arb_xmlish(src: &mut Source) -> String {
    const FRAGMENTS: [&str; 16] = [
        "<rdf:RDF>",
        "</rdf:RDF>",
        "<CycleProvider rdf:ID=\"h\">",
        "</CycleProvider>",
        "<p>",
        "</p>",
        "<p/>",
        "text &amp; more",
        "&bogus;",
        "<!--",
        "-->",
        "<?pi",
        "rdf:resource=\"#x\"",
        "\"",
        "<",
        ">",
    ];
    if src.bool() {
        src.printable(0..61)
    } else {
        src.vec(0..10, |src| *src.choose(&FRAGMENTS)).concat()
    }
}

property! {
    /// The rule parser never panics.
    fn rule_parser_never_panics(src) cases = 256; {
        let input = arb_garbage(src);
        let _ = parse_rule(&input);
    }

    /// The full subscription pipeline (parse → split → normalize →
    /// typecheck → decompose → merge) never panics, whatever the input.
    fn subscription_pipeline_never_panics(src) cases = 256; {
        let input = arb_garbage(src);
        let mut engine = FilterEngine::new(benchmark_schema());
        let _ = engine.register_subscription(&input);
        // the engine stays usable afterwards
        let _ = engine.register_subscription(
            "search CycleProvider c register c where c.serverPort > 1",
        );
    }

    /// The XML parser never panics.
    fn xml_parser_never_panics(src) cases = 256; {
        let input = arb_xmlish(src);
        let _ = xml::parse(&input);
    }

    /// The RDF document parser never panics.
    fn rdf_parser_never_panics(src) cases = 256; {
        let input = arb_xmlish(src);
        let _ = parse_document("fuzz.rdf", &input);
    }

    /// The schema-text parser never panics.
    fn schema_parser_never_panics(src) cases = 256; {
        let input = src.printable(0..81);
        let _ = parse_schema(&input);
    }

    /// The SQL front end never panics, even on garbage statements.
    fn sql_never_panics(src) cases = 256; {
        let input = arb_garbage(src);
        let mut db = mdv::relstore::Database::new();
        mdv::filter::store::create_base_tables(&mut db).unwrap();
        let _ = sql::execute(&db, &input);
        let _ = sql::execute(&db, &format!("SELECT {input} FROM Statements"));
    }

    /// LMR queries over an empty cache never panic.
    fn lmr_query_never_panics(src) cases = 256; {
        let input = arb_garbage(src);
        let lmr = mdv::system::Lmr::new("l", "m", benchmark_schema());
        let _ = lmr.query(&input);
        let _ = lmr.query_sql(&input);
    }
}
