//! Crash/restart recovery of durable nodes (DESIGN.md §6).
//!
//! Nodes built on the WAL+snapshot backend must survive losing *all* of
//! their volatile state: the randomized property below runs rule churn and
//! document traffic under injected network faults, crashes MDPs and LMRs at
//! arbitrary points of the schedule — sometimes tearing the final WAL
//! record first, as a real crash mid-append would — and requires the
//! recovered deployment to reconverge until the cache-consistency oracle
//! (`tests/common/mod.rs`) holds again. `crash_and_restart_*` additionally
//! verify internally that snapshot + WAL replay reproduces the pre-crash
//! database byte-for-byte.
//!
//! Deterministic companions pin the torn-tail case, GC no-resurrection
//! through recovery, and snapshot-as-compaction.

mod common;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use common::{assert_consistent, mild_fault_plan, provider, schema};
use mdv::prelude::*;
use mdv::relstore::DurableEngine;
use mdv::system::MdvSystem;
use mdv_testkit::{prop_assert, prop_assert_eq, property, Source};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory for one deployment's stores.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mdv-crash-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Removes a scratch tree, including the `-r<k>` sibling stores a rebuilt
/// MDP creates next to its original directory.
fn cleanup(root: &Path) {
    let _ = std::fs::remove_dir_all(root);
}

/// Simulates a crash mid-append: bolts garbage onto the current WAL file.
/// Everything the node acted on is already synced, so recovery must simply
/// truncate this suffix.
fn tear_wal_tail(dir: &Path, epoch: u64, garbage: &[u8]) {
    use std::io::Write;
    let path = dir.join(format!("wal-{epoch}"));
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap();
    f.write_all(garbage).unwrap();
}

fn durable_two_tier(root: &Path, config: NetConfig) -> MdvSystem<DurableEngine> {
    let mut sys = MdvSystem::durable_with_net_config(schema(), config);
    sys.add_mdp_durable("mdp", root.join("mdp")).unwrap();
    sys.add_lmr_durable("lmr", "mdp", root.join("lmr")).unwrap();
    sys
}

const RULES: [&str; 3] = [
    "search CycleProvider c register c where c.serverInformation.memory > 64",
    "search CycleProvider c register c where c.serverHost contains 'hub'",
    "search ServerInformation s register s where s.cpu >= 600",
];

#[derive(Debug, Clone)]
struct Spec {
    host: String,
    memory: i64,
    cpu: i64,
}

fn arb_spec(src: &mut Source) -> Spec {
    Spec {
        host: format!(
            "{}.{}.org",
            src.choose(&["a", "b"]),
            src.choose(&["hub", "edge"])
        ),
        memory: src.i64_in(0..150),
        cpu: src.i64_in(300..900),
    }
}

#[derive(Debug, Clone)]
enum Op {
    Register(Spec),
    Update(usize, Spec),
    Delete(usize),
    /// Unsubscribe an active rule, or re-subscribe a retracted one.
    ToggleRule(usize),
    /// Crash + restart the MDP; `true` tears the final WAL record first.
    CrashMdp(bool),
    /// Crash + restart the LMR; `true` tears the final WAL record first.
    CrashLmr(bool),
}

fn arb_ops(src: &mut Source) -> Vec<Op> {
    src.vec(2..14, |src| match src.weighted(&[4, 2, 2, 2, 2, 2]) {
        0 => Op::Register(arb_spec(src)),
        1 => Op::Update(src.any_usize(), arb_spec(src)),
        2 => Op::Delete(src.any_usize()),
        3 => Op::ToggleRule(src.any_usize()),
        4 => Op::CrashMdp(src.bool_with(0.5)),
        _ => Op::CrashLmr(src.bool_with(0.5)),
    })
}

property! {
    /// After every step of a randomized workload with rule churn — and
    /// crash/restarts of either node at arbitrary points, with and without
    /// a torn final WAL record — the recovered deployment reconverges and
    /// the cache-consistency oracle holds, with nothing left buffered or
    /// unacked (the at-least-once `pubseq` state survived the crash).
    fn oracle_holds_across_crash_restarts(src) cases = 60; {
        let config = NetConfig {
            faults: mild_fault_plan(src.bits()),
            ..NetConfig::default()
        };
        let root = scratch("prop");
        let mut sys = durable_two_tier(&root, config);

        let mut active: Vec<(u64, usize)> = Vec::new();
        let mut retracted: Vec<usize> = Vec::new();
        for (idx, r) in RULES.iter().enumerate() {
            active.push((sys.subscribe("lmr", r).unwrap(), idx));
        }

        let mut live: Vec<usize> = Vec::new();
        let mut next_doc = 0usize;
        for (step, op) in arb_ops(src).into_iter().enumerate() {
            match op {
                Op::Register(spec) => {
                    let i = next_doc;
                    next_doc += 1;
                    sys.register_document("mdp", &provider(i, &spec.host, spec.memory, spec.cpu))
                        .unwrap();
                    live.push(i);
                }
                Op::Update(pick, spec) => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = live[pick % live.len()];
                    sys.update_document("mdp", &provider(i, &spec.host, spec.memory, spec.cpu))
                        .unwrap();
                }
                Op::Delete(pick) => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = live.remove(pick % live.len());
                    sys.delete_document("mdp", &format!("doc{i}.rdf")).unwrap();
                }
                Op::ToggleRule(pick) => {
                    if !retracted.is_empty() && (active.is_empty() || pick % 2 == 0) {
                        let idx = retracted.remove(pick % retracted.len());
                        active.push((sys.subscribe("lmr", RULES[idx]).unwrap(), idx));
                    } else if !active.is_empty() {
                        let (id, idx) = active.remove(pick % active.len());
                        sys.unsubscribe("lmr", id).unwrap();
                        retracted.push(idx);
                    }
                }
                Op::CrashMdp(torn) => {
                    if torn {
                        let store = sys.mdp("mdp").unwrap().engine().storage();
                        tear_wal_tail(store.dir(), store.epoch(), b"\xde\xad\xbe");
                    }
                    sys.crash_and_restart_mdp("mdp").unwrap();
                    sys.run_to_quiescence().unwrap();
                }
                Op::CrashLmr(torn) => {
                    if torn {
                        let store = sys.lmr("lmr").unwrap().storage();
                        tear_wal_tail(store.dir(), store.epoch(), &[0xff; 7]);
                    }
                    sys.crash_and_restart_lmr("lmr").unwrap();
                    sys.run_to_quiescence().unwrap();
                }
            }
            prop_assert_eq!(sys.mdp("mdp").unwrap().unacked_publications(), 0);
            prop_assert_eq!(sys.lmr("lmr").unwrap().buffered_publications(), 0);
            let texts: Vec<&str> = active.iter().map(|(_, idx)| RULES[*idx]).collect();
            assert_consistent(&sys, "lmr", "mdp", &texts, &format!("after step {step}"));
        }
        drop(sys);
        cleanup(&root);
    }
}

#[test]
fn mdp_crash_restart_preserves_documents_and_subscriptions() {
    let root = scratch("mdp-det");
    let mut sys = durable_two_tier(&root, NetConfig::default());
    sys.subscribe("lmr", RULES[0]).unwrap();
    sys.register_document("mdp", &provider(1, "a.hub.org", 128, 700))
        .unwrap();
    sys.register_document("mdp", &provider(2, "b.edge.org", 32, 500))
        .unwrap();

    sys.crash_and_restart_mdp("mdp").unwrap();
    sys.run_to_quiescence().unwrap();

    // documents survived into the rebuilt engine
    assert!(sys
        .mdp("mdp")
        .unwrap()
        .engine()
        .document("doc1.rdf")
        .is_some());
    assert!(sys
        .mdp("mdp")
        .unwrap()
        .engine()
        .document("doc2.rdf")
        .is_some());
    assert_consistent(&sys, "lmr", "mdp", &RULES[..1], "after MDP restart");

    // the restored subscription still routes new publications; the restored
    // pubseq state means the LMR accepts them rather than parking them
    sys.register_document("mdp", &provider(3, "c.hub.org", 256, 800))
        .unwrap();
    assert!(sys.lmr("lmr").unwrap().is_cached("doc3.rdf#host"));
    assert_consistent(
        &sys,
        "lmr",
        "mdp",
        &RULES[..1],
        "after post-restart traffic",
    );
    cleanup(&root);
}

#[test]
fn sharded_mdp_recovers_every_shard_wal_after_crash_mid_batch() {
    let root = scratch("sharded");
    let mut sys = MdvSystem::durable_with_net_config(schema(), NetConfig::default());
    sys.set_filter_shards(4).unwrap();
    sys.add_mdp_durable("mdp", root.join("mdp")).unwrap();
    sys.add_lmr_durable("lmr", "mdp", root.join("lmr")).unwrap();

    // one store — and one WAL — per filter shard (DESIGN.md §8): shard 0
    // owns the base directory, shards 1..4 its -s<k> siblings
    for shard_dir in ["mdp", "mdp-s1", "mdp-s2", "mdp-s3"] {
        assert!(
            root.join(shard_dir).is_dir(),
            "missing shard store {shard_dir}"
        );
    }

    for r in RULES {
        sys.subscribe("lmr", r).unwrap();
    }
    for i in 0..4 {
        sys.register_document("mdp", &provider(i, "a.hub.org", 128, 700))
            .unwrap();
    }

    // a partial batch is volatile state: doc7 is queued, not yet filtered,
    // and must vanish in the crash exactly like in the unsharded scenario
    sys.set_batch_size("mdp", Some(100)).unwrap();
    sys.register_document("mdp", &provider(7, "b.hub.org", 128, 700))
        .unwrap();
    assert_eq!(sys.mdp("mdp").unwrap().pending_documents(), 1);

    // crash_and_restart_mdp internally byte-verifies that *each* shard's
    // snapshot+WAL replay reproduces that shard's pre-crash database
    sys.crash_and_restart_mdp("mdp").unwrap();
    sys.run_to_quiescence().unwrap();

    let mdp = sys.mdp("mdp").unwrap();
    assert_eq!(mdp.engine().shard_count(), 4, "shard topology survives");
    assert_eq!(mdp.pending_documents(), 0, "pending batch is volatile");
    assert!(
        mdp.engine().document("doc7.rdf").is_none(),
        "unflushed batch must not resurrect"
    );
    for i in 0..4 {
        assert!(
            mdp.engine().document(&format!("doc{i}.rdf")).is_some(),
            "flushed doc{i} lost in recovery"
        );
    }
    assert_consistent(&sys, "lmr", "mdp", &RULES, "after sharded restart");

    // post-crash traffic still routes through re-registered subscriptions
    sys.register_document("mdp", &provider(9, "c.hub.org", 256, 800))
        .unwrap();
    assert!(sys.lmr("lmr").unwrap().is_cached("doc9.rdf#host"));
    assert_consistent(&sys, "lmr", "mdp", &RULES, "after post-restart traffic");
    cleanup(&root);
}

#[test]
fn lmr_crash_restart_reconverges_with_torn_final_wal_record() {
    let root = scratch("lmr-torn");
    let mut sys = durable_two_tier(&root, NetConfig::default());
    sys.subscribe("lmr", RULES[0]).unwrap();
    sys.register_document("mdp", &provider(1, "a.hub.org", 128, 700))
        .unwrap();
    assert!(sys.lmr("lmr").unwrap().is_cached("doc1.rdf#host"));

    // a crash mid-append leaves a torn record; recovery truncates it
    let store = sys.lmr("lmr").unwrap().storage();
    tear_wal_tail(store.dir(), store.epoch(), b"torn-final-record");
    sys.crash_and_restart_lmr("lmr").unwrap();
    sys.run_to_quiescence().unwrap();

    assert!(sys.lmr("lmr").unwrap().is_cached("doc1.rdf#host"));
    assert!(sys.lmr("lmr").unwrap().is_cached("doc1.rdf#info"));
    assert_consistent(&sys, "lmr", "mdp", &RULES[..1], "after torn-tail restart");

    // sequence numbers continue where they left off
    sys.update_document("mdp", &provider(1, "a.hub.org", 16, 700))
        .unwrap();
    assert!(!sys.lmr("lmr").unwrap().is_cached("doc1.rdf#host"));
    cleanup(&root);
}

#[test]
fn local_metadata_survives_lmr_crash() {
    let root = scratch("lmr-local");
    let mut sys = durable_two_tier(&root, NetConfig::default());
    let local = Document::new("local.rdf").with_resource(
        Resource::new(UriRef::new("local.rdf", "s"), "ServerInformation")
            .with("memory", Term::literal("512"))
            .with("cpu", Term::literal("1000")),
    );
    sys.register_local_metadata("lmr", &local).unwrap();

    sys.crash_and_restart_lmr("lmr").unwrap();
    sys.run_to_quiescence().unwrap();

    assert!(sys.lmr("lmr").unwrap().is_cached("local.rdf#s"));
    // still marked local: the GC may not collect it
    sys.collect_garbage_at("lmr").unwrap();
    assert!(sys.lmr("lmr").unwrap().is_cached("local.rdf#s"));
    let hits = sys
        .query(
            "lmr",
            "search ServerInformation s register s where s.memory > 100",
        )
        .unwrap();
    assert_eq!(hits.len(), 1);
    cleanup(&root);
}

#[test]
fn gc_deletions_are_durable_and_nothing_resurrects_after_recovery() {
    let root = scratch("gc");
    let mut sys = durable_two_tier(&root, NetConfig::default());
    let rule = sys.subscribe("lmr", RULES[0]).unwrap();
    for i in 0..4 {
        sys.register_document("mdp", &provider(i, "a.hub.org", 128, 700))
            .unwrap();
    }
    assert_eq!(sys.lmr("lmr").unwrap().cached_uris().len(), 8);

    // unsubscribe runs the GC; its deletions are WAL-logged
    sys.unsubscribe("lmr", rule).unwrap();
    assert!(sys.lmr("lmr").unwrap().cached_uris().is_empty());

    sys.crash_and_restart_lmr("lmr").unwrap();
    sys.run_to_quiescence().unwrap();
    assert!(
        sys.lmr("lmr").unwrap().cached_uris().is_empty(),
        "collected resources resurrected by recovery"
    );
    assert_consistent(&sys, "lmr", "mdp", &[], "after GC + restart");
    cleanup(&root);
}

#[test]
fn compaction_truncates_the_wal_and_preserves_state() {
    let root = scratch("compact");
    let mut sys = durable_two_tier(&root, NetConfig::default());
    sys.subscribe("lmr", RULES[0]).unwrap();
    for i in 0..6 {
        sys.register_document("mdp", &provider(i, "a.hub.org", 128, 700))
            .unwrap();
    }
    let before = sys.lmr("lmr").unwrap().storage().wal_bytes();
    assert!(before > 0, "traffic must have produced WAL bytes");

    // snapshot-as-compaction: epoch bumps, WAL restarts empty
    let epoch_before = sys.lmr("lmr").unwrap().storage().epoch();
    sys.compact_lmr("lmr").unwrap();
    sys.compact_mdp("mdp").unwrap();
    let store = sys.lmr("lmr").unwrap().storage();
    assert_eq!(store.wal_bytes(), 0);
    assert!(store.epoch() > epoch_before);

    // a compacted store recovers exactly like a WAL-heavy one
    sys.crash_and_restart_lmr("lmr").unwrap();
    sys.crash_and_restart_mdp("mdp").unwrap();
    sys.run_to_quiescence().unwrap();
    assert_consistent(
        &sys,
        "lmr",
        "mdp",
        &RULES[..1],
        "after compaction + restart",
    );
    cleanup(&root);
}

property! {
    /// Pinned-seed smoke of the crash property: the three seeds CI runs
    /// explicitly (`MDV_PROP_SEED=1`, `31337`, `20020226`) must keep passing
    /// regardless of how the ambient seed rotates.
    fn crash_recovery_reference_check_never_trips(src) cases = 8; {
        let root = scratch("ref");
        let mut sys = durable_two_tier(&root, NetConfig::default());
        sys.subscribe("lmr", RULES[0]).unwrap();
        let n = src.i64_in(1..6) as usize;
        for i in 0..n {
            sys.register_document("mdp", &provider(i, "a.hub.org", 70 + i as i64, 700)).unwrap();
        }
        // both restart paths re-verify replay == pre-crash state internally
        sys.crash_and_restart_mdp("mdp").unwrap();
        sys.crash_and_restart_lmr("lmr").unwrap();
        sys.run_to_quiescence().unwrap();
        prop_assert!(sys.mdp("mdp").unwrap().engine().document("doc0.rdf").is_some());
        assert_consistent(&sys, "lmr", "mdp", &RULES[..1], "after double restart");
        drop(sys);
        cleanup(&root);
    }
}
