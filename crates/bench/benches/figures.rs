//! Micro-benchmarks on the in-tree `mdv-testkit` bench runner, one group
//! per paper figure plus the ablations. These use reduced parameter grids
//! so `cargo bench` completes quickly; the `figures` binary runs the full
//! sweeps and prints the series the paper plots.
//!
//! Iteration counts come from `MDV_BENCH_ITERS` (default 10 timed + 2
//! warmup per benchmark); each group prints an aligned table plus one JSON
//! line per benchmark for machine consumption.

use mdv_bench::{build_engine, build_engine_with_config, build_naive};
use mdv_filter::FilterConfig;
use mdv_testkit::bench::BenchGroup;
use mdv_workload::{benchmark_documents, BenchParams, RuleType};

const RULE_COUNT: u64 = 1_000;
const BATCHES: [u64; 3] = [1, 10, 100];

fn bench_rule_type(name: &str, rule_type: RuleType, fraction: f64) {
    let mut group = BenchGroup::new(name);
    let base = build_engine(rule_type, RULE_COUNT);
    let params = BenchParams {
        rule_count: RULE_COUNT,
        comp_match_fraction: fraction,
    };
    for batch in BATCHES {
        let docs = benchmark_documents(0..batch, &params);
        group.bench_with_setup(
            &batch.to_string(),
            || base.clone(),
            |mut engine| engine.register_batch(&docs).expect("registers"),
        );
    }
    group.finish();
}

/// Figure 11: OID rules over batch sizes.
fn fig11() {
    bench_rule_type("fig11_oid", RuleType::Oid, 0.0);
}

/// Figure 12: PATH rules over batch sizes.
fn fig12() {
    bench_rule_type("fig12_path", RuleType::Path, 0.0);
}

/// Figure 13: COMP rules (10% matching) over batch sizes.
fn fig13() {
    bench_rule_type("fig13_comp", RuleType::Comp, 0.1);
}

/// Figure 14: JOIN rules over batch sizes.
fn fig14() {
    bench_rule_type("fig14_join", RuleType::Join, 0.0);
}

/// Figure 15: COMP rules over matched fractions (fixed batch of 10).
fn fig15() {
    let mut group = BenchGroup::new("fig15_comp_fraction");
    let base = build_engine(RuleType::Comp, RULE_COUNT);
    for fraction in [0.01, 0.1, 0.5] {
        let params = BenchParams {
            rule_count: RULE_COUNT,
            comp_match_fraction: fraction,
        };
        let docs = benchmark_documents(0..10, &params);
        group.bench_with_setup(
            &format!("{:.0}pct", fraction * 100.0),
            || base.clone(),
            |mut engine| engine.register_batch(&docs).expect("registers"),
        );
    }
    group.finish();
}

/// Ablation A: the filter against the naive evaluate-every-rule baseline.
fn ablation_naive() {
    let mut group = BenchGroup::new("ablation_naive_path");
    let params = BenchParams {
        rule_count: RULE_COUNT,
        comp_match_fraction: 0.1,
    };
    let docs = benchmark_documents(0..10, &params);

    let filter_base = build_engine(RuleType::Path, RULE_COUNT);
    group.bench_with_setup(
        "filter",
        || filter_base.clone(),
        |mut engine| engine.register_batch(&docs).expect("registers"),
    );
    let naive_base = build_naive(RuleType::Path, RULE_COUNT);
    group.bench_with_setup(
        "naive",
        || naive_base.clone(),
        |mut engine| engine.register_batch(&docs).expect("registers"),
    );
    group.finish();
}

/// Ablation B: rule groups (shared probes) on vs off.
fn ablation_groups() {
    let mut group = BenchGroup::new("ablation_rule_groups_join");
    let params = BenchParams {
        rule_count: RULE_COUNT,
        comp_match_fraction: 0.1,
    };
    let docs = benchmark_documents(0..10, &params);
    for (label, use_groups) in [("grouped", true), ("ungrouped", false)] {
        let base = build_engine_with_config(
            RuleType::Join,
            RULE_COUNT,
            FilterConfig {
                use_rule_groups: use_groups,
                ..FilterConfig::default()
            },
        );
        group.bench_with_setup(
            label,
            || base.clone(),
            |mut engine| engine.register_batch(&docs).expect("registers"),
        );
    }
    group.finish();
}

/// Ablation C: update and delete against plain registration.
fn ablation_updates() {
    let mut group = BenchGroup::new("ablation_update_protocol");
    let params = BenchParams {
        rule_count: RULE_COUNT,
        comp_match_fraction: 0.1,
    };
    let docs = benchmark_documents(0..10, &params);
    let base = build_engine(RuleType::Path, RULE_COUNT);

    group.bench_with_setup(
        "register",
        || base.clone(),
        |mut engine| engine.register_batch(&docs).expect("registers"),
    );

    // an engine with the documents already present, for update/delete
    let mut loaded = base.clone();
    loaded.register_batch(&docs).expect("registers");
    let updates: Vec<_> = {
        let params2 = BenchParams {
            rule_count: RULE_COUNT,
            comp_match_fraction: 0.1,
        };
        // same URIs, shifted memory → one removal plus one addition each
        (0..10u64)
            .map(|i| {
                let d = mdv_workload::documents::benchmark_document(i, &params2);
                rebuild_with_memory(&d, i + 100)
            })
            .collect()
    };
    group.bench_with_setup(
        "update",
        || loaded.clone(),
        |mut engine| {
            for u in &updates {
                engine.update_document(u).expect("updates");
            }
        },
    );
    group.bench_with_setup(
        "delete",
        || loaded.clone(),
        |mut engine| {
            for d in &docs {
                engine.delete_document(d.uri()).expect("deletes");
            }
        },
    );
    group.finish();
}

fn rebuild_with_memory(doc: &mdv_rdf::Document, memory: u64) -> mdv_rdf::Document {
    use mdv_rdf::{Document, Resource, Term};
    let mut out = Document::new(doc.uri());
    for res in doc.resources() {
        let mut copy = Resource::new(res.uri().clone(), res.class());
        for (prop, term) in res.properties() {
            if prop == "memory" {
                copy.add(prop.clone(), Term::literal(memory.to_string()));
            } else {
                copy.add(prop.clone(), term.clone());
            }
        }
        out.add_resource(copy).expect("copy preserves validity");
    }
    out
}

fn main() {
    fig11();
    fig12();
    fig13();
    fig14();
    fig15();
    ablation_naive();
    ablation_groups();
    ablation_updates();
}
