//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! cargo run -p mdv-bench --bin figures --release -- all
//! cargo run -p mdv-bench --bin figures --release -- fig12 --full
//! cargo run -p mdv-bench --bin figures --release -- fig12 --threads 4
//! cargo run -p mdv-bench --bin figures --release -- thread-scaling --full
//! ```
//!
//! Subcommands: `fig11` `fig12` `fig13` `fig14` `fig15`
//! `ablation-naive` `ablation-groups` `ablation-updates` `thread-scaling`
//! `shard-scaling` `matching-scaling` `wal-overhead` `recovery-torture`
//! `backbone-repair` `backbone-consensus` `placement-scaling` `all`.
//! `--full` runs the paper-sized rule bases (up to 100,000 rules); the
//! default sizes finish in a few minutes on a laptop. `--threads N` runs
//! the figure sweeps with the parallel filter on N pool workers
//! (publications are byte-identical for any N; only wall-clock changes).
//! `--backend durable` runs the figure sweeps through the WAL+snapshot
//! storage engine instead of the in-memory database (group commit and
//! fsync on the measured path; single-threaded, smaller rule bases).
//! `thread-scaling` sweeps N itself (1/2/4/8) on the Figure-12 PATH
//! workload and writes machine-readable results to
//! `BENCH_filter_scaling.json`; `shard-scaling` sweeps the filter shard
//! count (1/2/4/8, DESIGN.md §8) on the same workload and writes
//! `BENCH_shard_scaling.json`; `matching-scaling` compares scan,
//! inverted-index, and index+subsumption trigger matching on the full-text
//! `contains` workload at varying overlap ratios (DESIGN.md §10), asserts
//! the three paths publish byte-identically, and writes
//! `BENCH_matching_scaling.json`; `wal-overhead` compares the two backends on
//! the Figure-11/12 workloads and writes `BENCH_wal_overhead.json`;
//! `recovery-torture` drives the durable engine over a seeded
//! fault-injecting VFS (DESIGN.md §12) at increasing disk-fault
//! probabilities, crashes it under rotating crash modes, and writes
//! `BENCH_recovery.json` — crash-recovery latency plus snapshot fall-back
//! and corruption-refusal rates, gated on zero committed-write loss;
//! `backbone-repair` drives a 3-MDP backbone through a fail/heal cycle at
//! increasing loss rates and writes `BENCH_backbone_repair.json` (logical
//! time, not wall-clock); `backbone-consensus` runs the same 3-MDP
//! deployment under LWW gossip and under Raft (DESIGN.md §9) and contrasts
//! write latency, fail/heal reconvergence, and partition behaviour in
//! `BENCH_backbone_consensus.json`; `placement-scaling` sweeps MDP count ×
//! replication factor on the partitioned backbone (DESIGN.md §11), gates
//! the `R = all` cell byte-identical against legacy full replication, and
//! writes `BENCH_placement_scaling.json`. The `--threads`/`--backend`
//! flags do not apply to those simulated-backbone subcommands.

use std::env;
use std::io::Write;
use std::path::PathBuf;

use mdv_bench::{
    ablation_groups, ablation_naive, ablation_updates, render_csv, sweep_durable,
    sweep_fractions_threaded, sweep_threaded, wal_overhead_point, Measurement, BATCH_SIZES,
    BATCH_SIZES_QUICK,
};
use mdv_testkit::bench::{json_line, measure, BenchOptions};
use mdv_workload::RuleType;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    Mem,
    Durable,
}

struct Config {
    full: bool,
    min_elapsed_ms: f64,
    threads: usize,
    backend: Backend,
}

impl Config {
    fn batches(&self) -> &'static [u64] {
        if self.full {
            &BATCH_SIZES
        } else {
            &BATCH_SIZES_QUICK
        }
    }

    /// One sweep, on whichever backend was selected. The durable path
    /// rebuilds its engine per repetition (no cheap clone of a WAL), so it
    /// runs single-threaded and ignores `--threads`.
    fn sweep(&self, rule_type: RuleType, rule_count: u64, fraction: f64) -> Vec<Measurement> {
        match self.backend {
            Backend::Mem => sweep_threaded(
                rule_type,
                rule_count,
                fraction,
                self.batches(),
                self.min_elapsed_ms,
                self.threads,
            ),
            Backend::Durable => {
                let scratch = wal_scratch_dir();
                let rows = sweep_durable(
                    rule_type,
                    rule_count,
                    fraction,
                    self.batches(),
                    self.min_elapsed_ms,
                    &scratch,
                );
                let _ = std::fs::remove_dir_all(&scratch);
                rows
            }
        }
    }

    /// Durable sweeps rebuild a full rule base per repetition; scale the
    /// rule counts down so the smoke stays minutes, not hours.
    fn scale(&self, rule_counts: &[u64]) -> Vec<u64> {
        match self.backend {
            Backend::Mem => rule_counts.to_vec(),
            Backend::Durable => rule_counts.iter().map(|&rc| (rc / 10).max(100)).collect(),
        }
    }
}

fn wal_scratch_dir() -> PathBuf {
    std::env::temp_dir().join(format!("mdv-figures-wal-{}", std::process::id()))
}

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let mut threads = 1usize;
    let mut backend = Backend::Mem;
    let mut commands: Vec<&str> = Vec::new();
    let mut iter = args.iter().map(String::as_str);
    while let Some(arg) = iter.next() {
        match arg {
            "--full" => {}
            "--threads" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--threads needs a value");
                    std::process::exit(2);
                });
                threads = value.parse().unwrap_or_else(|_| {
                    eprintln!("--threads must be an integer, got '{value}'");
                    std::process::exit(2);
                });
                threads = threads.max(1);
            }
            "--backend" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--backend needs a value (mem|durable)");
                    std::process::exit(2);
                });
                backend = match value {
                    "mem" => Backend::Mem,
                    "durable" => Backend::Durable,
                    other => {
                        eprintln!("--backend must be 'mem' or 'durable', got '{other}'");
                        std::process::exit(2);
                    }
                };
            }
            other => commands.push(other),
        }
    }
    let command = commands.first().copied().unwrap_or("all");
    let config = Config {
        full,
        min_elapsed_ms: if full { 200.0 } else { 50.0 },
        threads,
        backend,
    };

    match command {
        "fig11" => fig11(&config),
        "fig12" => fig12(&config),
        "fig13" => fig13(&config),
        "fig14" => fig14(&config),
        "fig15" => fig15(&config),
        "ablation-naive" => run_ablation_naive(&config),
        "ablation-groups" => run_ablation_groups(&config),
        "ablation-updates" => run_ablation_updates(&config),
        "thread-scaling" => run_thread_scaling(&config),
        "shard-scaling" => run_shard_scaling(&config),
        "matching-scaling" => run_matching_scaling(&config),
        "wal-overhead" => run_wal_overhead(&config),
        "recovery-torture" => run_recovery_torture(&config),
        "backbone-repair" => run_backbone_repair(&config),
        "backbone-consensus" => run_backbone_consensus(&config),
        "placement-scaling" => run_placement_scaling(&config),
        "all" => {
            fig11(&config);
            fig12(&config);
            fig13(&config);
            fig14(&config);
            fig15(&config);
            run_ablation_naive(&config);
            run_ablation_groups(&config);
            run_ablation_updates(&config);
            run_thread_scaling(&config);
            run_shard_scaling(&config);
            run_matching_scaling(&config);
            run_wal_overhead(&config);
            run_recovery_torture(&config);
            run_backbone_repair(&config);
            run_backbone_consensus(&config);
            run_placement_scaling(&config);
        }
        other => {
            eprintln!("unknown command '{other}'");
            eprintln!(
                "usage: figures [fig11|fig12|fig13|fig14|fig15|ablation-naive|\
                 ablation-groups|ablation-updates|thread-scaling|shard-scaling|\
                 matching-scaling|wal-overhead|recovery-torture|backbone-repair|\
                 backbone-consensus|placement-scaling|all] [--full] [--threads N] \
                 [--backend mem|durable]"
            );
            std::process::exit(2);
        }
    }
}

fn banner(title: &str, detail: &str) {
    println!("\n=== {title} ===");
    println!("{detail}");
}

fn print_rows(rows: &[Measurement]) {
    print!("{}", render_csv(rows));
}

/// Figure 11: OID rules — average registration cost vs batch size; the
/// curves for different rule-base sizes coincide (string-equality rules are
/// probed through a full-key hash index).
fn fig11(config: &Config) {
    let rule_counts: &[u64] = if config.full {
        &[10_000, 100_000]
    } else {
        &[1_000, 10_000]
    };
    banner(
        "Figure 11: OID rules",
        "expected shape: cost falls with batch size then flattens; curves for \
         all rule-base sizes nearly identical",
    );
    let mut rows = Vec::new();
    for rc in config.scale(rule_counts) {
        rows.extend(config.sweep(RuleType::Oid, rc, 0.0));
    }
    print_rows(&rows);
}

/// Figure 12: PATH rules — cost depends on the rule-base size (partition
/// scans over the numeric-equality trigger table) and amortizes with batches.
fn fig12(config: &Config) {
    let rule_counts: &[u64] = if config.full {
        &[1_000, 10_000, 100_000]
    } else {
        &[1_000, 10_000]
    };
    banner(
        "Figure 12: PATH rules",
        "expected shape: cost falls with batch size then flattens; larger rule \
         bases are uniformly more expensive",
    );
    let mut rows = Vec::new();
    for rc in config.scale(rule_counts) {
        rows.extend(config.sweep(RuleType::Path, rc, 0.0));
    }
    print_rows(&rows);
}

/// Figure 13: COMP rules matching 10% of the rule base — small batches are
/// preferable; cost depends on the rule-base size.
fn fig13(config: &Config) {
    // the paper plots 1k and 10k rule bases for COMP; both fit the quick run
    let rule_counts: &[u64] = &[1_000, 10_000];
    banner(
        "Figure 13: COMP rules (10% of rule base)",
        "expected shape: per-document cost roughly flat-to-rising with batch \
         size; larger rule bases are more expensive",
    );
    let mut rows = Vec::new();
    for rc in config.scale(rule_counts) {
        rows.extend(config.sweep(RuleType::Comp, rc, 0.1));
    }
    print_rows(&rows);
}

/// Figure 14: JOIN rules — like PATH but with the full filter pipeline
/// (three triggers, an identity join, a reference join per rule).
fn fig14(config: &Config) {
    let rule_counts: &[u64] = if config.full {
        &[1_000, 10_000]
    } else {
        &[1_000, 5_000]
    };
    banner(
        "Figure 14: JOIN rules",
        "expected shape: like PATH with higher absolute cost; rule-base size \
         dependence remains",
    );
    let mut rows = Vec::new();
    for rc in config.scale(rule_counts) {
        rows.extend(config.sweep(RuleType::Join, rc, 0.0));
    }
    print_rows(&rows);
}

/// Figure 15: 10,000 COMP rules — varying matched percentage for several
/// batch sizes.
fn fig15(config: &Config) {
    let rule_count = config.scale(&[if config.full { 10_000 } else { 2_000 }])[0];
    let fractions = [0.01, 0.02, 0.05, 0.1, 0.2, 0.5];
    let batches: &[u64] = &[1, 10, 100, 1000];
    banner(
        "Figure 15: COMP rules, varying matched percentage",
        "expected shape: higher matched percentage costs more at every batch size",
    );
    let rows = match config.backend {
        Backend::Mem => sweep_fractions_threaded(
            rule_count,
            &fractions,
            batches,
            config.min_elapsed_ms,
            config.threads,
        ),
        Backend::Durable => {
            let scratch = wal_scratch_dir();
            let mut rows = Vec::new();
            for &f in &fractions {
                rows.extend(sweep_durable(
                    RuleType::Comp,
                    rule_count,
                    f,
                    batches,
                    config.min_elapsed_ms,
                    &scratch,
                ));
            }
            let _ = std::fs::remove_dir_all(&scratch);
            rows
        }
    };
    print_rows(&rows);
}

/// Ablation A: filter vs naive evaluate-every-rule baseline.
fn run_ablation_naive(config: &Config) {
    let rule_counts: &[u64] = if config.full {
        &[100, 1_000, 10_000]
    } else {
        &[100, 1_000]
    };
    banner(
        "Ablation A: filter vs naive baseline (PATH rules, batch 100)",
        "expected shape: naive cost grows linearly with the rule base; the \
         filter's trigger index keeps growth far below linear",
    );
    println!("rule_count,filter_ms_per_doc,naive_ms_per_doc,speedup");
    for (f, n) in ablation_naive(RuleType::Path, rule_counts, 100, config.min_elapsed_ms) {
        println!(
            "{},{:.5},{:.5},{:.1}x",
            f.rule_count,
            f.avg_ms_per_doc,
            n.avg_ms_per_doc,
            n.avg_ms_per_doc / f.avg_ms_per_doc
        );
    }
}

/// Ablation B: rule groups (shared probes) on vs off.
fn run_ablation_groups(config: &Config) {
    let rule_count = if config.full { 10_000 } else { 2_000 };
    banner(
        "Ablation B: rule groups on vs off (JOIN rules, batch 100)",
        "expected shape: identical matches; grouped evaluation is at most as \
         expensive (probe sharing)",
    );
    let (grouped, ungrouped) = ablation_groups(rule_count, 100, config.min_elapsed_ms);
    println!("variant,rule_count,ms_per_doc,matches");
    println!(
        "grouped,{},{:.5},{}",
        grouped.rule_count, grouped.avg_ms_per_doc, grouped.matches
    );
    println!(
        "ungrouped,{},{:.5},{}",
        ungrouped.rule_count, ungrouped.avg_ms_per_doc, ungrouped.matches
    );
}

/// Ablation C: the three-pass update protocol.
fn run_ablation_updates(config: &Config) {
    let rule_count = if config.full { 10_000 } else { 1_000 };
    let docs = if config.full { 500 } else { 200 };
    banner(
        "Ablation C: update/delete protocol (PATH rules)",
        "expected shape: updates cost a small multiple of registration (three \
         filter passes, §3.5); deletes similar",
    );
    let (register, update, delete) = ablation_updates(rule_count, docs);
    println!("operation,ms_per_doc");
    println!("register,{register:.5}");
    println!("update,{update:.5}");
    println!("delete,{delete:.5}");
    println!("update/register ratio: {:.2}", update / register);
}

/// Thread scaling: batch registration of the Figure-12 PATH workload on
/// 1/2/4/8 pool workers. Publications are asserted byte-identical across
/// thread counts before anything is timed; results go to stdout and, as
/// testkit bench-runner JSON lines, to `BENCH_filter_scaling.json`.
fn run_thread_scaling(config: &Config) {
    use mdv_bench::build_engine;
    use mdv_workload::{benchmark_documents, BenchParams};

    let (rule_counts, batch): (&[u64], u64) = if config.full {
        (&[10_000, 100_000], 1000)
    } else {
        (&[1_000, 10_000], 100)
    };
    let thread_counts = [1usize, 2, 4, 8];
    banner(
        "Thread scaling: PATH rules, parallel batch registration",
        "expected shape: total batch time falls with the worker count up to \
         the machine's core count, publications identical at every point",
    );
    // the default runner iteration count (10) is sized for micro-benches;
    // a 100k-rule batch registration runs for tens of seconds, so use a
    // smaller count unless MDV_BENCH_ITERS asks otherwise
    let opts = if std::env::var_os("MDV_BENCH_ITERS").is_some() {
        BenchOptions::from_env()
    } else {
        BenchOptions {
            warmup_iters: 1,
            iters: if config.full { 3 } else { 5 },
        }
    };

    let mut json_lines: Vec<String> = Vec::new();
    println!("rule_count,batch,threads,median_ms,ms_per_doc,speedup_vs_1thread");
    for &rc in rule_counts {
        let base = build_engine(RuleType::Path, rc);
        let params = BenchParams {
            rule_count: rc,
            comp_match_fraction: 0.1,
        };
        let docs = benchmark_documents(0..batch, &params);
        // determinism gate: every thread count must publish the same bytes
        let reference = {
            let mut engine = base.clone();
            engine.register_batch(&docs).expect("reference registers")
        };
        let group = format!("filter_scaling_path_{rc}rules_batch{batch}");
        let mut baseline_ns = 0u64;
        for &threads in &thread_counts {
            {
                let mut engine = base.clone();
                engine.set_threads(threads);
                let pubs = engine.register_batch(&docs).expect("scaling registers");
                assert_eq!(
                    pubs, reference,
                    "publications diverged at threads={threads} (rules={rc})"
                );
            }
            let stats = measure(
                opts,
                || {
                    let mut engine = base.clone();
                    engine.set_threads(threads);
                    engine
                },
                |mut engine| {
                    engine.register_batch(&docs).expect("scaling registers");
                },
            );
            if threads == 1 {
                baseline_ns = stats.median_ns;
            }
            println!(
                "{},{},{},{:.3},{:.5},{:.2}x",
                rc,
                batch,
                threads,
                stats.median_ns as f64 / 1e6,
                stats.median_ns as f64 / 1e6 / batch as f64,
                baseline_ns as f64 / stats.median_ns as f64
            );
            json_lines.push(json_line(&group, &format!("threads_{threads}"), &stats));
        }
    }

    let path = "BENCH_filter_scaling.json";
    let mut file =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    for line in &json_lines {
        writeln!(file, "{line}").expect("write scaling results");
    }
    println!("wrote {} results to {path}", json_lines.len());
}

/// Shard scaling: batch registration of the Figure-12 PATH workload with
/// the filter partitioned across 1/2/4/8 shards (DESIGN.md §8), each shard
/// running the read-heavy phases on its own scoped thread. Publications are
/// asserted byte-identical against the shards=1 reference before anything
/// is timed; results go to stdout and, as testkit bench-runner JSON lines,
/// to `BENCH_shard_scaling.json`. `--threads` sets the *per-shard* pool
/// width (default 1: shard parallelism only).
fn run_shard_scaling(config: &Config) {
    use mdv_bench::build_sharded_engine;
    use mdv_workload::{benchmark_documents, BenchParams};

    let (rule_counts, batch): (&[u64], u64) = if config.full {
        (&[10_000, 100_000], 1000)
    } else {
        (&[1_000, 10_000], 100)
    };
    let shard_counts = [1usize, 2, 4, 8];
    banner(
        "Shard scaling: PATH rules, sharded batch registration",
        "expected shape: total batch time falls with the shard count up to \
         the machine's core count (flat on single-CPU hosts), publications \
         identical at every point",
    );
    let opts = if std::env::var_os("MDV_BENCH_ITERS").is_some() {
        BenchOptions::from_env()
    } else {
        BenchOptions {
            warmup_iters: 1,
            iters: if config.full { 3 } else { 5 },
        }
    };

    let mut json_lines: Vec<String> = Vec::new();
    println!("rule_count,batch,shards,median_ms,ms_per_doc,speedup_vs_1shard");
    for &rc in rule_counts {
        let params = BenchParams {
            rule_count: rc,
            comp_match_fraction: 0.1,
        };
        let docs = benchmark_documents(0..batch, &params);
        let reference = {
            let mut engine = build_sharded_engine(RuleType::Path, rc, 1, 1);
            engine.register_batch(&docs).expect("reference registers")
        };
        let group = format!("shard_scaling_path_{rc}rules_batch{batch}");
        let mut baseline_ns = 0u64;
        for &shards in &shard_counts {
            // the shard count is fixed at construction, so each point
            // prepares its own rule base
            let base = build_sharded_engine(RuleType::Path, rc, shards, config.threads);
            {
                let mut engine = base.clone();
                let pubs = engine.register_batch(&docs).expect("scaling registers");
                assert_eq!(
                    pubs, reference,
                    "publications diverged at shards={shards} (rules={rc})"
                );
            }
            let stats = measure(
                opts,
                || base.clone(),
                |mut engine| {
                    engine.register_batch(&docs).expect("scaling registers");
                },
            );
            if shards == 1 {
                baseline_ns = stats.median_ns;
            }
            println!(
                "{},{},{},{:.3},{:.5},{:.2}x",
                rc,
                batch,
                shards,
                stats.median_ns as f64 / 1e6,
                stats.median_ns as f64 / 1e6 / batch as f64,
                baseline_ns as f64 / stats.median_ns as f64
            );
            json_lines.push(json_line(&group, &format!("shards_{shards}"), &stats));
        }
    }

    let path = "BENCH_shard_scaling.json";
    let mut file =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    for line in &json_lines {
        writeln!(file, "{line}").expect("write shard-scaling results");
    }
    println!("wrote {} results to {path}", json_lines.len());
}

/// Matching scaling (DESIGN.md §10): batch registration of the full-text
/// `contains` workload under the three trigger-matching strategies —
/// per-partition scan, inverted token postings, and postings plus the
/// subscription-subsumption frontier — across rule-base sizes and
/// covering-overlap ratios. Publications *and* Figure-9 traces are
/// asserted byte-identical against the scan reference before anything is
/// timed (the same gate pattern as `shard-scaling`); results go to stdout
/// and, as testkit bench-runner JSON lines, to
/// `BENCH_matching_scaling.json`.
fn run_matching_scaling(config: &Config) {
    use mdv_bench::build_contains_engine;
    use mdv_filter::FilterConfig;
    use mdv_workload::{contains_documents, contains_families};

    let (rule_counts, batch): (&[u64], u64) = if config.full {
        (&[10_000, 100_000], 200)
    } else {
        (&[1_000, 5_000], 100)
    };
    let overlaps = [0.0f64, 0.5, 0.9];
    let variants: &[(&str, bool, bool)] = &[
        ("scan", false, false),
        ("subsumption", false, true),
        ("index", true, false),
        ("index_subsumption", true, true),
    ];
    banner(
        "Matching scaling: contains rules, scan vs inverted index vs subsumption",
        "expected shape: scan cost grows linearly with the rule count while \
         the index paths stay near-flat; subsumption shaves the cascade down \
         to the covering frontier as overlap rises; publications identical \
         at every point",
    );
    let opts = if std::env::var_os("MDV_BENCH_ITERS").is_some() {
        BenchOptions::from_env()
    } else {
        BenchOptions {
            warmup_iters: 1,
            iters: if config.full { 3 } else { 5 },
        }
    };

    let mut json_lines: Vec<String> = Vec::new();
    println!(
        "rule_count,overlap,frontier,variant,median_ms,ms_per_doc,trigger_evals,speedup_vs_scan"
    );
    for &rc in rule_counts {
        for &overlap in &overlaps {
            let families = contains_families(rc, overlap);
            // the tail of the index range holds the refinement rules, so
            // the batch exercises base-pattern and refinement matches alike
            let docs = contains_documents((rc - batch)..rc, families);
            let base = build_contains_engine(
                rc,
                overlap,
                FilterConfig {
                    use_trigger_index: false,
                    use_subsumption: false,
                    threads: config.threads,
                    ..FilterConfig::default()
                },
            );
            let (frontier, covered) = base
                .trigger_index()
                .contains_frontier("CycleProvider", "serverHost");
            assert_eq!(frontier as u64, families, "frontier = covering families");
            assert_eq!(covered as u64, rc - families, "refinements are covered");
            let (ref_pubs, ref_run) = {
                let mut engine = base.clone();
                engine
                    .register_batch_traced(&docs)
                    .expect("reference registers")
            };
            let group = format!(
                "matching_scaling_{rc}rules_ov{}_batch{batch}",
                (overlap * 100.0) as u64
            );
            let mut baseline_ns = 0u64;
            for &(name, index, subsumption) in variants {
                // byte-identity gate: publications and the iteration trace
                // must match the scan reference before timing
                let evals = {
                    let mut engine = base.clone();
                    engine.set_matching(index, subsumption);
                    let (pubs, run) = engine
                        .register_batch_traced(&docs)
                        .expect("variant registers");
                    assert_eq!(
                        pubs, ref_pubs,
                        "publications diverged at {name} (rules={rc}, overlap={overlap})"
                    );
                    assert_eq!(
                        run, ref_run,
                        "trace diverged at {name} (rules={rc}, overlap={overlap})"
                    );
                    engine.stats().trigger_evals
                };
                let stats = measure(
                    opts,
                    || {
                        let mut engine = base.clone();
                        engine.set_matching(index, subsumption);
                        engine
                    },
                    |mut engine| {
                        engine.register_batch(&docs).expect("variant registers");
                    },
                );
                if name == "scan" {
                    baseline_ns = stats.median_ns;
                }
                println!(
                    "{},{},{},{},{:.3},{:.5},{},{:.2}x",
                    rc,
                    overlap,
                    frontier,
                    name,
                    stats.median_ns as f64 / 1e6,
                    stats.median_ns as f64 / 1e6 / batch as f64,
                    evals,
                    baseline_ns as f64 / stats.median_ns as f64
                );
                json_lines.push(json_line(&group, name, &stats));
            }
        }
    }

    let path = "BENCH_matching_scaling.json";
    let mut file =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    for line in &json_lines {
        writeln!(file, "{line}").expect("write matching-scaling results");
    }
    println!("wrote {} results to {path}", json_lines.len());
}

/// WAL overhead: the same batch registration on the in-memory and durable
/// backends. The CSV table (also the EXPERIMENTS.md table) carries the
/// per-batch averages plus the WAL bytes and commit-group count of the timed
/// batch; the testkit bench runner re-times both backends and writes its
/// JSON lines to `BENCH_wal_overhead.json`.
fn run_wal_overhead(config: &Config) {
    use mdv_bench::build_engine;
    use mdv_workload::{benchmark_documents, BenchParams};

    let points: &[(RuleType, u64, u64)] = if config.full {
        &[
            (RuleType::Oid, 10_000, 100),
            (RuleType::Oid, 10_000, 1_000),
            (RuleType::Path, 10_000, 100),
            (RuleType::Path, 10_000, 1_000),
        ]
    } else {
        &[
            (RuleType::Oid, 1_000, 10),
            (RuleType::Oid, 1_000, 100),
            (RuleType::Path, 1_000, 10),
            (RuleType::Path, 1_000, 100),
        ]
    };
    banner(
        "WAL overhead: in-memory vs durable backend, batch registration",
        "expected shape: overhead shrinks as the batch grows (group commit \
         amortizes the fsync); matches identical on both backends",
    );
    // durable setup rebuilds the rule base per sample, so keep iteration
    // counts small unless MDV_BENCH_ITERS asks otherwise
    let opts = if std::env::var_os("MDV_BENCH_ITERS").is_some() {
        BenchOptions::from_env()
    } else {
        BenchOptions {
            warmup_iters: 1,
            iters: 3,
        }
    };

    let scratch = wal_scratch_dir();
    let mut json_lines: Vec<String> = Vec::new();
    println!("rule_type,rule_count,batch,mem_ms,durable_ms,overhead,wal_bytes,commits");
    for &(rule_type, rule_count, batch) in points {
        let row = wal_overhead_point(
            rule_type,
            rule_count,
            batch,
            &scratch,
            config.min_elapsed_ms,
        );
        println!(
            "{:?},{},{},{:.3},{:.3},{:.2}x,{},{}",
            row.rule_type,
            row.rule_count,
            row.batch_size,
            row.mem_ms,
            row.durable_ms,
            row.overhead,
            row.wal_bytes,
            row.commits
        );

        // the testkit runner's view of the same point, for the JSON artifact
        let params = BenchParams {
            rule_count,
            comp_match_fraction: 0.1,
        };
        let docs = benchmark_documents(0..batch, &params);
        let base = build_engine(rule_type, rule_count);
        let mem_stats = measure(
            opts,
            || base.clone(),
            |mut engine| {
                engine.register_batch(&docs).expect("mem batch registers");
            },
        );
        let mut sample = 0u32;
        let durable_stats = measure(
            opts,
            || {
                sample += 1;
                let dir = scratch.join(format!("{rule_type:?}-{batch}-s{sample}"));
                mdv_bench::build_durable_engine(rule_type, rule_count, &dir)
            },
            |mut engine| {
                engine
                    .register_batch(&docs)
                    .expect("durable batch registers");
            },
        );
        let group = format!("wal_overhead_{rule_type:?}_{rule_count}rules_batch{batch}");
        json_lines.push(json_line(&group, "mem", &mem_stats));
        json_lines.push(json_line(&group, "durable", &durable_stats));
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let path = "BENCH_wal_overhead.json";
    let mut file =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    for line in &json_lines {
        writeln!(file, "{line}").expect("write WAL-overhead results");
    }
    println!("wrote {} results to {path}", json_lines.len());
}

/// Storage-recovery study (DESIGN.md §12): the durable engine runs a write
/// workload on a seeded fault-injecting VFS at increasing disk-fault
/// probabilities, is crashed under rotating crash modes, and is reopened
/// with faults disarmed. Per fault probability we report the wall-clock
/// recovery latency (snapshot load + WAL replay) and two rates: snapshot
/// fall-back (the newest epoch was unusable and a previous one recovered
/// the store) and corruption refusal (recovery surfaced a typed `Corrupt`
/// instead of guessing). Every successful recovery is gated on zero
/// committed-write loss — each acked commit group appears in the reopened
/// database. Writes `BENCH_recovery.json`.
fn run_recovery_torture(config: &Config) {
    use mdv_relstore::{
        ColumnDef, CrashMode, DataType, DiskFaultPlan, DurableEngine, Error as StoreError,
        FaultVfs, IndexKind, StorageEngine, TableSchema, Value, CRASH_MODES,
    };
    use mdv_testkit::bench::Stats;

    struct Trial {
        recovery_ns: u64,
        fell_back: bool,
        refused: bool,
    }

    /// One seeded workload + crash + reopen. `p` drives write/short-write/
    /// sync faults, `p/2` drives silent bit rot.
    fn trial(p: f64, seed: u64, mode: CrashMode) -> Trial {
        let vfs = FaultVfs::new(seed);
        let mut eng = DurableEngine::create_with(vfs.clone(), "/store").expect("fresh store");
        eng.set_checkpoint_every(Some(8));
        eng.create_table(
            TableSchema::new(
                "Docs",
                vec![
                    ColumnDef::new("uri", DataType::Str),
                    ColumnDef::new("n", DataType::Int),
                ],
            )
            .expect("schema"),
        )
        .expect("create table");
        eng.create_index("Docs", "by_uri", IndexKind::Hash, &["uri"], true)
            .expect("create index");

        // faults arm only after the store exists: the study measures
        // recovery of a real store, not creation under fire
        vfs.set_plan(DiskFaultPlan {
            read_err: 0.0,
            write_err: p,
            short_write: p,
            sync_err: p,
            corrupt: p / 2.0,
        });
        vfs.arm(true);
        let mut acked: u64 = 0;
        for i in 0..40i64 {
            eng.begin();
            let ok = eng
                .insert(
                    "Docs",
                    vec![Value::Str(format!("doc{i}.rdf")), Value::Int(i)],
                )
                .is_ok()
                && eng.commit().is_ok();
            if ok {
                acked += 1;
            }
            if eng.is_degraded() {
                break; // wedged: reopen is the only way forward, as designed
            }
        }
        vfs.arm(false);
        vfs.crash(mode);

        let injected_corruption = vfs.stats().corruptions > 0;
        let start = std::time::Instant::now();
        match DurableEngine::open_with(vfs.clone(), "/store") {
            Ok(recovered) => {
                let recovery_ns = start.elapsed().as_nanos() as u64;
                let report = recovered
                    .recovery_report()
                    .expect("opened stores carry a report");
                // the gate: every acked commit group survived the crash
                let rows = recovered
                    .database()
                    .table("Docs")
                    .expect("Docs table recovered")
                    .len() as u64;
                assert!(
                    rows >= acked,
                    "lost committed writes: {rows} rows < {acked} acked (p={p}, seed={seed:#x})"
                );
                assert!(
                    !report.fell_back || injected_corruption,
                    "fell back without injected corruption (p={p}, seed={seed:#x})"
                );
                Trial {
                    recovery_ns,
                    fell_back: report.fell_back,
                    refused: false,
                }
            }
            Err(StoreError::Corrupt(_)) if injected_corruption => Trial {
                recovery_ns: start.elapsed().as_nanos() as u64,
                fell_back: false,
                refused: true,
            },
            Err(e) => panic!("recovery failed untyped: {e} (p={p}, seed={seed:#x})"),
        }
    }

    let fault_probs: &[f64] = if config.full {
        &[0.0, 0.01, 0.02, 0.05, 0.10]
    } else {
        &[0.0, 0.02, 0.05]
    };
    let trials: u64 = if config.full { 32 } else { 12 };
    banner(
        "Recovery torture: crash-recovery latency and fall-back rate vs disk-fault probability",
        "expected shape: recovery latency stays flat (bounded by WAL length, \
         not fault rate); fall-back and refusal rates rise with the bit-rot \
         probability and are exactly zero on the fault-free disk; committed \
         writes survive every trial by assertion",
    );

    let mut json_lines: Vec<String> = Vec::new();
    println!("fault_prob,trials,median_recovery_ns,fellback_rate,refusal_rate");
    for &p in fault_probs {
        let mut recovery: Vec<u64> = Vec::new();
        let mut fellback: Vec<u64> = Vec::new();
        let mut refused: Vec<u64> = Vec::new();
        for t in 0..trials {
            let seed = 0xd15c_0000 + (p * 1000.0) as u64 * 0x100 + t;
            let mode = CRASH_MODES[(t as usize) % CRASH_MODES.len()];
            let out = trial(p, seed, mode);
            recovery.push(out.recovery_ns);
            fellback.push(if out.fell_back { 1000 } else { 0 });
            refused.push(if out.refused { 1000 } else { 0 });
        }
        let ns = Stats::from_samples(&recovery);
        let fb = Stats::from_samples(&fellback);
        let rf = Stats::from_samples(&refused);
        println!(
            "{:.2},{},{},{:.3},{:.3}",
            p,
            trials,
            ns.median_ns,
            fb.mean_ns as f64 / 1000.0,
            rf.mean_ns as f64 / 1000.0
        );
        let group = format!("recovery_torture_p{:03}", (p * 100.0) as u64);
        json_lines.push(json_line(&group, "recovery_ns", &ns));
        // rates ride the Stats shape as per-mille samples: mean_ns/1000 is
        // the rate, keeping BENCH_*.json one uniform schema
        json_lines.push(json_line(&group, "fellback_permille", &fb));
        json_lines.push(json_line(&group, "refused_permille", &rf));
    }

    let path = "BENCH_recovery.json";
    let mut file =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    for line in &json_lines {
        writeln!(file, "{line}").expect("write recovery-torture results");
    }
    println!("wrote {} results to {path}", json_lines.len());
}

/// Fault-recovery study: a 3-MDP backbone with one failed-over LMR is driven
/// through a fail/heal cycle at increasing loss rates. Per drop probability
/// we report the logical time-to-reconvergence of the heal (retransmission
/// drain + anti-entropy rounds until all live document sets are
/// byte-identical) and the repair-message overhead (digest/repair messages
/// as a share of all heal-window traffic). Everything here is simulated
/// logical time — deterministic per seed, independent of the host — so the
/// testkit `Stats` fields carry logical milliseconds and message counts,
/// not nanoseconds. Writes `BENCH_backbone_repair.json`.
fn run_backbone_repair(config: &Config) {
    use mdv_rdf::{parse_document, Document, RdfSchema};
    use mdv_system::transport::{FaultPlan, LinkFaults, NetConfig};
    use mdv_system::MdvSystem;
    use mdv_testkit::bench::Stats;

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .int("serverPort")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .expect("study schema is valid")
    }

    fn doc(i: usize, memory: i64) -> Document {
        parse_document(
            &format!("doc{i}.rdf"),
            &format!(
                r##"<rdf:RDF>
                  <CycleProvider rdf:ID="host">
                    <serverHost>node{i}.hub.org</serverHost>
                    <serverPort>{port}</serverPort>
                    <serverInformation rdf:resource="#info"/>
                  </CycleProvider>
                  <ServerInformation rdf:ID="info"><memory>{memory}</memory><cpu>600</cpu></ServerInformation>
                </rdf:RDF>"##,
                port = 4000 + i,
            ),
        )
        .expect("study document is valid")
    }

    /// One seeded fail/heal cycle; returns (reconverge logical ms, repair
    /// messages in the heal window, total messages in the heal window).
    fn trial(drop_prob: f64, seed: u64) -> (u64, u64, u64) {
        let cfg = NetConfig {
            faults: FaultPlan {
                seed,
                default_link: LinkFaults {
                    drop_prob,
                    dup_prob: drop_prob / 2.0,
                    jitter_ms: 10,
                    spike_prob: 0.0,
                    spike_ms: 0,
                },
                ..FaultPlan::default()
            },
            ..NetConfig::default()
        };
        let mut sys = MdvSystem::with_net_config(schema(), cfg);
        for m in ["m1", "m2", "m3"] {
            sys.add_mdp(m).expect("add mdp");
        }
        sys.add_lmr("l1", "m1").expect("add lmr");
        sys.set_backup_mdp("l1", "m2").expect("set backup");
        sys.subscribe(
            "l1",
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        )
        .expect("subscribe");
        let homes = ["m1", "m2", "m3"];
        for i in 0..6 {
            sys.register_document(homes[i % 3], &doc(i, 32 + 32 * i as i64))
                .expect("register");
        }
        // the home fails: its mailbox is lost, writes continue elsewhere,
        // and the next subscription exhausts its budget and fails over
        sys.fail_mdp("m1").expect("fail m1");
        for i in 6..10 {
            sys.register_document(homes[1 + i % 2], &doc(i, 96))
                .expect("register during outage");
        }
        sys.subscribe(
            "l1",
            "search ServerInformation s register s where s.cpu >= 600",
        )
        .expect("subscribe during outage");
        assert_eq!(sys.lmr("l1").expect("lmr").mdp(), "m2", "failover happened");
        // the second failure overlaps the heal: documents whose origin (m2)
        // is down when m1 comes back can only reach m1 via anti-entropy
        // from m3 — retransmission covers everything else
        sys.fail_mdp("m2").expect("fail m2");

        let clock_before = sys.network_stats().clock_ms;
        let sent_before = sys.network().log().len();
        sys.heal_mdp("m1").expect("heal m1 reconverges");
        sys.heal_mdp("m2").expect("heal m2 reconverges");
        assert!(sys.backbone_converged());
        let stats = sys.network_stats();
        let log = sys.network().log();
        let window = &log[sent_before..];
        let repair = window
            .iter()
            .filter(|r| matches!(r.kind, "replica-digest" | "repair-request" | "repair-docs"))
            .count() as u64;
        (stats.clock_ms - clock_before, repair, window.len() as u64)
    }

    let drop_probs: &[f64] = if config.full {
        &[0.0, 0.05, 0.10, 0.20, 0.30]
    } else {
        &[0.0, 0.10, 0.25]
    };
    let trials: u64 = if config.full { 20 } else { 8 };
    banner(
        "Backbone repair: fail/heal reconvergence vs loss rate (logical time)",
        "expected shape: reconvergence time grows with the drop probability \
         (more retransmission backoff and repair rounds); repair traffic stays \
         a bounded share of the heal window and is zero only if nothing was \
         missed",
    );

    let mut json_lines: Vec<String> = Vec::new();
    println!("drop_prob,trials,median_reconverge_ms,median_repair_msgs,repair_traffic_share");
    for &p in drop_probs {
        let mut reconverge: Vec<u64> = Vec::new();
        let mut repairs: Vec<u64> = Vec::new();
        let mut totals: Vec<u64> = Vec::new();
        for t in 0..trials {
            let seed = 0xba5e_0000 + (p * 1000.0) as u64 * 64 + t;
            let (ms, repair, total) = trial(p, seed);
            reconverge.push(ms);
            repairs.push(repair);
            totals.push(total);
        }
        let ms_stats = Stats::from_samples(&reconverge);
        let repair_stats = Stats::from_samples(&repairs);
        let share = repairs.iter().sum::<u64>() as f64 / totals.iter().sum::<u64>() as f64;
        println!(
            "{:.2},{},{},{},{:.3}",
            p, trials, ms_stats.median_ns, repair_stats.median_ns, share
        );
        let group = format!("backbone_repair_drop{:02}", (p * 100.0) as u64);
        json_lines.push(json_line(&group, "reconverge_logical_ms", &ms_stats));
        json_lines.push(json_line(&group, "repair_messages", &repair_stats));
    }

    let path = "BENCH_backbone_repair.json";
    let mut file =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    for line in &json_lines {
        writeln!(file, "{line}").expect("write backbone-repair results");
    }
    println!("wrote {} results to {path}", json_lines.len());
}

/// Consistency-vs-availability study: the same 3-MDP/1-LMR deployment and
/// workload, run once under LWW gossip and once under Raft (DESIGN.md §9),
/// compared on three axes — steady-state write latency in logical time,
/// reconvergence after a fail/heal cycle of a voter (including the Raft
/// leader, demonstrating that a committed write survives any minority of
/// failures with automatic LMR re-homing), and behaviour while a permanent
/// partition isolates one MDP (LWW keeps accepting divergent writes on both
/// sides; Raft keeps the majority side available and consistent while the
/// minority entry returns `Unavailable`). Everything is simulated logical
/// time, deterministic per seed. Writes `BENCH_backbone_consensus.json`.
fn run_backbone_consensus(config: &Config) {
    use mdv_rdf::{parse_document, Document, RdfSchema};
    use mdv_system::transport::{FaultPlan, NetConfig};
    use mdv_system::MdvSystem;
    use mdv_testkit::bench::Stats;

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .int("serverPort")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .expect("study schema is valid")
    }

    fn doc(i: usize, memory: i64) -> Document {
        parse_document(
            &format!("doc{i}.rdf"),
            &format!(
                r##"<rdf:RDF>
                  <CycleProvider rdf:ID="host">
                    <serverHost>node{i}.hub.org</serverHost>
                    <serverPort>{port}</serverPort>
                    <serverInformation rdf:resource="#info"/>
                  </CycleProvider>
                  <ServerInformation rdf:ID="info"><memory>{memory}</memory><cpu>600</cpu></ServerInformation>
                </rdf:RDF>"##,
                port = 4000 + i,
            ),
        )
        .expect("study document is valid")
    }

    fn build(raft: bool, seed: u64, faults: FaultPlan) -> MdvSystem {
        let cfg = NetConfig {
            faults,
            ..NetConfig::default()
        };
        let mut sys = MdvSystem::with_net_config(schema(), cfg);
        if raft {
            sys.enable_raft(seed).expect("raft before nodes");
        }
        for m in ["m1", "m2", "m3"] {
            sys.add_mdp(m).expect("add mdp");
        }
        sys.add_lmr("l1", "m1").expect("add lmr");
        if !raft {
            sys.set_backup_mdp("l1", "m2").expect("set backup");
        }
        sys.subscribe(
            "l1",
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        )
        .expect("subscribe");
        sys
    }

    /// Steady-state logical write latency: per-write clock delta, entries
    /// rotating over all three MDPs (in Raft mode non-leader entries pay the
    /// forwarding + commit round-trips).
    fn write_latency(raft: bool, seed: u64, writes: usize) -> Vec<u64> {
        let mut sys = build(raft, seed, FaultPlan::default());
        let homes = ["m1", "m2", "m3"];
        let mut samples = Vec::with_capacity(writes);
        for i in 0..writes {
            let before = sys.network_stats().clock_ms;
            sys.register_document(homes[i % 3], &doc(i, 32 + 16 * i as i64))
                .expect("steady-state register");
            samples.push(sys.network_stats().clock_ms - before);
        }
        samples
    }

    /// One fail/heal cycle of `victim` (in Raft mode the *current leader*
    /// dies when `victim` is `None`): writes continue on the survivors,
    /// then the heal reconverges. Returns (reconverge logical ms, messages
    /// in the heal window, committed write survived everywhere).
    fn outage_trial(raft: bool, seed: u64) -> (u64, u64, bool) {
        let mut sys = build(raft, seed, FaultPlan::default());
        for i in 0..4 {
            sys.register_document("m1", &doc(i, 128)).expect("register");
        }
        let victim = if raft {
            sys.raft_leader().expect("leader elected")
        } else {
            "m1".to_owned()
        };
        sys.fail_mdp(&victim).expect("fail victim");
        let survivors: Vec<&str> = ["m1", "m2", "m3"]
            .into_iter()
            .filter(|m| *m != victim)
            .collect();
        for i in 4..8 {
            sys.register_document(survivors[i % 2], &doc(i, 96))
                .expect("register during outage");
        }
        if !raft {
            // control churn exhausts the budget → failover to the backup
            sys.subscribe(
                "l1",
                "search ServerInformation s register s where s.cpu >= 600",
            )
            .expect("subscribe during outage");
        }
        let clock_before = sys.network_stats().clock_ms;
        let sent_before = sys.network().log().len();
        sys.heal_mdp(&victim).expect("heal reconverges");
        let reconverge = sys.network_stats().clock_ms - clock_before;
        let messages = (sys.network().log().len() - sent_before) as u64;
        assert!(sys.backbone_converged(), "heal did not reconverge");
        let survived = (0..8).all(|i| {
            ["m1", "m2", "m3"].iter().all(|m| {
                sys.mdp(m)
                    .expect("mdp")
                    .engine()
                    .document(&format!("doc{i}.rdf"))
                    .is_some()
            })
        });
        (reconverge, messages, survived)
    }

    /// Permanent partition isolating m3: four writes through the majority
    /// entry m1, four attempted through the minority entry m3. Returns
    /// (majority accepted, minority accepted, minority unavailable, docs
    /// missing or stale at m3, logical ms consumed by the partition phase).
    fn partition_trial(raft: bool, seed: u64) -> (u64, u64, u64, u64, u64) {
        let mut faults = FaultPlan::default();
        faults.partition_both("m3", "m1", 2_000, u64::MAX);
        faults.partition_both("m3", "m2", 2_000, u64::MAX);
        let mut sys = build(raft, seed, faults);
        for i in 0..2 {
            sys.register_document("m1", &doc(i, 128))
                .expect("pre-partition register");
        }
        sys.network().advance_clock(2_000); // the split begins
        let clock_before = sys.network_stats().clock_ms;
        let (mut maj, mut min_ok, mut min_unavail) = (0u64, 0u64, 0u64);
        for i in 2..6 {
            if sys.register_document("m1", &doc(i, 128)).is_ok() {
                maj += 1;
            }
        }
        for i in 6..10 {
            match sys.register_document("m3", &doc(i, 128)) {
                Ok(()) => min_ok += 1,
                Err(mdv_system::Error::Unavailable(_)) => min_unavail += 1,
                Err(e) => panic!("unexpected minority-write error: {e}"),
            }
        }
        let stale = (0..10)
            .filter(|i| {
                let uri = format!("doc{i}.rdf");
                let m1 = sys.mdp("m1").expect("m1").engine().document(&uri).is_some();
                let m3 = sys.mdp("m3").expect("m3").engine().document(&uri).is_some();
                m1 != m3
            })
            .count() as u64;
        (
            maj,
            min_ok,
            min_unavail,
            stale,
            sys.network_stats().clock_ms - clock_before,
        )
    }

    let writes = if config.full { 60 } else { 24 };
    let trials: u64 = if config.full { 10 } else { 4 };
    banner(
        "Backbone consensus: LWW gossip vs Raft (logical time)",
        "expected shape: Raft pays a quorum round-trip on every write but \
         heals by log shipping with zero repair traffic; LWW stays available \
         on both sides of a partition at the price of divergence, while the \
         Raft minority entry returns Unavailable and its voter stays on the \
         last committed prefix",
    );

    let mut json_lines: Vec<String> = Vec::new();
    for raft in [false, true] {
        let mode = if raft { "raft" } else { "lww" };
        let group = format!("backbone_consensus_{mode}");

        let lat = write_latency(raft, 0xc0de, writes);
        let lat_stats = Stats::from_samples(&lat);

        let mut reconverge = Vec::new();
        let mut heal_msgs = Vec::new();
        let mut survived_all = true;
        for t in 0..trials {
            let (ms, msgs, survived) = outage_trial(raft, 0xfa11 + t);
            reconverge.push(ms);
            heal_msgs.push(msgs);
            survived_all &= survived;
        }
        let reconverge_stats = Stats::from_samples(&reconverge);
        let heal_stats = Stats::from_samples(&heal_msgs);
        assert!(survived_all, "{mode}: a committed write was lost");

        let (maj, min_ok, min_unavail, stale, part_ms) = partition_trial(raft, 0x59117);

        println!(
            "{mode}: write p50 {} ms | heal p50 {} ms ({} msgs) | partition: \
             majority {maj}/4, minority ok {min_ok}/4, minority unavailable \
             {min_unavail}/4, divergent docs {stale}, phase {part_ms} ms",
            lat_stats.median_ns, reconverge_stats.median_ns, heal_stats.median_ns,
        );
        json_lines.push(json_line(&group, "write_logical_ms", &lat_stats));
        json_lines.push(json_line(&group, "heal_reconverge_ms", &reconverge_stats));
        json_lines.push(json_line(&group, "heal_messages", &heal_stats));
        json_lines.push(json_line(
            &group,
            "partition_majority_accepted",
            &Stats::from_samples(&[maj]),
        ));
        json_lines.push(json_line(
            &group,
            "partition_minority_accepted",
            &Stats::from_samples(&[min_ok]),
        ));
        json_lines.push(json_line(
            &group,
            "partition_minority_unavailable",
            &Stats::from_samples(&[min_unavail]),
        ));
        json_lines.push(json_line(
            &group,
            "partition_divergent_docs",
            &Stats::from_samples(&[stale]),
        ));
        json_lines.push(json_line(
            &group,
            "partition_phase_logical_ms",
            &Stats::from_samples(&[part_ms]),
        ));
        json_lines.push(json_line(
            &group,
            "committed_write_survived_minority_failures",
            &Stats::from_samples(&[u64::from(survived_all)]),
        ));
    }

    let path = "BENCH_backbone_consensus.json";
    let mut file =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    for line in &json_lines {
        writeln!(file, "{line}").expect("write backbone-consensus results");
    }
    println!("wrote {} results to {path}", json_lines.len());
}

/// Placement scaling study (DESIGN.md §11): the same registration/update
/// workload over backbones of N MDPs at replication factor R ∈ {1, 2, all},
/// measuring how the per-node corpus share tracks R/N, the logical write
/// latency with rotating entry points vs placement-aware routing through
/// `mdp_for_uri`, and the placement-digest anti-entropy traffic. Two hard
/// gates ride along: every cell must end with exactly `min(R, N) ×
/// corpus` document copies on the backbone, and the `R = all` cell must be
/// byte-identical, per MDP, to a legacy placement-off run of the same
/// workload (which must emit zero placement messages). Everything is
/// simulated logical time, deterministic. Writes
/// `BENCH_placement_scaling.json`.
fn run_placement_scaling(config: &Config) {
    use std::collections::BTreeMap;

    use mdv_rdf::{parse_document, write_document, Document, RdfSchema};
    use mdv_system::MdvSystem;
    use mdv_testkit::bench::Stats;

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .int("serverPort")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .expect("study schema is valid")
    }

    fn doc(i: usize, memory: i64) -> Document {
        parse_document(
            &format!("doc{i}.rdf"),
            &format!(
                r##"<rdf:RDF>
                  <CycleProvider rdf:ID="host">
                    <serverHost>node{i}.hub.org</serverHost>
                    <serverPort>{port}</serverPort>
                    <serverInformation rdf:resource="#info"/>
                  </CycleProvider>
                  <ServerInformation rdf:ID="info"><memory>{memory}</memory><cpu>600</cpu></ServerInformation>
                </rdf:RDF>"##,
                port = 4000 + i,
            ),
        )
        .expect("study document is valid")
    }

    fn build(n: usize) -> MdvSystem {
        let mut sys = MdvSystem::new(schema());
        for m in 0..n {
            sys.add_mdp(&format!("m{m}")).expect("add mdp");
        }
        sys.add_lmr("l1", "m0").expect("add lmr");
        sys.subscribe(
            "l1",
            "search CycleProvider c register c where c.serverInformation.memory > 64",
        )
        .expect("subscribe");
        sys
    }

    /// The shared workload: half the corpus registered through rotating
    /// entry points (a client that ignores placement), half registered at
    /// the primary named by `mdp_for_uri` (a placement-aware client), then
    /// an update pass. Returns the two per-write logical-latency sample
    /// sets so the cells can contrast the forwarding hop.
    fn run_workload(sys: &mut MdvSystem, n: usize, corpus: usize) -> (Vec<u64>, Vec<u64>) {
        let half = corpus / 2;
        let mut rotating = Vec::with_capacity(half);
        for i in 0..half {
            let entry = format!("m{}", i % n);
            let before = sys.network_stats().clock_ms;
            sys.register_document(&entry, &doc(i, 64 + i as i64))
                .expect("rotating register");
            rotating.push(sys.network_stats().clock_ms - before);
        }
        let mut routed = Vec::with_capacity(corpus - half);
        for i in half..corpus {
            let d = doc(i, 64 + i as i64);
            let home = sys.mdp_for_uri(d.uri()).expect("route").to_owned();
            let before = sys.network_stats().clock_ms;
            sys.register_document(&home, &d).expect("routed register");
            routed.push(sys.network_stats().clock_ms - before);
        }
        for i in (0..corpus).step_by(3) {
            sys.update_document(&format!("m{}", i % n), &doc(i, 512))
                .expect("update");
        }
        // one explicit anti-entropy round so the digest traffic (replica
        // digests on the legacy backbone, placement digests under
        // partitioned replication) shows up in the message counters;
        // repair_backbone would short-circuit on the already-converged state
        sys.anti_entropy_round().expect("anti-entropy round");
        (rotating, routed)
    }

    fn doc_sets(sys: &MdvSystem) -> BTreeMap<String, BTreeMap<String, String>> {
        sys.mdp_names()
            .into_iter()
            .map(|m| {
                let docs = sys
                    .mdp(m)
                    .expect("mdp")
                    .engine()
                    .documents()
                    .map(|d| (d.uri().to_owned(), write_document(d)))
                    .collect();
                (m.to_owned(), docs)
            })
            .collect()
    }

    let corpus = if config.full { 64 } else { 24 };
    let node_counts: &[usize] = if config.full {
        &[3, 4, 5, 6]
    } else {
        &[3, 4, 5]
    };
    banner(
        "Placement scaling: MDP count x replication factor (logical time)",
        "expected shape: per-node corpus share tracks R/N (full replication \
         stores N copies, R=2 stores two wherever N grows); routed writes \
         skip the forwarding hop that rotating-entry writes pay; the R=all \
         cell is byte-identical to the legacy placement-off backbone",
    );

    let mut json_lines: Vec<String> = Vec::new();
    for &n in node_counts {
        // the placement-off baseline the R=all cell must match byte-for-byte
        let mut legacy = build(n);
        run_workload(&mut legacy, n, corpus);
        assert!(legacy.backbone_converged(), "legacy n={n} did not converge");
        assert_eq!(
            legacy.network_stats().placement_messages,
            0,
            "placement-off backbone emitted placement traffic"
        );
        let legacy_docs = doc_sets(&legacy);

        for r in [1, 2, n] {
            let mut sys = build(n);
            sys.set_replication_factor(r).expect("enable placement");
            let (rotating, routed) = run_workload(&mut sys, n, corpus);
            assert!(sys.backbone_converged(), "n={n} r={r} did not converge");

            let counts: Vec<u64> = (0..n)
                .map(|m| {
                    sys.mdp(&format!("m{m}"))
                        .expect("mdp")
                        .engine()
                        .document_count() as u64
                })
                .collect();
            let total: u64 = counts.iter().sum();
            assert_eq!(
                total as usize,
                r.min(n) * corpus,
                "n={n} r={r}: backbone must hold exactly min(R,N) copies per document"
            );
            if r < n {
                assert!(
                    counts.iter().all(|&c| (c as usize) < corpus),
                    "n={n} r={r}: some node still holds the full corpus"
                );
            }
            if r == n {
                assert_eq!(
                    doc_sets(&sys),
                    legacy_docs,
                    "R=all must be byte-identical to legacy full replication"
                );
            }

            let table = sys.placement_table().expect("placement enabled");
            let share_permille = (1000.0 * table.storage_share()).round() as u64;
            let stats = sys.network_stats();
            assert!(
                stats.placement_messages > 0,
                "n={n} r={r}: anti-entropy ran but no placement digests flowed"
            );
            let rotating_stats = Stats::from_samples(&rotating);
            let routed_stats = Stats::from_samples(&routed);
            let count_stats = Stats::from_samples(&counts);
            println!(
                "n={n} r={r}: share {:.0}% | copies {total} | per-node docs p50 {} \
                 | write p50 rotating {} ms, routed {} ms | placement msgs {}",
                100.0 * table.storage_share(),
                count_stats.median_ns,
                rotating_stats.median_ns,
                routed_stats.median_ns,
                stats.placement_messages,
            );

            let group = format!("placement_scaling_n{n}_r{r}");
            json_lines.push(json_line(
                &group,
                "storage_share_permille",
                &Stats::from_samples(&[share_permille]),
            ));
            json_lines.push(json_line(&group, "per_node_documents", &count_stats));
            json_lines.push(json_line(
                &group,
                "copies_total",
                &Stats::from_samples(&[total]),
            ));
            json_lines.push(json_line(
                &group,
                "rotating_write_logical_ms",
                &rotating_stats,
            ));
            json_lines.push(json_line(&group, "routed_write_logical_ms", &routed_stats));
            json_lines.push(json_line(
                &group,
                "placement_messages",
                &Stats::from_samples(&[stats.placement_messages]),
            ));
            json_lines.push(json_line(
                &group,
                "placement_bytes",
                &Stats::from_samples(&[stats.placement_bytes]),
            ));
        }
    }

    let path = "BENCH_placement_scaling.json";
    let mut file =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    for line in &json_lines {
        writeln!(file, "{line}").expect("write placement-scaling results");
    }
    println!("wrote {} results to {path}", json_lines.len());
}
