//! # mdv-bench
//!
//! The measurement harness regenerating every figure of the MDV paper's
//! evaluation (§4, Figures 11–15) plus the ablations DESIGN.md calls out.
//!
//! Methodology (following the paper): for one measurement we build a rule
//! base of a single type, then register a batch of documents and measure
//! the overall runtime of the filter algorithm; the average registration
//! time of a single document is overall runtime divided by batch size.
//! Every measurement point starts from a fresh clone of the prepared
//! engine, so batch points are independent.
//!
//! The `*_threaded` variants and [`thread_scaling_point`] drive the same
//! sweeps with a configured [`mdv_filter::FilterConfig::threads`] for the
//! thread-scaling study in `EXPERIMENTS.md`.
//!
//! `DESIGN.md` §4 holds the workspace-wide module map locating this
//! crate's files.

use std::path::Path;
use std::time::Instant;

use mdv_filter::{FilterConfig, FilterEngine, NaiveEngine, ShardedFilterEngine};
use mdv_relstore::{DurableEngine, StorageEngine};
use mdv_workload::{benchmark_documents, benchmark_rules, benchmark_schema, BenchParams, RuleType};

/// One measured point of a figure.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub rule_type: RuleType,
    pub rule_count: u64,
    pub batch_size: u64,
    /// COMP matching fraction (0 for the other rule types).
    pub fraction: f64,
    /// Total filter runtime for the batch, in milliseconds.
    pub total_ms: f64,
    /// Average registration time per document, in milliseconds.
    pub avg_ms_per_doc: f64,
    /// Matches produced (sanity check of the matching discipline).
    pub matches: u64,
}

/// The batch-size sweep used by Figures 11–14.
pub const BATCH_SIZES: [u64; 10] = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000];

/// A quicker sweep for CI-sized runs.
pub const BATCH_SIZES_QUICK: [u64; 6] = [1, 5, 20, 100, 500, 1000];

/// Builds an engine pre-loaded with `rule_count` rules of one type.
pub fn build_engine(rule_type: RuleType, rule_count: u64) -> FilterEngine {
    build_engine_with_config(rule_type, rule_count, FilterConfig::default())
}

/// Like [`build_engine`] with an explicit configuration (ablations).
pub fn build_engine_with_config(
    rule_type: RuleType,
    rule_count: u64,
    config: FilterConfig,
) -> FilterEngine {
    let mut engine = FilterEngine::with_config(benchmark_schema(), config);
    for rule in benchmark_rules(rule_type, rule_count) {
        engine
            .register_subscription(&rule)
            .expect("benchmark rules are valid");
    }
    engine
}

/// Builds an engine loaded with the full-text `contains` workload
/// ([`mdv_workload::contains_rules`]): `rule_count` rules split into
/// covering families per the overlap ratio. Used by the matching-scaling
/// study (DESIGN.md §10); callers flip the matching strategy afterwards
/// via [`FilterEngine::set_matching`].
pub fn build_contains_engine(rule_count: u64, overlap: f64, config: FilterConfig) -> FilterEngine {
    let mut engine = FilterEngine::with_config(benchmark_schema(), config);
    for rule in mdv_workload::contains_rules(rule_count, overlap) {
        engine
            .register_subscription(&rule)
            .expect("contains rules are valid");
    }
    engine
}

/// Builds the naive baseline with the same rule base.
pub fn build_naive(rule_type: RuleType, rule_count: u64) -> NaiveEngine {
    let mut engine = NaiveEngine::new(benchmark_schema());
    for rule in benchmark_rules(rule_type, rule_count) {
        engine
            .register_subscription(&rule)
            .expect("benchmark rules are valid");
    }
    engine
}

/// Measures one batch point on a fresh clone of `base`. The batch is
/// re-registered on new clones until `min_elapsed_ms` of filter time
/// accumulates (at least once), so small batches get stable averages.
pub fn run_point(
    base: &FilterEngine,
    rule_type: RuleType,
    params: &BenchParams,
    batch_size: u64,
    min_elapsed_ms: f64,
) -> Measurement {
    run_point_threaded(base, rule_type, params, batch_size, min_elapsed_ms, 1)
}

/// Like [`run_point`] with an explicit filter thread count. The engine
/// clone is reconfigured per repetition, so one prepared `base` serves
/// every thread count (the thread-scaling figure relies on this).
pub fn run_point_threaded(
    base: &FilterEngine,
    rule_type: RuleType,
    params: &BenchParams,
    batch_size: u64,
    min_elapsed_ms: f64,
    threads: usize,
) -> Measurement {
    let docs = benchmark_documents(0..batch_size, params);
    let mut total_ms = 0.0;
    let mut reps = 0u32;
    let mut matches = 0u64;
    while reps == 0 || (total_ms < min_elapsed_ms && reps < 50) {
        let mut engine = base.clone();
        engine.set_threads(threads);
        let start = Instant::now();
        let pubs = engine
            .register_batch(&docs)
            .expect("benchmark batch registers");
        total_ms += start.elapsed().as_secs_f64() * 1e3;
        matches = pubs.iter().map(|p| p.added.len() as u64).sum();
        reps += 1;
    }
    let per_batch = total_ms / reps as f64;
    Measurement {
        rule_type,
        rule_count: params.rule_count,
        batch_size,
        fraction: if rule_type == RuleType::Comp {
            params.comp_match_fraction
        } else {
            0.0
        },
        total_ms: per_batch,
        avg_ms_per_doc: per_batch / batch_size as f64,
        matches,
    }
}

/// A full batch-size sweep for one (rule type, rule base size) series —
/// the generic shape behind Figures 11–14.
pub fn sweep(
    rule_type: RuleType,
    rule_count: u64,
    fraction: f64,
    batch_sizes: &[u64],
    min_elapsed_ms: f64,
) -> Vec<Measurement> {
    sweep_threaded(
        rule_type,
        rule_count,
        fraction,
        batch_sizes,
        min_elapsed_ms,
        1,
    )
}

/// Like [`sweep`] with an explicit filter thread count (the `--threads`
/// flag of the `figures` binary).
pub fn sweep_threaded(
    rule_type: RuleType,
    rule_count: u64,
    fraction: f64,
    batch_sizes: &[u64],
    min_elapsed_ms: f64,
    threads: usize,
) -> Vec<Measurement> {
    let base = build_engine(rule_type, rule_count);
    let params = BenchParams {
        rule_count,
        comp_match_fraction: fraction,
    };
    batch_sizes
        .iter()
        .map(|&b| run_point_threaded(&base, rule_type, &params, b, min_elapsed_ms, threads))
        .collect()
}

/// Figure 15: fixed COMP rule base, sweeping the matched percentage for
/// several batch sizes.
pub fn sweep_fractions(
    rule_count: u64,
    fractions: &[f64],
    batch_sizes: &[u64],
    min_elapsed_ms: f64,
) -> Vec<Measurement> {
    sweep_fractions_threaded(rule_count, fractions, batch_sizes, min_elapsed_ms, 1)
}

/// Like [`sweep_fractions`] with an explicit filter thread count.
pub fn sweep_fractions_threaded(
    rule_count: u64,
    fractions: &[f64],
    batch_sizes: &[u64],
    min_elapsed_ms: f64,
    threads: usize,
) -> Vec<Measurement> {
    let base = build_engine(RuleType::Comp, rule_count);
    let mut out = Vec::new();
    for &fraction in fractions {
        let params = BenchParams {
            rule_count,
            comp_match_fraction: fraction,
        };
        for &b in batch_sizes {
            out.push(run_point_threaded(
                &base,
                RuleType::Comp,
                &params,
                b,
                min_elapsed_ms,
                threads,
            ));
        }
    }
    out
}

/// One thread-scaling point: registers the same batch at every requested
/// thread count on clones of one prepared engine, asserting byte-identical
/// publications across thread counts (determinism is part of the measured
/// contract, not just the tests). Returns one measurement per thread count,
/// in `thread_counts` order.
pub fn thread_scaling_point(
    rule_type: RuleType,
    rule_count: u64,
    batch_size: u64,
    thread_counts: &[usize],
    min_elapsed_ms: f64,
) -> Vec<(usize, Measurement)> {
    let base = build_engine(rule_type, rule_count);
    let params = BenchParams {
        rule_count,
        comp_match_fraction: 0.1,
    };
    let docs = benchmark_documents(0..batch_size, &params);
    // determinism gate first: every thread count must publish the same
    // bytes before any of its timings count
    let reference = {
        let mut engine = base.clone();
        engine.set_threads(1);
        engine.register_batch(&docs).expect("reference registers")
    };
    for &threads in thread_counts {
        let mut engine = base.clone();
        engine.set_threads(threads);
        let pubs = engine
            .register_batch(&docs)
            .expect("scaling batch registers");
        assert_eq!(
            pubs, reference,
            "publications diverged at threads={threads} (rules={rule_count}, batch={batch_size})"
        );
    }
    thread_counts
        .iter()
        .map(|&threads| {
            (
                threads,
                run_point_threaded(
                    &base,
                    rule_type,
                    &params,
                    batch_size,
                    min_elapsed_ms,
                    threads,
                ),
            )
        })
        .collect()
}

/// Builds a sharded engine pre-loaded with `rule_count` rules of one type
/// (DESIGN.md §8). The shard count is fixed at construction, so — unlike
/// the thread-scaling study — every shard count needs its own prepared base.
pub fn build_sharded_engine(
    rule_type: RuleType,
    rule_count: u64,
    shards: usize,
    threads: usize,
) -> ShardedFilterEngine {
    let mut engine = ShardedFilterEngine::with_config(
        benchmark_schema(),
        FilterConfig {
            shards,
            threads,
            ..FilterConfig::default()
        },
    );
    for rule in benchmark_rules(rule_type, rule_count) {
        engine
            .register_subscription(&rule)
            .expect("benchmark rules are valid");
    }
    engine
}

/// One shard-scaling point: registers the same batch at every requested
/// shard count on fresh clones of per-shard-count prepared engines,
/// asserting byte-identical publications against the shards=1 reference
/// (determinism is part of the measured contract, not just the tests).
/// Returns one measurement per shard count, in `shard_counts` order.
pub fn shard_scaling_point(
    rule_type: RuleType,
    rule_count: u64,
    batch_size: u64,
    shard_counts: &[usize],
    threads: usize,
    min_elapsed_ms: f64,
) -> Vec<(usize, Measurement)> {
    let params = BenchParams {
        rule_count,
        comp_match_fraction: 0.1,
    };
    let docs = benchmark_documents(0..batch_size, &params);
    let reference = {
        let mut engine = build_sharded_engine(rule_type, rule_count, 1, 1);
        engine.register_batch(&docs).expect("reference registers")
    };
    shard_counts
        .iter()
        .map(|&shards| {
            let base = build_sharded_engine(rule_type, rule_count, shards, threads);
            // determinism gate first: this shard count must publish the
            // same bytes before any of its timings count
            {
                let mut engine = base.clone();
                let pubs = engine
                    .register_batch(&docs)
                    .expect("scaling batch registers");
                assert_eq!(
                    pubs, reference,
                    "publications diverged at shards={shards} (rules={rule_count}, batch={batch_size})"
                );
            }
            let mut total_ms = 0.0;
            let mut reps = 0u32;
            let mut matches = 0u64;
            while reps == 0 || (total_ms < min_elapsed_ms && reps < 50) {
                let mut engine = base.clone();
                let start = Instant::now();
                let pubs = engine
                    .register_batch(&docs)
                    .expect("scaling batch registers");
                total_ms += start.elapsed().as_secs_f64() * 1e3;
                matches = pubs.iter().map(|p| p.added.len() as u64).sum();
                reps += 1;
            }
            let per_batch = total_ms / reps as f64;
            (
                shards,
                Measurement {
                    rule_type,
                    rule_count,
                    batch_size,
                    fraction: 0.0,
                    total_ms: per_batch,
                    avg_ms_per_doc: per_batch / batch_size as f64,
                    matches,
                },
            )
        })
        .collect()
}

/// Ablation A: the filter engine versus the naive evaluate-every-rule
/// baseline. Returns `(filter, naive)` measurements per rule-base size.
pub fn ablation_naive(
    rule_type: RuleType,
    rule_counts: &[u64],
    batch_size: u64,
    min_elapsed_ms: f64,
) -> Vec<(Measurement, Measurement)> {
    let mut out = Vec::new();
    for &rc in rule_counts {
        let params = BenchParams {
            rule_count: rc,
            comp_match_fraction: 0.1,
        };
        let filter_base = build_engine(rule_type, rc);
        let filter = run_point(&filter_base, rule_type, &params, batch_size, min_elapsed_ms);

        let naive_base = build_naive(rule_type, rc);
        let docs = benchmark_documents(0..batch_size, &params);
        let mut total_ms = 0.0;
        let mut reps = 0u32;
        let mut matches = 0u64;
        while reps == 0 || (total_ms < min_elapsed_ms && reps < 50) {
            let mut engine = naive_base.clone();
            let start = Instant::now();
            let pubs = engine
                .register_batch(&docs)
                .expect("benchmark batch registers");
            total_ms += start.elapsed().as_secs_f64() * 1e3;
            matches = pubs.iter().map(|p| p.added.len() as u64).sum();
            reps += 1;
        }
        let per_batch = total_ms / reps as f64;
        let naive = Measurement {
            rule_type,
            rule_count: rc,
            batch_size,
            fraction: 0.0,
            total_ms: per_batch,
            avg_ms_per_doc: per_batch / batch_size as f64,
            matches,
        };
        assert_eq!(filter.matches, naive.matches, "engines must agree");
        out.push((filter, naive));
    }
    out
}

/// Ablation B: rule groups on versus off (probe sharing), JOIN rules.
pub fn ablation_groups(
    rule_count: u64,
    batch_size: u64,
    min_elapsed_ms: f64,
) -> (Measurement, Measurement) {
    let params = BenchParams {
        rule_count,
        comp_match_fraction: 0.1,
    };
    let grouped = build_engine_with_config(
        RuleType::Join,
        rule_count,
        FilterConfig {
            use_rule_groups: true,
            ..FilterConfig::default()
        },
    );
    let ungrouped = build_engine_with_config(
        RuleType::Join,
        rule_count,
        FilterConfig {
            use_rule_groups: false,
            ..FilterConfig::default()
        },
    );
    let a = run_point(
        &grouped,
        RuleType::Join,
        &params,
        batch_size,
        min_elapsed_ms,
    );
    let b = run_point(
        &ungrouped,
        RuleType::Join,
        &params,
        batch_size,
        min_elapsed_ms,
    );
    assert_eq!(a.matches, b.matches, "groups are a pure optimization");
    (a, b)
}

/// Ablation C: cost of the three-pass update protocol relative to plain
/// registration. Returns `(register_ms, update_ms, delete_ms)` per document
/// for a PATH rule base.
pub fn ablation_updates(rule_count: u64, doc_count: u64) -> (f64, f64, f64) {
    let params = BenchParams {
        rule_count,
        comp_match_fraction: 0.1,
    };
    let base = build_engine(RuleType::Path, rule_count);
    let docs = benchmark_documents(0..doc_count, &params);

    let mut engine = base.clone();
    let start = Instant::now();
    engine.register_batch(&docs).expect("register");
    let register_ms = start.elapsed().as_secs_f64() * 1e3 / doc_count as f64;

    // update every document: memory shifts so the old rule stops matching
    // and another starts (worst case: one removal plus one addition)
    let updates: Vec<_> = docs
        .iter()
        .enumerate()
        .map(|(i, d)| rebuild_with_memory(d, (i as u64) + doc_count))
        .collect();

    let start = Instant::now();
    for u in &updates {
        engine.update_document(u).expect("update");
    }
    let update_ms = start.elapsed().as_secs_f64() * 1e3 / doc_count as f64;

    let start = Instant::now();
    for d in &docs {
        engine.delete_document(d.uri()).expect("delete");
    }
    let delete_ms = start.elapsed().as_secs_f64() * 1e3 / doc_count as f64;

    (register_ms, update_ms, delete_ms)
}

/// Builds a WAL-durable engine over `dir`, pre-loaded with `rule_count`
/// rules of one type. The whole rule base is committed as one group, so
/// setup pays a single fsync rather than one per rule.
pub fn build_durable_engine(
    rule_type: RuleType,
    rule_count: u64,
    dir: &Path,
) -> FilterEngine<DurableEngine> {
    let store = DurableEngine::create(dir).expect("fresh benchmark WAL directory");
    let mut engine = FilterEngine::with_storage(store, benchmark_schema(), FilterConfig::default());
    engine.storage_mut().begin();
    for rule in benchmark_rules(rule_type, rule_count) {
        engine
            .register_subscription(&rule)
            .expect("benchmark rules are valid");
    }
    engine
        .storage_mut()
        .commit()
        .expect("rule-base commit group");
    engine
}

/// Measures one batch point on the durable backend. Unlike [`run_point`],
/// every repetition rebuilds the engine from scratch (a WAL directory has
/// one writer and no cheap clone), so repetitions are capped at 3; engine
/// construction is excluded from the timing.
pub fn run_point_durable(
    rule_type: RuleType,
    params: &BenchParams,
    batch_size: u64,
    scratch: &Path,
    min_elapsed_ms: f64,
) -> (Measurement, u64, u64) {
    let docs = benchmark_documents(0..batch_size, params);
    let mut total_ms = 0.0;
    let mut reps = 0u32;
    let mut matches = 0u64;
    let mut wal_bytes = 0u64;
    let mut commits = 0u64;
    while reps == 0 || (total_ms < min_elapsed_ms && reps < 3) {
        let dir = scratch.join(format!("rep{reps}"));
        let mut engine = build_durable_engine(rule_type, params.rule_count, &dir);
        let bytes_before = engine.storage().wal_bytes();
        let commits_before = engine.storage().commits();
        let start = Instant::now();
        let pubs = engine
            .register_batch(&docs)
            .expect("benchmark batch registers");
        total_ms += start.elapsed().as_secs_f64() * 1e3;
        matches = pubs.iter().map(|p| p.added.len() as u64).sum();
        wal_bytes = engine.storage().wal_bytes() - bytes_before;
        commits = engine.storage().commits() - commits_before;
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
        reps += 1;
    }
    let per_batch = total_ms / reps as f64;
    let m = Measurement {
        rule_type,
        rule_count: params.rule_count,
        batch_size,
        fraction: if rule_type == RuleType::Comp {
            params.comp_match_fraction
        } else {
            0.0
        },
        total_ms: per_batch,
        avg_ms_per_doc: per_batch / batch_size as f64,
        matches,
    };
    (m, wal_bytes, commits)
}

/// A full batch-size sweep on the durable backend (the `--backend durable`
/// path of the `figures` binary). Same workload as [`sweep`], run through
/// the WAL so group commit, framing, and fsync cost are all on the measured
/// path.
pub fn sweep_durable(
    rule_type: RuleType,
    rule_count: u64,
    fraction: f64,
    batch_sizes: &[u64],
    min_elapsed_ms: f64,
    scratch: &Path,
) -> Vec<Measurement> {
    let params = BenchParams {
        rule_count,
        comp_match_fraction: fraction,
    };
    batch_sizes
        .iter()
        .map(|&b| run_point_durable(rule_type, &params, b, scratch, min_elapsed_ms).0)
        .collect()
}

/// One row of the WAL-overhead study (EXPERIMENTS.md): the same batch
/// registration measured on the in-memory and the durable backend.
#[derive(Debug, Clone)]
pub struct WalOverhead {
    pub rule_type: RuleType,
    pub rule_count: u64,
    pub batch_size: u64,
    pub mem_ms: f64,
    pub durable_ms: f64,
    /// `durable_ms / mem_ms`.
    pub overhead: f64,
    /// WAL bytes the timed batch appended.
    pub wal_bytes: u64,
    /// Commit groups the timed batch flushed (group commit ⇒ 1).
    pub commits: u64,
}

/// Measures one WAL-overhead point: identical workload, identical matches,
/// in-memory vs durable.
pub fn wal_overhead_point(
    rule_type: RuleType,
    rule_count: u64,
    batch_size: u64,
    scratch: &Path,
    min_elapsed_ms: f64,
) -> WalOverhead {
    let params = BenchParams {
        rule_count,
        comp_match_fraction: 0.1,
    };
    let base = build_engine(rule_type, rule_count);
    let mem = run_point(&base, rule_type, &params, batch_size, min_elapsed_ms);
    let (durable, wal_bytes, commits) =
        run_point_durable(rule_type, &params, batch_size, scratch, min_elapsed_ms);
    assert_eq!(
        mem.matches, durable.matches,
        "backends must produce identical matches"
    );
    WalOverhead {
        rule_type,
        rule_count,
        batch_size,
        mem_ms: mem.total_ms,
        durable_ms: durable.total_ms,
        overhead: durable.total_ms / mem.total_ms,
        wal_bytes,
        commits,
    }
}

/// Rebuilds a benchmark document with a different memory value (same URIs).
fn rebuild_with_memory(doc: &mdv_rdf::Document, memory: u64) -> mdv_rdf::Document {
    use mdv_rdf::{Document, Resource, Term};
    let mut out = Document::new(doc.uri());
    for res in doc.resources() {
        let mut copy = Resource::new(res.uri().clone(), res.class());
        for (prop, term) in res.properties() {
            if prop == "memory" {
                copy.add(prop.clone(), Term::literal(memory.to_string()));
            } else {
                copy.add(prop.clone(), term.clone());
            }
        }
        out.add_resource(copy).expect("copy preserves validity");
    }
    out
}

/// Renders measurements as a CSV table.
pub fn render_csv(rows: &[Measurement]) -> String {
    let mut out =
        String::from("rule_type,rule_count,batch_size,fraction,total_ms,avg_ms_per_doc,matches\n");
    for m in rows {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.3},{:.5},{}\n",
            m.rule_type,
            m.rule_count,
            m.batch_size,
            m.fraction,
            m.total_ms,
            m.avg_ms_per_doc,
            m.matches
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oid_sweep_small() {
        let rows = sweep(RuleType::Oid, 100, 0.0, &[1, 10], 1.0);
        assert_eq!(rows.len(), 2);
        // 1:1 matching: every registered doc matched exactly once
        assert_eq!(rows[0].matches, 1);
        assert_eq!(rows[1].matches, 10);
        assert!(rows.iter().all(|m| m.avg_ms_per_doc > 0.0));
    }

    #[test]
    fn comp_fraction_controls_matches() {
        let rows = sweep_fractions(100, &[0.1, 0.5], &[10], 1.0);
        assert_eq!(rows.len(), 2);
        // 10 docs × 10% of 100 rules = 100 matches; ×50% = 500
        assert_eq!(rows[0].matches, 100);
        assert_eq!(rows[1].matches, 500);
    }

    #[test]
    fn join_sweep_produces_one_match_per_doc() {
        let rows = sweep(RuleType::Join, 50, 0.0, &[5], 1.0);
        assert_eq!(rows[0].matches, 5);
    }

    #[test]
    fn thread_scaling_point_is_deterministic_and_complete() {
        let rows = thread_scaling_point(RuleType::Path, 50, 10, &[1, 2, 4], 1.0);
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        // 1:1 matching holds at every thread count
        assert!(rows.iter().all(|(_, m)| m.matches == 10));
    }

    #[test]
    fn shard_scaling_point_is_deterministic_and_complete() {
        let rows = shard_scaling_point(RuleType::Path, 50, 10, &[1, 2, 4], 2, 1.0);
        assert_eq!(
            rows.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        // 1:1 matching holds at every shard count (the internal gate
        // already asserted byte-identical publications)
        assert!(rows.iter().all(|(_, m)| m.matches == 10));
    }

    #[test]
    fn naive_ablation_agrees_and_reports() {
        let rows = ablation_naive(RuleType::Path, &[50], 10, 1.0);
        assert_eq!(rows.len(), 1);
        let (f, n) = &rows[0];
        assert_eq!(f.matches, n.matches);
    }

    #[test]
    fn groups_ablation_agrees() {
        let (a, b) = ablation_groups(50, 10, 1.0);
        assert_eq!(a.matches, b.matches);
    }

    #[test]
    fn updates_ablation_runs() {
        let (r, u, d) = ablation_updates(50, 10);
        assert!(r > 0.0 && u > 0.0 && d > 0.0);
    }

    #[test]
    fn wal_overhead_point_agrees_across_backends() {
        let scratch = std::env::temp_dir().join(format!("mdv-bench-wal-{}", std::process::id()));
        let row = wal_overhead_point(RuleType::Oid, 50, 10, &scratch, 1.0);
        // identical matching discipline is asserted inside; spot-check the
        // instrumentation: group commit flushes the batch as ONE group
        assert_eq!(row.commits, 1);
        assert!(row.wal_bytes > 0, "batch must append WAL bytes");
        assert!(row.mem_ms > 0.0 && row.durable_ms > 0.0);
        let _ = std::fs::remove_dir_all(&scratch);
    }

    #[test]
    fn durable_sweep_small() {
        let scratch = std::env::temp_dir().join(format!("mdv-bench-dsweep-{}", std::process::id()));
        let rows = sweep_durable(RuleType::Oid, 50, 0.0, &[1, 5], 1.0, &scratch);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].matches, 1);
        assert_eq!(rows[1].matches, 5);
        let _ = std::fs::remove_dir_all(&scratch);
    }

    #[test]
    fn csv_renders() {
        let rows = sweep(RuleType::Oid, 10, 0.0, &[1], 1.0);
        let csv = render_csv(&rows);
        assert!(csv.starts_with("rule_type,"));
        assert!(csv.contains("OID,10,1,"));
    }
}
