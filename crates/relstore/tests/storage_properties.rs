//! Property tests for the storage-backend invariants added with the
//! `StorageEngine` abstraction (DESIGN.md §6):
//!
//! * transaction rollback restores rows *and* secondary-index contents to
//!   the pre-transaction deep snapshot, byte for byte,
//! * B-tree range probes agree with a full-scan oracle, including range
//!   boundaries and NULL keys,
//! * the durable WAL backend recovers exactly the committed prefix of a
//!   random workload after a crash, including a torn final record.

use std::ops::Bound;

use mdv_relstore::{
    read_database, write_database, ColumnDef, DataType, Database, DurableEngine, IndexKind, Row,
    RowId, StorageEngine, TableSchema, Txn, Value,
};
use mdv_testkit::{prop_assert_eq, property, Source};

fn schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            ColumnDef::new("class", DataType::Str),
            ColumnDef::new("value", DataType::Int).nullable(),
            ColumnDef::new("note", DataType::Str),
        ],
    )
    .unwrap()
}

fn arb_opt_int(src: &mut Source) -> Value {
    if src.weighted(&[1, 4]) == 0 {
        Value::Null
    } else {
        Value::Int(src.i64_in(-8..8))
    }
}

fn arb_row(src: &mut Source) -> Row {
    vec![
        Value::Str(src.string_of("ab", 1..2)),
        arb_opt_int(src),
        Value::Str(src.string_of("xyz", 0..3)),
    ]
}

/// Builds a database with a hash index, a composite B-tree index, and a
/// random starting population; returns the live row ids.
fn seeded_db(src: &mut Source) -> (Database, Vec<RowId>) {
    let mut db = Database::new();
    db.create_table(schema()).unwrap();
    db.create_index("t", "h_class", IndexKind::Hash, &["class"], false)
        .unwrap();
    db.create_index("t", "b_cv", IndexKind::BTree, &["class", "value"], false)
        .unwrap();
    let rows = src.vec(0..40, arb_row);
    let mut ids = Vec::new();
    for row in rows {
        ids.push(db.insert("t", row).unwrap());
    }
    (db, ids)
}

/// Observable index state: for every index, every bucket a probe can reach
/// from the candidate key set, plus the distinct-key count. Two databases
/// with equal dumps answer every probe identically.
fn index_dump(db: &Database, candidate_rows: &[Row]) -> Vec<String> {
    let t = db.table("t").unwrap();
    let mut out = Vec::new();
    for idx in t.indexes() {
        out.push(format!("{}#{}", idx.name(), idx.distinct_keys()));
        let mut lines: Vec<String> = candidate_rows
            .iter()
            .map(|full| {
                let key: Vec<Value> = idx.key_columns().iter().map(|&c| full[c].clone()).collect();
                let mut rids = idx.probe(&key);
                rids.sort();
                format!("{} {key:?} -> {rids:?}", idx.name())
            })
            .collect();
        lines.sort();
        lines.dedup();
        out.extend(lines);
    }
    out
}

fn bound_as_ref<T>(b: &Bound<T>) -> Bound<&T> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

fn in_bounds<T: Ord>(v: &T, lo: &Bound<T>, hi: &Bound<T>) -> bool {
    let lo_ok = match lo {
        Bound::Included(l) => v >= l,
        Bound::Excluded(l) => v > l,
        Bound::Unbounded => true,
    };
    let hi_ok = match hi {
        Bound::Included(h) => v <= h,
        Bound::Excluded(h) => v < h,
        Bound::Unbounded => true,
    };
    lo_ok && hi_ok
}

/// Draws a (lo, hi) bound pair and normalizes it so `BTreeMap::range`'s
/// preconditions hold (start <= end, not both excluded when equal) — the
/// query planner never issues inverted ranges either.
fn arb_bounds<T: Ord + Clone>(
    src: &mut Source,
    mut mk: impl FnMut(&mut Source) -> T,
) -> (Bound<T>, Bound<T>) {
    let mut one = |src: &mut Source| match src.weighted(&[1, 2, 2]) {
        0 => Bound::Unbounded,
        1 => Bound::Included(mk(src)),
        _ => Bound::Excluded(mk(src)),
    };
    let (mut lo, mut hi) = (one(src), one(src));
    let val = |b: &Bound<T>| match b {
        Bound::Included(v) | Bound::Excluded(v) => Some(v.clone()),
        Bound::Unbounded => None,
    };
    if let (Some(l), Some(h)) = (val(&lo), val(&hi)) {
        if l > h {
            std::mem::swap(&mut lo, &mut hi);
        }
        if let (Some(l), Some(h)) = (val(&lo), val(&hi)) {
            if l == h && matches!(lo, Bound::Excluded(_)) && matches!(hi, Bound::Excluded(_)) {
                hi = Bound::Included(h);
            }
        }
    }
    (lo, hi)
}

property! {
    /// Satellite: a rolled-back transaction leaves the database — rows,
    /// row ids, id counters, *and* secondary-index contents — byte-equal
    /// to a deep snapshot taken before the transaction, for arbitrary op
    /// sequences over arbitrary live rows.
    fn txn_rollback_restores_rows_and_indexes(src) {
        let (mut db, mut ids) = seeded_db(src);
        // candidate probe keys: every row that ever existed, plus every
        // row the transaction writes (collected as we go)
        let mut keys: Vec<Row> = db.table("t").unwrap()
            .iter().map(|(_, r)| r.clone()).collect();

        let before_text = write_database(&db);
        let ops = src.vec(1..25, |src| (src.usize_in(0..3), arb_row(src), src.usize_in(0..64)));
        {
            let mut txn = Txn::begin(&mut db);
            for (kind, row, pick) in &ops {
                keys.push(row.clone());
                match kind {
                    0 => {
                        if let Ok(id) = txn.insert("t", row.clone()) {
                            ids.push(id);
                        }
                    }
                    1 => {
                        if !ids.is_empty() {
                            // may target an already-deleted row: must error
                            // without corrupting undo state
                            let _ = txn.delete("t", ids[pick % ids.len()]);
                        }
                    }
                    _ => {
                        if !ids.is_empty() {
                            let _ = txn.update("t", ids[pick % ids.len()], row.clone());
                        }
                    }
                }
            }
            txn.rollback();
        }

        // rows, ids, and id counters: byte-equal snapshot text
        prop_assert_eq!(write_database(&db), before_text);
        // secondary indexes: every reachable bucket identical to a fresh
        // rebuild of the pre-transaction state, probed over every key the
        // transaction could have disturbed
        let fresh = read_database(&before_text).unwrap();
        prop_assert_eq!(index_dump(&db, &keys), index_dump(&fresh, &keys));
    }

    /// Satellite: B-tree range probes (full-key and prefix+range) return
    /// exactly what a full scan of the table returns, across random
    /// insert/delete workloads with NULL keys and boundary bounds.
    fn btree_range_probe_matches_full_scan(src) {
        let (mut db, ids) = seeded_db(src);
        // random deletions leave holes and empty buckets behind
        for id in &ids {
            if src.weighted(&[1, 2]) == 0 {
                db.delete("t", *id).unwrap();
            }
        }
        let t = db.table("t").unwrap();
        let idx = t.index("b_cv").unwrap();
        let live: Vec<(RowId, Row)> = t.iter().map(|(id, r)| (id, r.clone())).collect();

        // endpoints drawn from the live population half the time, so
        // Included/Excluded bounds land exactly on real keys
        let arb_endpoint_int = |src: &mut Source, live: &[(RowId, Row)]| {
            if !live.is_empty() && src.bool() {
                live[src.usize_in(0..live.len())].1[1].clone()
            } else {
                arb_opt_int(src)
            }
        };
        let arb_endpoint_key = |src: &mut Source, live: &[(RowId, Row)]| -> Vec<Value> {
            if !live.is_empty() && src.bool() {
                let r = &live[src.usize_in(0..live.len())].1;
                vec![r[0].clone(), r[1].clone()]
            } else {
                vec![Value::Str(src.string_of("ab", 1..2)), arb_opt_int(src)]
            }
        };

        // (a) full-composite-key range probe vs scan
        for _ in 0..4 {
            let (lo, hi) = arb_bounds(src, |s| arb_endpoint_key(s, &live));
            let mut got = idx.probe_range(bound_as_ref(&lo), bound_as_ref(&hi)).unwrap();
            got.sort();
            let mut want: Vec<RowId> = live
                .iter()
                .filter(|(_, r)| in_bounds(&vec![r[0].clone(), r[1].clone()], &lo, &hi))
                .map(|(id, _)| *id)
                .collect();
            want.sort();
            prop_assert_eq!(got, want, "full-key range {:?}..{:?}", lo, hi);
        }

        // (b) prefix + ranged-last-column probe vs scan
        for _ in 0..4 {
            let prefix = vec![Value::Str(src.string_of("ab", 1..2))];
            let (lo, hi) = arb_bounds(src, |s| arb_endpoint_int(s, &live));
            let mut got = idx
                .probe_prefix_range(&prefix, bound_as_ref(&lo), bound_as_ref(&hi))
                .unwrap();
            got.sort();
            let mut want: Vec<RowId> = live
                .iter()
                .filter(|(_, r)| r[0] == prefix[0] && in_bounds(&r[1], &lo, &hi))
                .map(|(id, _)| *id)
                .collect();
            want.sort();
            prop_assert_eq!(got, want, "prefix {:?} range {:?}..{:?}", prefix, lo, hi);
        }

        // (c) point probes (incl. NULL keys) agree with the scan as well
        for _ in 0..4 {
            let key = arb_endpoint_key(src, &live);
            let mut got = idx.probe(&key);
            got.sort();
            let mut want: Vec<RowId> = live
                .iter()
                .filter(|(_, r)| r[0] == key[0] && r[1] == key[1])
                .map(|(id, _)| *id)
                .collect();
            want.sort();
            prop_assert_eq!(got, want, "point probe {:?}", key);
        }
    }

    /// The durable backend recovers a random committed workload exactly:
    /// after an abrupt drop (no clean shutdown) plus a random torn tail
    /// appended to the log, `open` reproduces the committed state byte for
    /// byte — and an uncommitted trailing group vanishes whole.
    fn wal_recovery_matches_committed_state(src) {
        let dir = std::env::temp_dir().join(format!(
            "mdv-walprop-{}-{:x}",
            std::process::id(),
            src.any_i64() as u64
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.set_checkpoint_every(if src.bool() { Some(7) } else { None });
        eng.create_table(schema()).unwrap();
        eng.create_index("t", "h_class", IndexKind::Hash, &["class"], false).unwrap();
        let mut ids: Vec<RowId> = Vec::new();
        let ops = src.vec(1..30, |src| (src.usize_in(0..4), arb_row(src), src.usize_in(0..64)));
        for (kind, row, pick) in ops {
            match kind {
                0 | 1 => {
                    ids.push(StorageEngine::insert(&mut eng, "t", row).unwrap());
                }
                2 => {
                    if !ids.is_empty() {
                        let id = ids.remove(pick % ids.len());
                        StorageEngine::delete(&mut eng, "t", id).unwrap();
                    }
                }
                _ => {
                    if !ids.is_empty() {
                        let id = ids[pick % ids.len()];
                        StorageEngine::update(&mut eng, "t", id, row).unwrap();
                    }
                }
            }
        }
        let committed = write_database(eng.database());
        let epoch = eng.epoch();
        // an uncommitted group on top must vanish whole on recovery
        if src.bool() {
            eng.begin();
            let _ = StorageEngine::insert(&mut eng, "t", arb_row(src));
            let _ = StorageEngine::insert(&mut eng, "t", arb_row(src));
        }
        drop(eng); // crash: no clean shutdown hook exists by design

        if src.bool() {
            // torn final record: partial garbage appended mid-write
            let tail = src.vec(1..12, |s| s.i64_in(0..256) as u8);
            let path = dir.join(format!("wal-{epoch}"));
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&tail).unwrap();
        }

        let recovered = DurableEngine::open(&dir).unwrap();
        let got = write_database(recovered.database());
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(got, committed);
    }
}
