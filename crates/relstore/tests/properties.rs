//! Property-based tests for the storage engine's core invariants, on
//! `mdv-testkit` (deterministic seeds, ≥64 cases, see `MDV_PROP_CASES`).

use mdv_relstore::{
    join, query, CmpOp, ColumnDef, DataType, Database, IndexKind, Predicate, Row, Table,
    TableSchema, Txn, Value,
};
use mdv_testkit::{prop_assert_eq, prop_assert_ne, property, Source};

fn arb_value(src: &mut Source) -> Value {
    match src.weighted(&[1, 1, 2, 2, 2]) {
        0 => Value::Null,
        1 => Value::Bool(src.bool()),
        2 => Value::Int(src.i64_in(-1000..1000)),
        3 => Value::Float(src.i64_in(-1000..1000) as f64 / 4.0),
        _ => Value::Str(src.string_of("abcdefghijklmnopqrstuvwxyz", 0..9)),
    }
}

fn filterlike_schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            ColumnDef::new("class", DataType::Str),
            ColumnDef::new("property", DataType::Str),
            ColumnDef::new("value", DataType::Int),
        ],
    )
    .unwrap()
}

fn arb_rows(src: &mut Source) -> Vec<(String, String, i64)> {
    src.vec(0..60, |src| {
        (
            src.string_of("abc", 1..2),
            src.string_of("xyz", 1..2),
            src.i64_in(-20..20),
        )
    })
}

fn arb_join_rows(src: &mut Source) -> Vec<(String, i64)> {
    src.vec(0..25, |src| (src.string_of("ab", 1..2), src.i64_in(-5..5)))
}

fn build_tables(rows: &[(String, String, i64)]) -> (Table, Table) {
    // plain: no indexes; indexed: hash on (class, property) + btree on all three
    let mut plain = Table::new(filterlike_schema());
    let mut indexed = Table::new(filterlike_schema());
    indexed
        .create_index("h", IndexKind::Hash, &["class", "property"], false)
        .unwrap();
    indexed
        .create_index(
            "b",
            IndexKind::BTree,
            &["class", "property", "value"],
            false,
        )
        .unwrap();
    for (c, p, v) in rows {
        let row = vec![Value::Str(c.clone()), Value::Str(p.clone()), Value::Int(*v)];
        plain.insert(row.clone()).unwrap();
        indexed.insert(row).unwrap();
    }
    (plain, indexed)
}

fn sorted_rows(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

property! {
    /// Value's Ord is a total order: antisymmetric, transitive on triples.
    fn value_order_is_total(src) {
        use std::cmp::Ordering;
        let (a, b, c) = (arb_value(src), arb_value(src), arb_value(src));
        // antisymmetry
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // transitivity
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }

    /// Eq and Hash agree (required for hash-join correctness).
    fn value_eq_implies_same_hash(src) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        let (a, b) = (arb_value(src), arb_value(src));
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// sql_cmp agrees with the total order whenever it is defined.
    fn sql_cmp_consistent_with_ord(src) {
        let (a, b) = (arb_value(src), arb_value(src));
        if let Some(ord) = a.sql_cmp(&b) {
            prop_assert_eq!(ord, a.cmp(&b));
        }
    }

    /// Index-backed plans and table scans return the same result set.
    fn index_scan_equivalence(src) {
        let rows = arb_rows(src);
        let c = src.string_of("abc", 1..2);
        let p = src.string_of("xyz", 1..2);
        let lo = src.i64_in(-20..20);
        let (plain, indexed) = build_tables(&rows);
        let pred = Predicate::and(vec![
            Predicate::col_eq(plain.schema(), "class", Value::Str(c)).unwrap(),
            Predicate::col_eq(plain.schema(), "property", Value::Str(p)).unwrap(),
            Predicate::col_cmp(plain.schema(), "value", CmpOp::Gt, Value::Int(lo)).unwrap(),
        ]);
        let scan: Vec<Row> = query::select(&plain, &pred).unwrap()
            .into_iter().map(|(_, r)| r).collect();
        let idx: Vec<Row> = query::select(&indexed, &pred).unwrap()
            .into_iter().map(|(_, r)| r).collect();
        prop_assert_eq!(sorted_rows(scan), sorted_rows(idx));
    }

    /// Hash join equals the brute-force nested-loop equi-join.
    fn hash_join_matches_nested_loop(src) {
        let left = arb_join_rows(src);
        let right = arb_join_rows(src);
        let lrows: Vec<Row> = left.iter()
            .map(|(s, i)| vec![Value::Str(s.clone()), Value::Int(*i)]).collect();
        let rrows: Vec<Row> = right.iter()
            .map(|(s, i)| vec![Value::Str(s.clone()), Value::Int(*i)]).collect();
        let hashed = join::hash_join(&lrows, &rrows, &[1], &[1]);
        let pred = Predicate::Cmp {
            lhs: mdv_relstore::Expr::Col(1),
            op: CmpOp::Eq,
            rhs: mdv_relstore::Expr::Col(3),
        };
        let looped = join::nested_loop_join(&lrows, &rrows, &pred).unwrap();
        prop_assert_eq!(sorted_rows(hashed), sorted_rows(looped));
    }

    /// Semi-join and anti-join partition the left input.
    fn semi_anti_partition(src) {
        let left = arb_join_rows(src);
        let right = arb_join_rows(src);
        let lrows: Vec<Row> = left.iter()
            .map(|(s, i)| vec![Value::Str(s.clone()), Value::Int(*i)]).collect();
        let rrows: Vec<Row> = right.iter()
            .map(|(s, i)| vec![Value::Str(s.clone()), Value::Int(*i)]).collect();
        let semi = join::semi_join(&lrows, &rrows, &[0, 1], &[0, 1]);
        let anti = join::anti_join(&lrows, &rrows, &[0, 1], &[0, 1]);
        prop_assert_eq!(semi.len() + anti.len(), lrows.len());
        let mut merged = semi;
        merged.extend(anti);
        prop_assert_eq!(sorted_rows(merged), sorted_rows(lrows));
    }

    /// A rolled-back transaction leaves no observable trace.
    fn txn_rollback_is_identity(src) {
        let initial = arb_rows(src);
        let ops = src.vec(0..20, |src| {
            (
                src.usize_in(0..3),
                src.string_of("abc", 1..2),
                src.string_of("xyz", 1..2),
                src.i64_in(-20..20),
            )
        });
        let mut db = Database::new();
        db.create_table(filterlike_schema()).unwrap();
        db.create_index("t", "h", IndexKind::Hash, &["class", "property"], false).unwrap();
        let mut ids = Vec::new();
        for (c, p, v) in &initial {
            ids.push(db.insert("t",
                vec![Value::Str(c.clone()), Value::Str(p.clone()), Value::Int(*v)]).unwrap());
        }
        let before: Vec<Row> = db.table("t").unwrap().iter().map(|(_, r)| r.clone()).collect();

        {
            let mut txn = Txn::begin(&mut db);
            for (kind, c, p, v) in &ops {
                let row = vec![Value::Str(c.clone()), Value::Str(p.clone()), Value::Int(*v)];
                match kind {
                    0 => { txn.insert("t", row).unwrap(); }
                    1 => {
                        if let Some(id) = ids.first().copied() {
                            // delete/update may fail if a prior op in this txn
                            // already deleted the row; that is fine.
                            let _ = txn.delete("t", id);
                        }
                    }
                    _ => {
                        if let Some(id) = ids.first().copied() {
                            let _ = txn.update("t", id, row);
                        }
                    }
                }
            }
            txn.rollback();
        }

        let after: Vec<Row> = db.table("t").unwrap().iter().map(|(_, r)| r.clone()).collect();
        prop_assert_eq!(sorted_rows(before), sorted_rows(after));
    }

    /// String round-trip through coercion preserves integers (the paper's
    /// "constants stored as strings, reconverted when joining").
    fn int_string_coercion_roundtrip(src) {
        let v = src.any_i64();
        let s = Value::Int(v).coerce(DataType::Str).unwrap();
        prop_assert_eq!(s.coerce(DataType::Int).unwrap(), Value::Int(v));
    }

    /// Snapshot write → read is the identity on databases.
    fn snapshot_roundtrip(src) {
        use mdv_relstore::{read_database, write_database};
        let rows = arb_rows(src);
        let mut db = Database::new();
        db.create_table(filterlike_schema()).unwrap();
        db.create_index("t", "h", IndexKind::Hash, &["class", "property"], false).unwrap();
        let mut ids = Vec::new();
        for (c, p, v) in &rows {
            ids.push(
                db.insert("t", vec![Value::Str(c.clone()), Value::Str(p.clone()), Value::Int(*v)])
                    .unwrap(),
            );
        }
        // delete every third row so holes and id gaps are exercised
        for id in ids.iter().step_by(3) {
            db.delete("t", *id).unwrap();
        }
        let restored = read_database(&write_database(&db)).unwrap();
        let dump = |d: &Database| {
            let mut rows: Vec<String> =
                d.table("t").unwrap().iter().map(|(id, r)| format!("{id:?}{r:?}")).collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(dump(&db), dump(&restored));
        // restored index answers the same probes
        let t = restored.table("t").unwrap();
        for (c, p, _) in rows.iter().take(5) {
            let key = vec![Value::Str(c.clone()), Value::Str(p.clone())];
            let a = db.table("t").unwrap().index("h").unwrap().probe(&key).len();
            let b = t.index("h").unwrap().probe(&key).len();
            prop_assert_eq!(a, b);
        }
    }
}
