//! Row predicates: comparison operators and boolean combinators, evaluated
//! with SQL three-valued logic (NULL comparisons are unknown, and unknown
//! rows are filtered out).

use std::fmt;

use crate::error::Result;
use crate::schema::TableSchema;
use crate::value::{DataType, Value};

/// Comparison operators of the MDV rule language (paper §2.3) plus the
/// operators needed internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Substring containment on strings (`contains` in the rule language).
    Contains,
}

impl CmpOp {
    /// Evaluates `lhs op rhs` under SQL semantics; `None` means unknown.
    pub fn eval(self, lhs: &Value, rhs: &Value) -> Option<bool> {
        match self {
            CmpOp::Eq => lhs.sql_eq(rhs),
            CmpOp::Ne => lhs.sql_eq(rhs).map(|b| !b),
            CmpOp::Lt => lhs.sql_cmp(rhs).map(|o| o.is_lt()),
            CmpOp::Le => lhs.sql_cmp(rhs).map(|o| o.is_le()),
            CmpOp::Gt => lhs.sql_cmp(rhs).map(|o| o.is_gt()),
            CmpOp::Ge => lhs.sql_cmp(rhs).map(|o| o.is_ge()),
            CmpOp::Contains => match (lhs, rhs) {
                (Value::Null, _) | (_, Value::Null) => None,
                (Value::Str(a), Value::Str(b)) => Some(a.contains(b.as_str())),
                _ => Some(false),
            },
        }
    }

    /// The operator with operand sides swapped (`a < b` ⇔ `b > a`).
    /// `Contains` is not symmetric and has no mirror; it maps to itself only
    /// for the callers that never flip it.
    pub fn mirrored(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Contains => CmpOp::Contains,
        }
    }

    /// The negated operator, used when splitting `or` rules via De Morgan
    /// (paper §2.3 mentions negated operators). `Contains` has no negation in
    /// the operator set and returns `None`.
    pub fn negated(self) -> Option<CmpOp> {
        match self {
            CmpOp::Eq => Some(CmpOp::Ne),
            CmpOp::Ne => Some(CmpOp::Eq),
            CmpOp::Lt => Some(CmpOp::Ge),
            CmpOp::Le => Some(CmpOp::Gt),
            CmpOp::Gt => Some(CmpOp::Le),
            CmpOp::Ge => Some(CmpOp::Lt),
            CmpOp::Contains => None,
        }
    }

    /// True for the ordered comparison operators (`< <= > >=`), which the
    /// paper restricts to numeric constants (§3.3.4).
    pub fn is_ordering(self) -> bool {
        matches!(self, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Contains => "contains",
        };
        f.write_str(s)
    }
}

/// A scalar expression over a single row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column by position.
    Col(usize),
    /// Constant value.
    Const(Value),
    /// Coerce a sub-expression to a data type (string↔number reconversion).
    Cast(Box<Expr>, DataType),
}

impl Expr {
    /// Convenience constructor resolving a column by name.
    pub fn col(schema: &TableSchema, name: &str) -> Result<Expr> {
        Ok(Expr::Col(schema.column_index(name)?))
    }

    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        match self {
            Expr::Col(i) => Ok(row[*i].clone()),
            Expr::Const(v) => Ok(v.clone()),
            Expr::Cast(e, dt) => e.eval(row)?.coerce(*dt),
        }
    }
}

/// A boolean predicate over a single row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (scan everything).
    True,
    Cmp {
        lhs: Expr,
        op: CmpOp,
        rhs: Expr,
    },
    And(Vec<Predicate>),
    Or(Vec<Predicate>),
    Not(Box<Predicate>),
}

impl Predicate {
    /// Shorthand for `column op constant`.
    pub fn col_cmp(schema: &TableSchema, column: &str, op: CmpOp, value: Value) -> Result<Self> {
        Ok(Predicate::Cmp {
            lhs: Expr::col(schema, column)?,
            op,
            rhs: Expr::Const(value),
        })
    }

    /// Shorthand for `column = constant`.
    pub fn col_eq(schema: &TableSchema, column: &str, value: Value) -> Result<Self> {
        Self::col_cmp(schema, column, CmpOp::Eq, value)
    }

    /// Conjunction of predicates, flattening nested `And`s.
    pub fn and(preds: Vec<Predicate>) -> Self {
        let mut flat = Vec::with_capacity(preds.len());
        for p in preds {
            match p {
                Predicate::True => {}
                Predicate::And(ps) => flat.extend(ps),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Predicate::True,
            1 => flat.pop().expect("len checked"),
            _ => Predicate::And(flat),
        }
    }

    /// Three-valued evaluation; `None` is unknown.
    pub fn eval3(&self, row: &[Value]) -> Result<Option<bool>> {
        Ok(match self {
            Predicate::True => Some(true),
            Predicate::Cmp { lhs, op, rhs } => {
                let l = lhs.eval(row)?;
                let r = rhs.eval(row)?;
                op.eval(&l, &r)
            }
            Predicate::And(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval3(row)? {
                        Some(false) => return Ok(Some(false)),
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(true)
                }
            }
            Predicate::Or(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval3(row)? {
                        Some(true) => return Ok(Some(true)),
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(false)
                }
            }
            Predicate::Not(p) => p.eval3(row)?.map(|b| !b),
        })
    }

    /// Filter semantics: a row passes only when the predicate is truly true.
    pub fn matches(&self, row: &[Value]) -> Result<bool> {
        // A failed coercion inside a Cast means the operand cannot satisfy
        // the comparison; SQL would raise, but filter semantics treat it as
        // a non-match, which is what the MDV string-reconversion join needs.
        match self.eval3(row) {
            Ok(v) => Ok(v == Some(true)),
            Err(crate::error::Error::TypeError(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("s", DataType::Str),
                ColumnDef::new("n", DataType::Int).nullable(),
            ],
        )
        .unwrap()
    }

    fn row(a: i64, s: &str, n: Option<i64>) -> Vec<Value> {
        vec![
            Value::Int(a),
            Value::Str(s.into()),
            n.map_or(Value::Null, Value::Int),
        ]
    }

    #[test]
    fn cmp_op_eval_matrix() {
        use CmpOp::*;
        let one = Value::Int(1);
        let two = Value::Int(2);
        assert_eq!(Eq.eval(&one, &one), Some(true));
        assert_eq!(Ne.eval(&one, &two), Some(true));
        assert_eq!(Lt.eval(&one, &two), Some(true));
        assert_eq!(Le.eval(&two, &two), Some(true));
        assert_eq!(Gt.eval(&one, &two), Some(false));
        assert_eq!(Ge.eval(&two, &one), Some(true));
        assert_eq!(Eq.eval(&Value::Null, &one), None);
    }

    #[test]
    fn contains_semantics() {
        let host = Value::Str("pirates.uni-passau.de".into());
        let pat = Value::Str("uni-passau.de".into());
        assert_eq!(CmpOp::Contains.eval(&host, &pat), Some(true));
        assert_eq!(CmpOp::Contains.eval(&pat, &host), Some(false));
        assert_eq!(CmpOp::Contains.eval(&Value::Int(1), &pat), Some(false));
        assert_eq!(CmpOp::Contains.eval(&Value::Null, &pat), None);
    }

    #[test]
    fn mirrored_and_negated() {
        assert_eq!(CmpOp::Lt.mirrored(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.mirrored(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.mirrored(), CmpOp::Eq);
        assert_eq!(CmpOp::Lt.negated(), Some(CmpOp::Ge));
        assert_eq!(CmpOp::Contains.negated(), None);
    }

    #[test]
    fn predicate_eval_and_or_not() {
        let s = schema();
        let p = Predicate::and(vec![
            Predicate::col_cmp(&s, "a", CmpOp::Gt, Value::Int(0)).unwrap(),
            Predicate::col_cmp(&s, "s", CmpOp::Contains, Value::Str("x".into())).unwrap(),
        ]);
        assert!(p.matches(&row(1, "axb", None)).unwrap());
        assert!(!p.matches(&row(1, "ab", None)).unwrap());
        assert!(!p.matches(&row(0, "x", None)).unwrap());

        let q = Predicate::Or(vec![
            Predicate::col_eq(&s, "a", Value::Int(5)).unwrap(),
            Predicate::col_eq(&s, "s", Value::Str("hit".into())).unwrap(),
        ]);
        assert!(q.matches(&row(5, "no", None)).unwrap());
        assert!(q.matches(&row(0, "hit", None)).unwrap());
        assert!(!q.matches(&row(0, "no", None)).unwrap());

        let n = Predicate::Not(Box::new(q));
        assert!(n.matches(&row(0, "no", None)).unwrap());
    }

    #[test]
    fn null_filters_out() {
        let s = schema();
        let p = Predicate::col_cmp(&s, "n", CmpOp::Gt, Value::Int(10)).unwrap();
        assert!(
            !p.matches(&row(1, "x", None)).unwrap(),
            "NULL > 10 is unknown, filtered"
        );
        assert!(p.matches(&row(1, "x", Some(11))).unwrap());
        // NOT over unknown stays unknown, still filtered
        let np = Predicate::Not(Box::new(p));
        assert!(!np.matches(&row(1, "x", None)).unwrap());
    }

    #[test]
    fn and_three_valued_short_circuit() {
        let s = schema();
        // false AND unknown = false (not unknown)
        let p = Predicate::And(vec![
            Predicate::col_eq(&s, "a", Value::Int(99)).unwrap(),
            Predicate::col_cmp(&s, "n", CmpOp::Gt, Value::Int(0)).unwrap(),
        ]);
        assert_eq!(p.eval3(&row(1, "x", None)).unwrap(), Some(false));
        // true AND unknown = unknown
        let p = Predicate::And(vec![
            Predicate::col_eq(&s, "a", Value::Int(1)).unwrap(),
            Predicate::col_cmp(&s, "n", CmpOp::Gt, Value::Int(0)).unwrap(),
        ]);
        assert_eq!(p.eval3(&row(1, "x", None)).unwrap(), None);
    }

    #[test]
    fn cast_reconverts_strings_for_comparison() {
        let s = TableSchema::new("r", vec![ColumnDef::new("value", DataType::Str)]).unwrap();
        // value stored as string, compared numerically: CAST(value AS INT) > 64
        let p = Predicate::Cmp {
            lhs: Expr::Cast(Box::new(Expr::col(&s, "value").unwrap()), DataType::Int),
            op: CmpOp::Gt,
            rhs: Expr::Const(Value::Int(64)),
        };
        assert!(p.matches(&[Value::Str("92".into())]).unwrap());
        assert!(!p.matches(&[Value::Str("32".into())]).unwrap());
        // non-numeric strings silently fail the match instead of erroring
        assert!(!p.matches(&[Value::Str("not-a-number".into())]).unwrap());
    }

    #[test]
    fn and_flattening() {
        let s = schema();
        let inner = Predicate::and(vec![
            Predicate::col_eq(&s, "a", Value::Int(1)).unwrap(),
            Predicate::True,
        ]);
        // single non-trivial predicate collapses
        assert!(matches!(inner, Predicate::Cmp { .. }));
        assert!(matches!(Predicate::and(vec![]), Predicate::True));
    }
}
