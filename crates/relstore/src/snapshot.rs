//! Database snapshots: a line-oriented, human-readable persistence format
//! for a whole [`Database`] — schemas, indexes, rows, and row ids.
//!
//! Row ids are preserved exactly, so snapshots round-trip: references held
//! outside the database (none inside MDV, but the engine's internal id
//! counters) stay valid, and `write ∘ read` is the identity (tested by
//! property tests).
//!
//! Format (tab-separated fields, `\\`/`\t`/`\n` escaped in strings):
//!
//! ```text
//! #mdv-relstore-snapshot v1
//! table  <name>
//! col    <name>  <BOOL|INT|FLOAT|STR>  <null|notnull>
//! index  <name>  <hash|btree>  <unique|multi>  <col> [<col> ...]
//! row    <id>    <value> ...
//! end
//! ```
//!
//! Values: `N` (null), `B:true|false`, `I:<decimal>`, `F:<f64 bits in hex>`
//! (exact), `S:<escaped string>`.

use crate::catalog::Database;
use crate::error::{Error, Result};
use crate::index::IndexKind;
use crate::schema::{ColumnDef, TableSchema};
use crate::table::{Row, RowId};
use crate::value::{DataType, Value};

const HEADER: &str = "#mdv-relstore-snapshot v1";

/// Serializes the whole database.
pub fn write_database(db: &Database) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for name in db.table_names() {
        let table = db.table(name).expect("listed table exists");
        out.push_str(&format!("table\t{}\n", escape(name)));
        for col in table.schema().columns() {
            out.push_str(&format!(
                "col\t{}\t{}\t{}\n",
                escape(&col.name),
                col.dtype,
                if col.nullable { "null" } else { "notnull" }
            ));
        }
        for idx in table.indexes() {
            let kind = match idx.kind() {
                IndexKind::Hash => "hash",
                IndexKind::BTree => "btree",
            };
            let cols: Vec<String> = idx.key_columns().iter().map(|c| c.to_string()).collect();
            out.push_str(&format!(
                "index\t{}\t{kind}\t{}\t{}\n",
                escape(idx.name()),
                if idx.is_unique() { "unique" } else { "multi" },
                cols.join("\t")
            ));
        }
        // canonical order: rows sorted by id, so two logically equal
        // databases serialize byte-identically regardless of their slot
        // layout (slots diverge after delete/insert churn, and a durable
        // checkpoint compacts holes away — see DESIGN.md §6)
        let mut rows: Vec<(RowId, &Row)> = table.iter().collect();
        rows.sort_by_key(|(rid, _)| *rid);
        for (rid, row) in rows {
            out.push_str(&format!("row\t{}", rid.0));
            for v in row {
                out.push('\t');
                out.push_str(&encode_value(v));
            }
            out.push('\n');
        }
        out.push_str("end\n");
    }
    out
}

/// Restores a database from snapshot text.
pub fn read_database(text: &str) -> Result<Database> {
    let mut lines = text.lines();
    let bad = |msg: &str| Error::TypeError(format!("snapshot: {msg}"));
    if lines.next() != Some(HEADER) {
        return Err(bad("missing or unsupported header"));
    }
    let mut db = Database::new();
    let mut current: Option<String> = None;
    // table construction is two-phase: collect cols first, create on the
    // first non-col line
    let mut pending_cols: Vec<ColumnDef> = Vec::new();
    let mut table_created = false;

    fn ensure_table(
        db: &mut Database,
        name: &Option<String>,
        cols: &mut Vec<ColumnDef>,
        created: &mut bool,
    ) -> Result<()> {
        if *created {
            return Ok(());
        }
        let name = name
            .as_ref()
            .ok_or_else(|| Error::TypeError("snapshot: content before 'table'".into()))?;
        db.create_table(TableSchema::new(name.clone(), std::mem::take(cols))?)?;
        *created = true;
        Ok(())
    }

    for line in lines {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "table" => {
                if current.is_some() {
                    return Err(bad("'table' before previous 'end'"));
                }
                let [_, name] = fields.as_slice() else {
                    return Err(bad("malformed 'table'"));
                };
                current = Some(unescape(name)?);
                pending_cols.clear();
                table_created = false;
            }
            "col" => {
                let [_, name, dtype, nullable] = fields.as_slice() else {
                    return Err(bad("malformed 'col'"));
                };
                if table_created {
                    return Err(bad("'col' after rows or indexes"));
                }
                let dtype = match *dtype {
                    "BOOL" => DataType::Bool,
                    "INT" => DataType::Int,
                    "FLOAT" => DataType::Float,
                    "STR" => DataType::Str,
                    other => return Err(bad(&format!("unknown type '{other}'"))),
                };
                let mut col = ColumnDef::new(unescape(name)?, dtype);
                match *nullable {
                    "null" => col = col.nullable(),
                    "notnull" => {}
                    other => return Err(bad(&format!("unknown nullability '{other}'"))),
                }
                pending_cols.push(col);
            }
            "index" => {
                ensure_table(&mut db, &current, &mut pending_cols, &mut table_created)?;
                if fields.len() < 5 {
                    return Err(bad("malformed 'index'"));
                }
                let name = unescape(fields[1])?;
                let kind = match fields[2] {
                    "hash" => IndexKind::Hash,
                    "btree" => IndexKind::BTree,
                    other => return Err(bad(&format!("unknown index kind '{other}'"))),
                };
                let unique = match fields[3] {
                    "unique" => true,
                    "multi" => false,
                    other => return Err(bad(&format!("unknown uniqueness '{other}'"))),
                };
                let table_name = current.as_ref().expect("ensure_table checked").clone();
                let table = db.table(&table_name)?;
                // map positions back to column names for the public API
                let mut col_names: Vec<&str> = Vec::new();
                for f in &fields[4..] {
                    let pos: usize = f.parse().map_err(|_| bad("non-numeric index column"))?;
                    let col = table
                        .schema()
                        .columns()
                        .get(pos)
                        .ok_or_else(|| bad("index column out of range"))?;
                    col_names.push(&col.name);
                }
                let col_names_owned: Vec<String> =
                    col_names.iter().map(|s| s.to_string()).collect();
                let col_refs: Vec<&str> = col_names_owned.iter().map(String::as_str).collect();
                db.create_index(&table_name, &name, kind, &col_refs, unique)?;
            }
            "row" => {
                ensure_table(&mut db, &current, &mut pending_cols, &mut table_created)?;
                if fields.len() < 2 {
                    return Err(bad("malformed 'row'"));
                }
                let id: u64 = fields[1].parse().map_err(|_| bad("non-numeric row id"))?;
                let row: Vec<Value> = fields[2..]
                    .iter()
                    .map(|f| decode_value(f))
                    .collect::<Result<_>>()?;
                let table_name = current.as_ref().expect("ensure_table checked").clone();
                db.table_mut(&table_name)?.restore(RowId(id), row)?;
            }
            "end" => {
                ensure_table(&mut db, &current, &mut pending_cols, &mut table_created)?;
                current = None;
            }
            other => return Err(bad(&format!("unknown record '{other}'"))),
        }
    }
    if current.is_some() {
        return Err(bad("unterminated table (missing 'end')"));
    }
    Ok(db)
}

/// Saves a snapshot to a file.
pub fn save_to_path(db: &Database, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, write_database(db))
}

/// Loads a snapshot from a file.
pub fn load_from_path(path: &std::path::Path) -> Result<Database> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| Error::TypeError(format!("snapshot: cannot read file: {e}")))?;
    read_database(&text)
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "N".to_owned(),
        Value::Bool(b) => format!("B:{b}"),
        Value::Int(i) => format!("I:{i}"),
        Value::Float(x) => format!("F:{:016x}", x.to_bits()),
        Value::Str(s) => format!("S:{}", escape(s)),
    }
}

fn decode_value(f: &str) -> Result<Value> {
    let bad = |msg: &str| Error::TypeError(format!("snapshot: {msg}"));
    if f == "N" {
        return Ok(Value::Null);
    }
    let (tag, body) = f.split_once(':').ok_or_else(|| bad("untagged value"))?;
    match tag {
        "B" => match body {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(bad("bad bool")),
        },
        "I" => body.parse().map(Value::Int).map_err(|_| bad("bad int")),
        "F" => u64::from_str_radix(body, 16)
            .map(|bits| Value::Float(f64::from_bits(bits)))
            .map_err(|_| bad("bad float bits")),
        "S" => Ok(Value::Str(unescape(body)?)),
        _ => Err(bad("unknown value tag")),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return Err(Error::TypeError("snapshot: bad escape".into())),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::query;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("k", DataType::Int),
                    ColumnDef::new("v", DataType::Str),
                    ColumnDef::new("x", DataType::Float).nullable(),
                    ColumnDef::new("b", DataType::Bool),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_index("t", "by_k", IndexKind::Hash, &["k"], true)
            .unwrap();
        db.create_index("t", "by_v", IndexKind::BTree, &["v", "k"], false)
            .unwrap();
        db.insert(
            "t",
            vec![
                Value::Int(1),
                Value::Str("a\tb\nc\\d".into()),
                Value::Null,
                Value::Bool(true),
            ],
        )
        .unwrap();
        db.insert(
            "t",
            vec![
                Value::Int(2),
                Value::Str("plain".into()),
                Value::Float(0.1 + 0.2), // not exactly representable in decimal
                Value::Bool(false),
            ],
        )
        .unwrap();
        // a second table, plus a hole from a deleted row
        db.create_table(TableSchema::new("u", vec![ColumnDef::new("n", DataType::Int)]).unwrap())
            .unwrap();
        let dead = db.insert("u", vec![Value::Int(9)]).unwrap();
        db.insert("u", vec![Value::Int(10)]).unwrap();
        db.delete("u", dead).unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = sample_db();
        let restored = read_database(&write_database(&db)).unwrap();
        // identical table listing and row contents
        assert_eq!(db.table_names(), restored.table_names());
        for name in db.table_names() {
            let a = db.table(name).unwrap();
            let b = restored.table(name).unwrap();
            assert_eq!(a.len(), b.len());
            let rows_a: Vec<_> = a.iter().collect();
            for (rid, row) in rows_a {
                assert_eq!(b.get(rid).unwrap(), row, "row {rid:?} of '{name}'");
            }
            assert_eq!(a.indexes().len(), b.indexes().len());
        }
        // exact float survived
        let t = restored.table("t").unwrap();
        let float_row = t.iter().find(|(_, r)| r[0] == Value::Int(2)).unwrap().1;
        assert_eq!(float_row[2], Value::Float(0.1 + 0.2));
    }

    #[test]
    fn restored_indexes_answer_queries() {
        let restored = read_database(&write_database(&sample_db())).unwrap();
        let t = restored.table("t").unwrap();
        let pred = Predicate::col_eq(t.schema(), "k", Value::Int(2)).unwrap();
        let plan = query::plan(t, &pred).unwrap();
        assert!(matches!(plan.path, query::AccessPath::IndexProbe { .. }));
        assert_eq!(query::select(t, &pred).unwrap().len(), 1);
    }

    #[test]
    fn row_ids_and_id_counter_survive() {
        let db = sample_db();
        let mut restored = read_database(&write_database(&db)).unwrap();
        // new inserts must not collide with restored ids
        let new_id = restored.insert("u", vec![Value::Int(11)]).unwrap();
        let old_ids: Vec<RowId> = db.table("u").unwrap().iter().map(|(id, _)| id).collect();
        assert!(!old_ids.contains(&new_id));
    }

    #[test]
    fn unique_constraints_still_enforced() {
        let mut restored = read_database(&write_database(&sample_db())).unwrap();
        let err = restored
            .insert(
                "t",
                vec![
                    Value::Int(1),
                    Value::Str("dup".into()),
                    Value::Null,
                    Value::Bool(false),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, Error::UniqueViolation { .. }));
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Database::new();
        let restored = read_database(&write_database(&db)).unwrap();
        assert!(restored.table_names().is_empty());
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        assert!(read_database("not a snapshot").is_err());
        assert!(read_database(HEADER).is_ok(), "empty but valid");
        let bad = format!("{HEADER}\ntable\tt\ncol\tk\tINT\tnotnull\nrow\t0\tI:1");
        assert!(read_database(&bad).is_err(), "missing 'end'");
        let bad = format!("{HEADER}\nrow\t0\tI:1\n");
        assert!(read_database(&bad).is_err(), "row before table");
        let bad = format!("{HEADER}\ntable\tt\ncol\tk\tWAT\tnotnull\nend\n");
        assert!(read_database(&bad).is_err(), "unknown type");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("relstore-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.snapshot");
        let db = sample_db();
        save_to_path(&db, &path).unwrap();
        let restored = load_from_path(&path).unwrap();
        assert_eq!(db.table_names(), restored.table_names());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
