//! The storage-engine abstraction: the narrow surface the MDV filter and
//! system tiers need from a relational backend.
//!
//! The paper runs the filter "entirely on top of a commercial relational
//! DBMS" — a durable store whose recovery guarantees MDV inherits for free.
//! [`StorageEngine`] captures exactly the operations the filter uses (table
//! DDL, row mutation, group commit, checkpoint) so that backends can be
//! swapped without touching the filter algorithm:
//!
//! * [`Database`] itself implements the trait as the volatile, in-memory
//!   backend (the default — zero overhead, `begin`/`commit` are no-ops),
//! * [`crate::wal::DurableEngine`] adds a write-ahead log plus snapshots
//!   and recovers committed state after a crash.
//!
//! Reads are *not* part of the trait: every backend exposes its current
//! state as a plain [`Database`] via [`StorageEngine::database`], and all
//! existing read paths (index probes, query planning, joins) keep working
//! on `&Database` — including the parallel filter, which shares `&Database`
//! across pool workers. Only writes are routed through the trait, which is
//! what a write-ahead log needs to observe. See DESIGN.md §6.

use crate::catalog::Database;
use crate::error::{Error, Result};
use crate::index::IndexKind;
use crate::schema::TableSchema;
use crate::table::{Row, RowId};

/// The mutation surface of a relational storage backend.
///
/// Contract:
/// * [`StorageEngine::database`] returns the backend's current, fully
///   up-to-date in-memory state; mutations through the trait are visible
///   there immediately (write-through).
/// * Mutations issued between [`StorageEngine::begin`] and
///   [`StorageEngine::commit`] form one *commit group*: a durable backend
///   makes them atomically durable at `commit` (all-or-nothing after a
///   crash). Mutations outside a group auto-commit individually.
/// * `begin`/`commit` do **not** provide rollback — undo-log rollback of
///   the in-memory state stays with [`crate::txn::Txn`], which operates on
///   the `&mut Database` level. [`StorageEngine::rollback`] discards the
///   *pending durability* of the current group after a `Txn` has undone the
///   in-memory effects.
/// * [`StorageEngine::checkpoint`] lets the backend compact its durability
///   artifacts (snapshot + log truncation); a no-op for volatile backends.
pub trait StorageEngine {
    /// The backend's current state, for all read paths.
    fn database(&self) -> &Database;

    /// Creates a table (DDL is logged like any other mutation).
    fn create_table(&mut self, schema: TableSchema) -> Result<()>;

    /// Creates a secondary index on an existing table.
    fn create_index(
        &mut self,
        table: &str,
        name: &str,
        kind: IndexKind,
        columns: &[&str],
        unique: bool,
    ) -> Result<()>;

    /// Drops a table and everything in it.
    fn drop_table(&mut self, name: &str) -> Result<()>;

    /// Inserts a row, returning its id.
    fn insert(&mut self, table: &str, row: Row) -> Result<RowId>;

    /// Inserts many rows; stops at the first error (prior rows stay).
    fn insert_batch(&mut self, table: &str, rows: Vec<Row>) -> Result<Vec<RowId>>;

    /// Deletes a row by id, returning it.
    fn delete(&mut self, table: &str, id: RowId) -> Result<Row>;

    /// Replaces a row by id, returning the old row.
    fn update(&mut self, table: &str, id: RowId, row: Row) -> Result<Row>;

    /// Opens a commit group. Groups nest by depth counting: each `begin`
    /// increments the depth, each `commit` decrements it, and only the
    /// outermost `commit` makes the group durable — so a caller can wrap
    /// several engine-level groups into one atomic unit.
    fn begin(&mut self);

    /// Closes one nesting level; the outermost call makes every mutation
    /// since the matching `begin` atomically durable.
    fn commit(&mut self) -> Result<()>;

    /// Discards the pending (uncommitted) group from the durability log.
    /// The caller is responsible for having undone the in-memory effects
    /// (via [`crate::txn::Txn`]).
    fn rollback(&mut self) -> Result<()>;

    /// Compacts durability artifacts (snapshot + truncate the log).
    fn checkpoint(&mut self) -> Result<()>;
}

/// The volatile in-memory backend: mutations apply directly, commit
/// grouping and checkpointing are no-ops. This keeps the default filter
/// path byte-identical to the pre-trait code — the compiler sees straight
/// calls into [`Database`].
impl StorageEngine for Database {
    fn database(&self) -> &Database {
        self
    }

    fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        Database::create_table(self, schema)
    }

    fn create_index(
        &mut self,
        table: &str,
        name: &str,
        kind: IndexKind,
        columns: &[&str],
        unique: bool,
    ) -> Result<()> {
        Database::create_index(self, table, name, kind, columns, unique)
    }

    fn drop_table(&mut self, name: &str) -> Result<()> {
        Database::drop_table(self, name).map(|_| ())
    }

    fn insert(&mut self, table: &str, row: Row) -> Result<RowId> {
        Database::insert(self, table, row)
    }

    fn insert_batch(&mut self, table: &str, rows: Vec<Row>) -> Result<Vec<RowId>> {
        Database::insert_batch(self, table, rows)
    }

    fn delete(&mut self, table: &str, id: RowId) -> Result<Row> {
        Database::delete(self, table, id)
    }

    fn update(&mut self, table: &str, id: RowId, row: Row) -> Result<Row> {
        Database::update(self, table, id, row)
    }

    fn begin(&mut self) {}

    fn commit(&mut self) -> Result<()> {
        Ok(())
    }

    fn rollback(&mut self) -> Result<()> {
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Convenience guard: runs `body` inside a `begin`/`commit` group and
/// commits even when the body failed part-way, so a durable backend's log
/// mirrors whatever partial in-memory state the body left behind (the
/// in-memory engine keeps partial state on error today, and the refactor
/// must not change observable behaviour).
pub fn with_commit_group<S: StorageEngine, T>(
    store: &mut S,
    body: impl FnOnce(&mut S) -> Result<T>,
) -> Result<T> {
    store.begin();
    let out = body(store);
    store.commit()?;
    out
}

/// Helper shared by backends that need a typed "not supported" error.
pub(crate) fn unsupported(what: &str) -> Error {
    Error::TypeError(format!("storage engine: {what} is not supported"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::{DataType, Value};

    fn engine_smoke<S: StorageEngine>(store: &mut S) {
        store
            .create_table(
                TableSchema::new(
                    "t",
                    vec![
                        ColumnDef::new("k", DataType::Int),
                        ColumnDef::new("v", DataType::Str),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        store
            .create_index("t", "by_k", IndexKind::Hash, &["k"], true)
            .unwrap();
        store.begin();
        let rid = store
            .insert("t", vec![Value::Int(1), Value::Str("a".into())])
            .unwrap();
        store
            .update("t", rid, vec![Value::Int(1), Value::Str("b".into())])
            .unwrap();
        store.commit().unwrap();
        assert_eq!(store.database().table("t").unwrap().len(), 1);
        store.delete("t", rid).unwrap();
        assert_eq!(store.database().table("t").unwrap().len(), 0);
        store.checkpoint().unwrap();
    }

    #[test]
    fn backends_are_send_and_sync() {
        // `ShardedFilterEngine` fans a batch out across per-shard stores on
        // scoped threads, so both backends must stay thread-portable.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<crate::wal::DurableEngine>();
    }

    #[test]
    fn memory_backend_passes_the_generic_smoke() {
        let mut db = Database::new();
        engine_smoke(&mut db);
        assert!(db.has_table("t"));
    }

    #[test]
    fn with_commit_group_commits_on_error_too() {
        let mut db = Database::new();
        db.create_table(TableSchema::new("t", vec![ColumnDef::new("k", DataType::Int)]).unwrap())
            .unwrap();
        let err = with_commit_group(&mut db, |s| {
            s.insert("t", vec![Value::Int(1)])?;
            s.insert("t", vec![Value::Str("wrong type".into())])?;
            Ok(())
        });
        assert!(err.is_err());
        // the first insert survived (matches pre-trait behaviour)
        assert_eq!(db.table("t").unwrap().len(), 1);
    }
}
