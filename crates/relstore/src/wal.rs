//! `DurableEngine`: a write-ahead-logged, snapshotting storage backend.
//!
//! The durable backend wraps a write-through in-memory [`Database`] and
//! journals every logical mutation to a binary write-ahead log before it is
//! considered committed, taking periodic full-database snapshots so the log
//! can be truncated. All disk access goes through the [`Vfs`] trait
//! (`crate::vfs`): [`StdFs`] in production (byte-identical WAL layout to the
//! pre-Vfs engine), `FaultVfs` in the storage torture tests (DESIGN.md §12).
//!
//! ## On-disk layout
//!
//! One directory per engine:
//!
//! ```text
//! snapshot-<epoch>   full database state at the start of the epoch
//!                    (the line format of `crate::snapshot`, row ids kept,
//!                    plus a `#checksum <fnv1a64>` footer line)
//! wal-<epoch>        logical ops committed since that snapshot
//! ```
//!
//! A checkpoint writes `snapshot-<epoch+1>` (atomic tmp + sync + rename),
//! starts an empty `wal-<epoch+1>`, and removes the files of `epoch-1` —
//! the *previous* epoch is retained so recovery can fall back to it when
//! the newest snapshot is corrupt. Recovery tries snapshot epochs newest
//! first: verify the snapshot checksum, parse it, then replay the WAL
//! *chain* from that epoch up to the newest (`snapshot-E` + a fully
//! replayed `wal-E` reconstructs exactly the state `snapshot-(E+1)` froze,
//! so falling back one epoch loses nothing committed).
//!
//! ## WAL record format
//!
//! Each record is a frame `[u32 len | u32 fnv1a(payload) | payload]`, all
//! integers little-endian. The payload is one tagged logical op:
//!
//! ```text
//! 1 CreateTable  name, columns (name, dtype, nullable)
//! 2 CreateIndex  table, name, kind, unique, key column names
//! 3 DropTable    name
//! 4 Insert       table, row id, values
//! 5 Delete       table, row id
//! 6 Update       table, row id, new values
//! 7 Commit       (group boundary, empty body)
//! ```
//!
//! Ops between two `Commit` markers form one atomic group: replay buffers
//! decoded ops and applies them only when their `Commit` frame is read, so
//! a crash mid-group loses the whole group, never half of it. Replay stops
//! at the first torn or corrupt frame (short header, short payload,
//! checksum mismatch, undecodable op); whether that is treated as a torn
//! tail (truncate and continue — expected after a crash) or as detected
//! corruption (typed [`Error::Corrupt`]) depends on what follows: if any
//! valid frame exists *after* the bad one, the damage is mid-log bit rot,
//! not a tear, and recovery refuses to silently drop committed groups.
//! Corruption of the *final* group is indistinguishable from a torn write
//! of an unacknowledged group by construction (length+checksum framing
//! carries no external commit count) and is truncated like a tear. Row ids
//! are recorded in the log and restored verbatim, so recovered state is
//! byte-identical to the pre-crash snapshot text.
//!
//! ## Failure semantics
//!
//! Every fault surfaces as a typed error ([`Error::Io`],
//! [`Error::TornWrite`], [`Error::Corrupt`]) — never a panic. A failed
//! group flush (write error, short write, failed sync) **wedges** the
//! engine: the pending buffer is dropped and every further mutation
//! returns [`Error::Wedged`] until the caller recovers by reopening the
//! directory. Retrying the flush instead would append the group's frames a
//! second time after a partial write and corrupt the log — the same class
//! of bug as the infamous Postgres fsync-retry problem. A wedged (or
//! mid-commit-crashed) engine's in-memory state may be *ahead* of durable
//! state, which [`DurableEngine::is_degraded`] reports so callers can stop
//! trusting the write-through cache. A failed **auto**-checkpoint does not
//! fail its commit (the data is already durable): pre-publish failures are
//! counted and retried at the next commit; a failure after the new
//! snapshot is published but before the new WAL opens wedges the engine,
//! since later commits would otherwise land in a log recovery ignores.

use std::path::{Path, PathBuf};

use crate::catalog::Database;
use crate::engine::StorageEngine;
use crate::error::{Error, Result};
use crate::index::IndexKind;
use crate::schema::{ColumnDef, TableSchema};
use crate::snapshot::{read_database, write_database};
use crate::table::{Row, RowId};
use crate::value::{DataType, Value};
use crate::vfs::{StdFs, Vfs, VfsFile};

/// Default number of committed ops between automatic checkpoints.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 8192;

/// Tuning knobs of a [`DurableEngine`], applied at construction or via
/// [`DurableEngine::set_config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableConfig {
    /// Snapshot + truncate the log after this many committed ops (`None`
    /// disables auto-checkpointing; explicit [`StorageEngine::checkpoint`]
    /// always works). The torture harness sets this low to force frequent
    /// compaction windows.
    pub checkpoint_every: Option<u64>,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            checkpoint_every: Some(DEFAULT_CHECKPOINT_EVERY),
        }
    }
}

/// What [`DurableEngine::open`] did to reconstruct state, for callers (and
/// the recovery-torture bench) that need to distinguish a clean replay
/// from a checksum fall-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Highest snapshot epoch present in the directory.
    pub newest_epoch: u64,
    /// Epoch whose snapshot recovery actually started from.
    pub epoch_used: u64,
    /// True when the newest snapshot was unusable (corrupt checksum,
    /// unreadable, unparsable) and an older epoch was used instead.
    pub fell_back: bool,
    /// Bytes of torn/uncommitted tail truncated from the newest WAL.
    pub truncated_tail_bytes: u64,
}

const OP_CREATE_TABLE: u8 = 1;
const OP_CREATE_INDEX: u8 = 2;
const OP_DROP_TABLE: u8 = 3;
const OP_INSERT: u8 = 4;
const OP_DELETE: u8 = 5;
const OP_UPDATE: u8 = 6;
const OP_COMMIT: u8 = 7;

/// FNV-1a over the payload; cheap, dependency-free, and plenty to detect
/// torn or bit-rotted frames (we never face adversarial corruption).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// 64-bit FNV-1a for the snapshot body footer (a whole snapshot is big
/// enough that a 32-bit sum would start colliding under heavy bit rot).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- payload encoding ----------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(3);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
    }
}

fn put_row(out: &mut Vec<u8>, row: &[Value]) {
    put_u32(out, row.len() as u32);
    for v in row {
        put_value(out, v);
    }
}

/// Sequential payload reader; every accessor fails on truncation instead of
/// panicking, so a corrupt frame surfaces as a decode error.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|e| *e <= self.buf.len())
            .ok_or_else(|| Error::Corrupt("wal: truncated payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        // `take` guarantees exactly 4 bytes, so the conversion is infallible
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::Corrupt("wal: invalid utf-8".into()))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::Str(self.str()?),
            t => return Err(Error::Corrupt(format!("wal: unknown value tag {t}"))),
        })
    }

    fn row(&mut self) -> Result<Row> {
        let n = self.u32()? as usize;
        // cap pre-allocation by what the buffer could possibly hold
        let mut row = Vec::with_capacity(n.min(self.buf.len() - self.pos));
        for _ in 0..n {
            row.push(self.value()?);
        }
        Ok(row)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// A decoded logical WAL op, buffered until its group's commit marker.
enum WalOp {
    CreateTable(TableSchema),
    CreateIndex {
        table: String,
        name: String,
        kind: IndexKind,
        unique: bool,
        columns: Vec<String>,
    },
    DropTable(String),
    Insert(String, RowId, Row),
    Delete(String, RowId),
    Update(String, RowId, Row),
}

fn decode_op(payload: &[u8]) -> Result<Option<WalOp>> {
    let mut c = Cursor::new(payload);
    let op = match c.u8()? {
        OP_CREATE_TABLE => {
            let name = c.str()?;
            let ncols = c.u32()? as usize;
            let mut cols = Vec::with_capacity(ncols.min(payload.len()));
            for _ in 0..ncols {
                let cname = c.str()?;
                let dtype = match c.u8()? {
                    0 => DataType::Bool,
                    1 => DataType::Int,
                    2 => DataType::Float,
                    3 => DataType::Str,
                    t => return Err(Error::Corrupt(format!("wal: unknown dtype tag {t}"))),
                };
                let mut col = ColumnDef::new(cname, dtype);
                if c.u8()? != 0 {
                    col = col.nullable();
                }
                cols.push(col);
            }
            Some(WalOp::CreateTable(TableSchema::new(name, cols)?))
        }
        OP_CREATE_INDEX => {
            let table = c.str()?;
            let name = c.str()?;
            let kind = match c.u8()? {
                0 => IndexKind::Hash,
                1 => IndexKind::BTree,
                t => return Err(Error::Corrupt(format!("wal: unknown index kind {t}"))),
            };
            let unique = c.u8()? != 0;
            let ncols = c.u32()? as usize;
            let mut columns = Vec::with_capacity(ncols.min(payload.len()));
            for _ in 0..ncols {
                columns.push(c.str()?);
            }
            Some(WalOp::CreateIndex {
                table,
                name,
                kind,
                unique,
                columns,
            })
        }
        OP_DROP_TABLE => Some(WalOp::DropTable(c.str()?)),
        OP_INSERT => Some(WalOp::Insert(c.str()?, RowId(c.u64()?), c.row()?)),
        OP_DELETE => Some(WalOp::Delete(c.str()?, RowId(c.u64()?))),
        OP_UPDATE => Some(WalOp::Update(c.str()?, RowId(c.u64()?), c.row()?)),
        OP_COMMIT => None,
        t => return Err(Error::Corrupt(format!("wal: unknown op tag {t}"))),
    };
    if !c.done() {
        return Err(Error::Corrupt("wal: trailing bytes in payload".into()));
    }
    Ok(op)
}

fn apply_op(db: &mut Database, op: WalOp) -> Result<()> {
    match op {
        WalOp::CreateTable(schema) => db.create_table(schema),
        WalOp::CreateIndex {
            table,
            name,
            kind,
            unique,
            columns,
        } => {
            let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
            db.create_index(&table, &name, kind, &cols, unique)
        }
        WalOp::DropTable(name) => db.drop_table(&name).map(|_| ()),
        // `restore` preserves the logged row id (and bumps the table's id
        // counter), so recovered state is byte-identical to pre-crash state
        WalOp::Insert(table, rid, row) => db.table_mut(&table)?.restore(rid, row),
        WalOp::Delete(table, rid) => db.delete(&table, rid).map(|_| ()),
        WalOp::Update(table, rid, row) => db.update(&table, rid, row).map(|_| ()),
    }
}

// ---- the engine ----------------------------------------------------------

/// The durable storage backend: write-through in-memory state plus a binary
/// WAL plus periodic snapshots, generic over the [`Vfs`] it persists
/// through (default [`StdFs`]). Constructed over a directory;
/// [`DurableEngine::open`] recovers committed state after a crash.
///
/// Not `Clone` (a WAL directory has one writer); the parallel filter still
/// shares the inner [`Database`] read-only across threads.
pub struct DurableEngine<V: Vfs = StdFs> {
    db: Database,
    vfs: V,
    dir: PathBuf,
    epoch: u64,
    wal: V::File,
    /// Encoded frames of the open (or auto-) commit group.
    pending: Vec<u8>,
    /// Ops in the pending buffer (for the checkpoint counter).
    pending_ops: u64,
    /// Open `begin` nesting depth: only the outermost `commit` flushes, so
    /// a caller can wrap several engine-level groups into one atomic unit.
    group_depth: u32,
    ops_since_checkpoint: u64,
    config: DurableConfig,
    /// Committed WAL bytes this epoch (instrumentation for the bench).
    wal_bytes: u64,
    commits: u64,
    /// Set when a durability operation failed; see the module docs.
    wedged: Option<String>,
    checkpoint_failures: u64,
    recovery: Option<RecoveryReport>,
}

impl<V: Vfs> std::fmt::Debug for DurableEngine<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableEngine")
            .field("dir", &self.dir)
            .field("epoch", &self.epoch)
            .field("wal_bytes", &self.wal_bytes)
            .field("commits", &self.commits)
            .field("wedged", &self.wedged)
            .finish_non_exhaustive()
    }
}

impl DurableEngine {
    /// Creates a fresh engine over `dir` on the real filesystem (created if
    /// missing; must not already contain an engine).
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::create_with(StdFs, dir)
    }

    /// Creates a fresh engine on the real filesystem whose initial snapshot
    /// is `db` (bulk load: the seed state is persisted once as
    /// `snapshot-0`, not logged op by op).
    pub fn create_from(dir: impl Into<PathBuf>, db: Database) -> Result<Self> {
        Self::create_from_with(StdFs, dir, db)
    }

    /// Recovers an engine from `dir` on the real filesystem.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::open_with(StdFs, dir)
    }
}

impl<V: Vfs> DurableEngine<V> {
    /// [`DurableEngine::create`] over an explicit [`Vfs`].
    pub fn create_with(vfs: V, dir: impl Into<PathBuf>) -> Result<Self> {
        Self::create_from_with(vfs, dir, Database::new())
    }

    /// [`DurableEngine::create_from`] over an explicit [`Vfs`].
    pub fn create_from_with(vfs: V, dir: impl Into<PathBuf>, db: Database) -> Result<Self> {
        let dir = dir.into();
        vfs.create_dir_all(&dir)
            .map_err(|e| Error::from_io("wal: create dir", e))?;
        if !snapshot_epochs(&vfs, &dir)?.is_empty() {
            return Err(Error::Io(format!(
                "wal: directory '{}' already contains an engine (use open)",
                dir.display()
            )));
        }
        write_snapshot_atomic(&vfs, &dir, 0, &db)?;
        let wal = open_wal(&vfs, &dir, 0, true)?;
        Ok(DurableEngine {
            db,
            vfs,
            dir,
            epoch: 0,
            wal,
            pending: Vec::new(),
            pending_ops: 0,
            group_depth: 0,
            ops_since_checkpoint: 0,
            config: DurableConfig::default(),
            wal_bytes: 0,
            commits: 0,
            wedged: None,
            checkpoint_failures: 0,
            recovery: None,
        })
    }

    /// [`DurableEngine::open`] over an explicit [`Vfs`]: verifies the
    /// newest snapshot's checksum and replays its WAL, falling back to the
    /// previous epoch (replaying the WAL *chain* forward) when the newest
    /// snapshot is corrupt. Truncates any torn or uncommitted WAL suffix
    /// (expected after a crash) before accepting new writes; mid-log
    /// corruption — a bad frame with valid frames after it — is refused
    /// with [`Error::Corrupt`] instead of silently dropping committed
    /// groups.
    pub fn open_with(vfs: V, dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        let epochs = snapshot_epochs(&vfs, &dir)?;
        let Some(&newest) = epochs.first() else {
            return Err(Error::Io(format!(
                "wal: no snapshot found in '{}'",
                dir.display()
            )));
        };
        let mut last_err: Option<Error> = None;
        for &start in &epochs {
            match try_recover(&vfs, &dir, start, newest) {
                Ok((db, valid_len, truncated)) => {
                    let mut wal = open_wal(&vfs, &dir, newest, false)?;
                    wal.truncate(valid_len)
                        .map_err(|e| Error::from_io("wal: truncate torn tail", e))?;
                    return Ok(DurableEngine {
                        db,
                        vfs,
                        dir,
                        epoch: newest,
                        wal,
                        pending: Vec::new(),
                        pending_ops: 0,
                        group_depth: 0,
                        ops_since_checkpoint: 0,
                        config: DurableConfig::default(),
                        wal_bytes: valid_len,
                        commits: 0,
                        wedged: None,
                        checkpoint_failures: 0,
                        recovery: Some(RecoveryReport {
                            newest_epoch: newest,
                            epoch_used: start,
                            fell_back: start != newest,
                            truncated_tail_bytes: truncated,
                        }),
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| Error::Corrupt("wal: no recoverable epoch".into())))
    }

    /// The directory this engine persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The [`Vfs`] this engine persists through.
    pub fn vfs(&self) -> &V {
        &self.vfs
    }

    /// Current snapshot epoch (bumped by every checkpoint).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Committed WAL bytes written in the current epoch.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Commit groups made durable so far (including auto-commits).
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// What [`DurableEngine::open`] did to recover this engine (`None` on
    /// a freshly created engine).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// True once a durability operation failed: the in-memory database may
    /// be ahead of durable state, and all further mutations are refused
    /// with [`Error::Wedged`]. Recover by reopening the directory.
    pub fn is_degraded(&self) -> bool {
        self.wedged.is_some()
    }

    /// Why the engine wedged, if it did.
    pub fn wedge_reason(&self) -> Option<&str> {
        self.wedged.as_deref()
    }

    /// Auto-checkpoints that failed before publishing and will be retried.
    pub fn checkpoint_failures(&self) -> u64 {
        self.checkpoint_failures
    }

    /// This engine's tuning knobs.
    pub fn config(&self) -> DurableConfig {
        self.config
    }

    /// Replaces the tuning knobs (takes effect on the next commit).
    pub fn set_config(&mut self, config: DurableConfig) {
        self.config = config;
    }

    /// Sets the automatic-checkpoint threshold: snapshot + truncate after
    /// every `n` committed ops (`None` disables; explicit
    /// [`StorageEngine::checkpoint`] always works).
    pub fn set_checkpoint_every(&mut self, n: Option<u64>) {
        self.config.checkpoint_every = n;
    }

    /// Consumes the engine, returning the in-memory state.
    pub fn into_database(self) -> Database {
        self.db
    }

    fn guard(&self) -> Result<()> {
        match &self.wedged {
            Some(reason) => Err(Error::Wedged(reason.clone())),
            None => Ok(()),
        }
    }

    fn wedge(&mut self, err: &Error) {
        self.wedged = Some(err.to_string());
        self.pending.clear();
        self.pending_ops = 0;
    }

    fn log_op(&mut self, payload: Vec<u8>) -> Result<()> {
        append_frame(&mut self.pending, &payload);
        self.pending_ops += 1;
        if self.group_depth == 0 {
            self.flush_group()?;
        }
        Ok(())
    }

    /// Writes the pending frames plus a commit marker and syncs. Any
    /// failure wedges the engine (see the module docs: a retry would
    /// duplicate the partially written frames).
    fn flush_group(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.guard()?;
        append_frame(&mut self.pending, &[OP_COMMIT]);
        if let Err(e) = self.wal.append(&self.pending) {
            let err = Error::from_io("wal: append", e);
            self.wedge(&err);
            return Err(err);
        }
        if let Err(e) = self.wal.sync() {
            let err = Error::from_io("wal: sync", e);
            self.wedge(&err);
            return Err(err);
        }
        self.wal_bytes += self.pending.len() as u64;
        self.commits += 1;
        self.ops_since_checkpoint += self.pending_ops;
        self.pending.clear();
        self.pending_ops = 0;
        if let Some(every) = self.config.checkpoint_every {
            if self.ops_since_checkpoint >= every {
                // the commit itself is already durable, so an auto-
                // checkpoint failure must not fail it: pre-publish errors
                // are counted and retried at the next commit (post-publish
                // errors wedge inside do_checkpoint)
                if self.do_checkpoint().is_err() {
                    self.checkpoint_failures += 1;
                }
            }
        }
        Ok(())
    }

    /// Snapshot + log truncation: writes `snapshot-<epoch+1>` atomically,
    /// starts an empty `wal-<epoch+1>`, and removes the files of
    /// `epoch-1`, keeping one previous epoch for checksum fall-back.
    fn do_checkpoint(&mut self) -> Result<()> {
        let next = self.epoch + 1;
        // failure before the rename publishes is safe: the directory is
        // untouched as far as recovery is concerned, so just propagate
        write_snapshot_atomic(&self.vfs, &self.dir, next, &self.db)?;
        // the new snapshot is published: recovery now prefers epoch `next`,
        // so failing to start its WAL would send future commits into a log
        // recovery ignores — wedge instead
        match open_wal(&self.vfs, &self.dir, next, true) {
            Ok(w) => self.wal = w,
            Err(e) => {
                self.wedge(&e);
                return Err(e);
            }
        }
        if self.epoch > 0 {
            // best-effort cleanup: a crash in between leaves stale files
            // that recovery ignores (it picks the highest valid epoch)
            let _ = self
                .vfs
                .remove(wal_path(&self.dir, self.epoch - 1).as_path());
            let _ = self
                .vfs
                .remove(snapshot_path(&self.dir, self.epoch - 1).as_path());
        }
        self.epoch = next;
        self.ops_since_checkpoint = 0;
        self.wal_bytes = 0;
        Ok(())
    }
}

impl<V: Vfs> StorageEngine for DurableEngine<V> {
    fn database(&self) -> &Database {
        &self.db
    }

    fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        self.guard()?;
        let mut p = vec![OP_CREATE_TABLE];
        put_str(&mut p, schema.name());
        put_u32(&mut p, schema.columns().len() as u32);
        for col in schema.columns() {
            put_str(&mut p, &col.name);
            p.push(match col.dtype {
                DataType::Bool => 0,
                DataType::Int => 1,
                DataType::Float => 2,
                DataType::Str => 3,
            });
            p.push(u8::from(col.nullable));
        }
        self.db.create_table(schema)?;
        self.log_op(p)
    }

    fn create_index(
        &mut self,
        table: &str,
        name: &str,
        kind: IndexKind,
        columns: &[&str],
        unique: bool,
    ) -> Result<()> {
        self.guard()?;
        self.db.create_index(table, name, kind, columns, unique)?;
        let mut p = vec![OP_CREATE_INDEX];
        put_str(&mut p, table);
        put_str(&mut p, name);
        p.push(match kind {
            IndexKind::Hash => 0,
            IndexKind::BTree => 1,
        });
        p.push(u8::from(unique));
        put_u32(&mut p, columns.len() as u32);
        for c in columns {
            put_str(&mut p, c);
        }
        self.log_op(p)
    }

    fn drop_table(&mut self, name: &str) -> Result<()> {
        self.guard()?;
        self.db.drop_table(name)?;
        let mut p = vec![OP_DROP_TABLE];
        put_str(&mut p, name);
        self.log_op(p)
    }

    fn insert(&mut self, table: &str, row: Row) -> Result<RowId> {
        self.guard()?;
        // apply first to learn the row id the in-memory engine assigns
        let rid = self.db.insert(table, row)?;
        let row = self.db.get(table, rid)?.clone();
        let mut p = vec![OP_INSERT];
        put_str(&mut p, table);
        put_u64(&mut p, rid.0);
        put_row(&mut p, &row);
        self.log_op(p)?;
        Ok(rid)
    }

    fn insert_batch(&mut self, table: &str, rows: Vec<Row>) -> Result<Vec<RowId>> {
        let mut ids = Vec::with_capacity(rows.len());
        for row in rows {
            ids.push(StorageEngine::insert(self, table, row)?);
        }
        Ok(ids)
    }

    fn delete(&mut self, table: &str, id: RowId) -> Result<Row> {
        self.guard()?;
        let row = self.db.delete(table, id)?;
        let mut p = vec![OP_DELETE];
        put_str(&mut p, table);
        put_u64(&mut p, id.0);
        self.log_op(p)?;
        Ok(row)
    }

    fn update(&mut self, table: &str, id: RowId, row: Row) -> Result<Row> {
        self.guard()?;
        let old = self.db.update(table, id, row)?;
        let new = self.db.get(table, id)?.clone();
        let mut p = vec![OP_UPDATE];
        put_str(&mut p, table);
        put_u64(&mut p, id.0);
        put_row(&mut p, &new);
        self.log_op(p)?;
        Ok(old)
    }

    fn begin(&mut self) {
        self.group_depth += 1;
    }

    fn commit(&mut self) -> Result<()> {
        self.group_depth = self.group_depth.saturating_sub(1);
        if self.group_depth == 0 {
            self.flush_group()
        } else {
            Ok(())
        }
    }

    fn rollback(&mut self) -> Result<()> {
        if self.group_depth == 0 {
            return Err(crate::engine::unsupported(
                "rollback outside a commit group",
            ));
        }
        self.group_depth = 0;
        self.pending.clear();
        self.pending_ops = 0;
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<()> {
        self.guard()?;
        if self.group_depth > 0 {
            return Err(Error::TransactionState(
                "checkpoint inside an open commit group".into(),
            ));
        }
        self.do_checkpoint()
    }
}

// ---- files ---------------------------------------------------------------

fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snapshot-{epoch}"))
}

fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch}"))
}

/// Epochs with a (non-tmp) snapshot file, newest first.
fn snapshot_epochs<V: Vfs>(vfs: &V, dir: &Path) -> Result<Vec<u64>> {
    let names = match vfs.read_dir(dir) {
        Ok(names) => names,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(Error::from_io("wal: read dir", e)),
    };
    let mut epochs: Vec<u64> = names
        .iter()
        .filter_map(|name| name.strip_prefix("snapshot-")?.parse().ok())
        .collect();
    epochs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(epochs)
}

const SNAPSHOT_FOOTER_PREFIX: &str = "#checksum ";

/// Appends the checksum footer line to a snapshot body.
fn seal_snapshot(body: &str) -> String {
    format!(
        "{body}{SNAPSHOT_FOOTER_PREFIX}{:016x}\n",
        fnv1a64(body.as_bytes())
    )
}

/// Splits a snapshot into (body, checksum footer), if the footer exists.
fn split_footer(raw: &str) -> Option<(&str, &str)> {
    let stripped = raw.strip_suffix('\n')?;
    let nl = stripped.rfind('\n')?;
    let sum = stripped[nl + 1..].strip_prefix(SNAPSHOT_FOOTER_PREFIX)?;
    Some((&raw[..nl + 1], sum))
}

/// Verifies the footer checksum and returns the snapshot body. Footer-less
/// snapshots (written before checksums existed) are accepted as-is: the
/// atomic tmp+rename publish already guarantees they are complete.
fn verify_snapshot(raw: &str) -> Result<&str> {
    match split_footer(raw) {
        Some((body, sum)) => {
            let want = u64::from_str_radix(sum, 16)
                .map_err(|_| Error::Corrupt("snapshot: malformed checksum footer".into()))?;
            if fnv1a64(body.as_bytes()) == want {
                Ok(body)
            } else {
                Err(Error::Corrupt("snapshot: checksum mismatch".into()))
            }
        }
        None => Ok(raw),
    }
}

fn write_snapshot_atomic<V: Vfs>(vfs: &V, dir: &Path, epoch: u64, db: &Database) -> Result<()> {
    let tmp = dir.join(format!("snapshot-{epoch}.tmp"));
    let text = seal_snapshot(&write_database(db));
    vfs.write(&tmp, text.as_bytes())
        .map_err(|e| Error::from_io("wal: write snapshot", e))?;
    vfs.sync_file(&tmp)
        .map_err(|e| Error::from_io("wal: sync snapshot", e))?;
    vfs.rename(&tmp, snapshot_path(dir, epoch).as_path())
        .map_err(|e| Error::from_io("wal: publish snapshot", e))?;
    Ok(())
}

fn open_wal<V: Vfs>(vfs: &V, dir: &Path, epoch: u64, truncate: bool) -> Result<V::File> {
    vfs.open_append(wal_path(dir, epoch).as_path(), truncate)
        .map_err(|e| Error::from_io("wal: open log", e))
}

fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32(out, payload.len() as u32);
    put_u32(out, fnv1a(payload));
    out.extend_from_slice(payload);
}

/// One recovery attempt starting from `start`'s snapshot: verify + parse
/// it, then replay the WAL chain `wal-start .. wal-newest`. Non-final WALs
/// in the chain were complete when their successor snapshot was taken, so
/// anything short of full replay there is corruption; the final WAL may
/// carry a torn tail. Returns the recovered database, the committed byte
/// length of the newest WAL, and the truncated tail size.
fn try_recover<V: Vfs>(
    vfs: &V,
    dir: &Path,
    start: u64,
    newest: u64,
) -> Result<(Database, u64, u64)> {
    let raw = vfs
        .read(snapshot_path(dir, start).as_path())
        .map_err(|e| Error::from_io("wal: read snapshot", e))?;
    let raw = String::from_utf8(raw)
        .map_err(|_| Error::Corrupt(format!("snapshot-{start}: invalid utf-8")))?;
    let mut db = read_database(verify_snapshot(&raw)?)?;
    let mut committed = 0u64;
    let mut truncated = 0u64;
    for e in start..=newest {
        let bytes = match vfs.read(wal_path(dir, e).as_path()) {
            Ok(b) => b,
            // a crash between snapshot rename and WAL creation leaves no
            // newest WAL: equivalent to an empty log
            Err(err) if err.kind() == std::io::ErrorKind::NotFound && e == newest => Vec::new(),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                return Err(Error::Corrupt(format!(
                    "wal-{e}: missing from the fall-back replay chain"
                )));
            }
            Err(err) => return Err(Error::from_io("wal: read log", err)),
        };
        let end = replay(&mut db, &bytes)?;
        if e < newest {
            // this WAL froze into snapshot-(e+1); it must replay whole
            if end.parsed as usize != bytes.len() {
                return Err(Error::Corrupt(format!(
                    "wal-{e}: corrupt frame in a non-final log of the replay chain"
                )));
            }
        } else {
            if (end.parsed as usize) < bytes.len()
                && has_valid_frame_after(&bytes, end.parsed as usize)
            {
                return Err(Error::Corrupt(format!(
                    "wal-{e}: corrupt frame followed by valid frames (mid-log corruption, \
                     not a torn tail)"
                )));
            }
            committed = end.committed;
            truncated = bytes.len() as u64 - end.committed;
        }
    }
    Ok((db, committed, truncated))
}

/// Where a replay pass stopped.
struct ReplayEnd {
    /// Byte length of the committed prefix (ends at a commit marker).
    committed: u64,
    /// Byte offset where frame parsing stopped (≥ `committed`; frames of
    /// an open, uncommitted group parse fine but never apply).
    parsed: u64,
}

/// Replays committed groups from `bytes` into `db`. Anything after the
/// last commit marker — an open group, a torn frame, a corrupt checksum —
/// is not applied; the caller decides (via [`ReplayEnd::parsed`] and a
/// forward scan) whether the unparsable remainder is a truncatable tail or
/// detected corruption.
fn replay(db: &mut Database, bytes: &[u8]) -> Result<ReplayEnd> {
    let mut pos = 0usize;
    let mut committed = 0usize;
    let mut group: Vec<WalOp> = Vec::new();
    // stop at a torn header (or clean EOF), torn payload, corrupt frame
    while let Some(header_end) = pos.checked_add(8).filter(|e| *e <= bytes.len()) {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let want = u32::from_le_bytes(bytes[pos + 4..header_end].try_into().unwrap());
        let Some(frame_end) = header_end.checked_add(len).filter(|e| *e <= bytes.len()) else {
            break; // torn payload
        };
        let payload = &bytes[header_end..frame_end];
        if fnv1a(payload) != want {
            break; // corrupt frame
        }
        let Ok(op) = decode_op(payload) else {
            break; // undecodable op: same
        };
        pos = frame_end;
        match op {
            Some(op) => group.push(op),
            None => {
                // commit marker: the group becomes visible atomically
                for op in group.drain(..) {
                    apply_op(db, op)?;
                }
                committed = pos;
            }
        }
    }
    Ok(ReplayEnd {
        committed: committed as u64,
        parsed: pos as u64,
    })
}

/// Scans forward from just past a bad frame for any complete, checksummed,
/// decodable frame — evidence that the bad frame is mid-log corruption
/// rather than a torn tail (a tear is always the physical end of the log).
fn has_valid_frame_after(bytes: &[u8], stop: usize) -> bool {
    let mut pos = stop + 1;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let want = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if let Some(end) = (pos + 8).checked_add(len).filter(|e| *e <= bytes.len()) {
            let payload = &bytes[pos + 8..end];
            if fnv1a(payload) == want && decode_op(payload).is_ok() {
                return true;
            }
        }
        pos += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{CrashMode, DiskFaultPlan, FaultVfs};
    use std::io::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "mdv-wal-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn schema_t() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("v", DataType::Str).nullable(),
            ],
        )
        .unwrap()
    }

    fn row(k: i64, v: &str) -> Row {
        vec![Value::Int(k), Value::Str(v.into())]
    }

    #[test]
    fn recovery_replays_committed_ops_byte_identically() {
        let dir = temp_dir("basic");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        eng.create_index("t", "by_k", IndexKind::Hash, &["k"], true)
            .unwrap();
        eng.begin();
        let a = StorageEngine::insert(&mut eng, "t", row(1, "a")).unwrap();
        StorageEngine::insert(&mut eng, "t", row(2, "b")).unwrap();
        eng.commit().unwrap();
        StorageEngine::update(&mut eng, "t", a, vec![Value::Int(1), Value::Null]).unwrap();
        StorageEngine::delete(&mut eng, "t", a).unwrap();
        let want = write_database(eng.database());
        drop(eng);
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), want);
        let report = recovered.recovery_report().unwrap();
        assert!(!report.fell_back);
        assert_eq!(report.truncated_tail_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_group_is_lost_whole() {
        let dir = temp_dir("atomic");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        StorageEngine::insert(&mut eng, "t", row(1, "committed")).unwrap();
        let want = write_database(eng.database());
        eng.begin();
        StorageEngine::insert(&mut eng, "t", row(2, "doomed")).unwrap();
        StorageEngine::insert(&mut eng, "t", row(3, "doomed")).unwrap();
        // simulate a crash before commit: the group never reaches the file
        drop(eng);
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nested_groups_flush_only_at_outermost_commit() {
        let dir = temp_dir("nest");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        let committed = eng.commits();
        eng.begin(); // outer group (e.g. a whole node operation)
        eng.begin(); // inner group (e.g. one engine-level batch)
        StorageEngine::insert(&mut eng, "t", row(1, "a")).unwrap();
        StorageEngine::commit(&mut eng).unwrap(); // inner: must NOT flush
        StorageEngine::insert(&mut eng, "t", row(2, "b")).unwrap();
        assert_eq!(eng.commits(), committed, "inner commit flushed early");
        // crash here loses the whole outer group
        {
            let lost = DurableEngine::open(&dir).unwrap();
            assert!(lost.database().table("t").unwrap().iter().next().is_none());
        }
        StorageEngine::commit(&mut eng).unwrap(); // outer: flushes both
        let want = write_database(eng.database());
        drop(eng);
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_record_is_discarded_and_log_reusable() {
        let dir = temp_dir("torn");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        StorageEngine::insert(&mut eng, "t", row(1, "safe")).unwrap();
        let want = write_database(eng.database());
        let epoch = eng.epoch();
        drop(eng);
        // crash mid-append: a partial frame lands at the end of the log
        let path = wal_path(&dir, epoch);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0x40, 0, 0, 0, 0xde, 0xad]).unwrap(); // len=64, torn
        drop(f);
        let mut recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), want);
        assert!(recovered.recovery_report().unwrap().truncated_tail_bytes > 0);
        // the torn tail was truncated: new writes commit and recover fine
        StorageEngine::insert(&mut recovered, "t", row(2, "after")).unwrap();
        let want2 = write_database(recovered.database());
        drop(recovered);
        let again = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(again.database()), want2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_final_frame_truncates_but_corrupt_frame_before_commit_is_detected() {
        let dir = temp_dir("crc");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        StorageEngine::insert(&mut eng, "t", row(1, "keep")).unwrap();
        let keep = write_database(eng.database());
        StorageEngine::insert(&mut eng, "t", row(2, "flipped")).unwrap();
        let epoch = eng.epoch();
        drop(eng);
        let path = wal_path(&dir, epoch);
        let good = std::fs::read(&path).unwrap();
        let n = good.len();
        // flip a byte in the very last frame (the commit marker): nothing
        // valid follows, so this is indistinguishable from a torn tail of
        // an unacknowledged group and gets truncated
        let mut bytes = good.clone();
        bytes[n - 1] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), keep);
        // flip a byte in the op frame *before* that commit marker: the
        // intact marker after it proves the group was committed, so the
        // damage is detected corruption, not silent truncation
        let mut bytes = good;
        bytes[n - 20] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        match DurableEngine::open(&dir) {
            Err(Error::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_detected_not_truncated() {
        let dir = temp_dir("midlog");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        StorageEngine::insert(&mut eng, "t", row(1, "early")).unwrap();
        for k in 2..6 {
            StorageEngine::insert(&mut eng, "t", row(k, "later")).unwrap();
        }
        let epoch = eng.epoch();
        drop(eng);
        // flip a byte in an early committed group: valid frames follow it,
        // so recovery must refuse rather than drop the later commits
        let path = wal_path(&dir, epoch);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[40] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        match DurableEngine::open(&dir) {
            Err(Error::Corrupt(msg)) => assert!(msg.contains("mid-log"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_previous_epoch() {
        let dir = temp_dir("fallback");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        for k in 0..5 {
            StorageEngine::insert(&mut eng, "t", row(k, "pre")).unwrap();
        }
        eng.checkpoint().unwrap();
        StorageEngine::insert(&mut eng, "t", row(100, "post")).unwrap();
        let want = write_database(eng.database());
        assert_eq!(eng.epoch(), 1);
        drop(eng);
        // rot the newest snapshot's body: its checksum must catch it and
        // recovery must rebuild the same state from epoch 0's chain
        let path = snapshot_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&path, bytes).unwrap();
        let recovered = DurableEngine::open(&dir).unwrap();
        let report = recovered.recovery_report().unwrap();
        assert!(report.fell_back);
        assert_eq!(report.epoch_used, 0);
        assert_eq!(report.newest_epoch, 1);
        assert_eq!(write_database(recovered.database()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_retains_one_epoch_and_survives_restart() {
        let dir = temp_dir("ckpt");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        for k in 0..10 {
            StorageEngine::insert(&mut eng, "t", row(k, "x")).unwrap();
        }
        assert!(eng.wal_bytes() > 0);
        eng.checkpoint().unwrap();
        assert_eq!(eng.epoch(), 1);
        assert_eq!(eng.wal_bytes(), 0, "log truncated at checkpoint");
        // the previous epoch is retained for checksum fall-back …
        assert!(snapshot_path(&dir, 0).exists());
        assert!(wal_path(&dir, 0).exists());
        eng.checkpoint().unwrap();
        // … and dropped once it is two epochs old
        assert_eq!(eng.epoch(), 2);
        assert!(!snapshot_path(&dir, 0).exists());
        assert!(!wal_path(&dir, 0).exists());
        assert!(snapshot_path(&dir, 1).exists());
        StorageEngine::insert(&mut eng, "t", row(100, "post")).unwrap();
        let want = write_database(eng.database());
        drop(eng);
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(recovered.epoch(), 2);
        assert_eq!(write_database(recovered.database()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_checkpoint_fires_on_threshold() {
        let dir = temp_dir("auto");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.set_checkpoint_every(Some(5));
        assert_eq!(eng.config().checkpoint_every, Some(5));
        eng.create_table(schema_t()).unwrap();
        for k in 0..20 {
            StorageEngine::insert(&mut eng, "t", row(k, "x")).unwrap();
        }
        assert!(eng.epoch() >= 3, "epoch {} after 21 ops", eng.epoch());
        let want = write_database(eng.database());
        drop(eng);
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rollback_discards_pending_durability() {
        let dir = temp_dir("rb");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        let before = write_database(eng.database());
        eng.begin();
        let rid = StorageEngine::insert(&mut eng, "t", row(7, "gone")).unwrap();
        // caller undoes the in-memory effect (what Txn would do) …
        eng.db.delete("t", rid).unwrap();
        // … then discards the group's pending log records
        StorageEngine::rollback(&mut eng).unwrap();
        drop(eng);
        let recovered = DurableEngine::open(&dir).unwrap();
        // rows match; id counters may differ, compare logical content
        assert_eq!(
            recovered.database().table("t").unwrap().len(),
            read_database(&before).unwrap().table("t").unwrap().len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_from_seeds_without_logging() {
        let mut db = Database::new();
        db.create_table(schema_t()).unwrap();
        db.insert("t", row(1, "seed")).unwrap();
        let dir = temp_dir("seed");
        let eng = DurableEngine::create_from(&dir, db.clone()).unwrap();
        assert_eq!(eng.wal_bytes(), 0, "seed state goes to the snapshot");
        assert_eq!(write_database(eng.database()), write_database(&db));
        drop(eng);
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), write_database(&db));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_refuses_empty_dir_and_create_refuses_existing() {
        let dir = temp_dir("guard");
        assert!(DurableEngine::open(&dir).is_err());
        let eng = DurableEngine::create(&dir).unwrap();
        drop(eng);
        assert!(DurableEngine::create(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_snapshot_without_footer_still_opens() {
        let dir = temp_dir("legacy");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        StorageEngine::insert(&mut eng, "t", row(1, "old")).unwrap();
        let want = write_database(eng.database());
        let epoch = eng.epoch();
        drop(eng);
        // strip the footer, simulating a snapshot from before checksums
        let path = snapshot_path(&dir, epoch);
        let raw = std::fs::read_to_string(&path).unwrap();
        let (body, _) = split_footer(&raw).expect("snapshot has a footer");
        std::fs::write(&path, body).unwrap();
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_sync_wedges_engine_with_typed_errors() {
        let vfs = FaultVfs::new(5);
        let mut eng = DurableEngine::create_with(vfs.clone(), "/n1").unwrap();
        eng.create_table(schema_t()).unwrap();
        StorageEngine::insert(&mut eng, "t", row(1, "durable")).unwrap();
        let want = write_database(eng.database());
        // every sync now fails: the next commit must error and wedge
        vfs.set_plan(DiskFaultPlan {
            sync_err: 1.0,
            ..DiskFaultPlan::default()
        });
        let err = StorageEngine::insert(&mut eng, "t", row(2, "lost")).unwrap_err();
        assert!(matches!(err, Error::Io(_)), "got {err:?}");
        assert!(eng.is_degraded());
        // further mutations are refused, reads still work
        vfs.set_plan(DiskFaultPlan::default());
        let err = StorageEngine::insert(&mut eng, "t", row(3, "refused")).unwrap_err();
        assert!(matches!(err, Error::Wedged(_)), "got {err:?}");
        assert!(StorageEngine::checkpoint(&mut eng).is_err());
        assert_eq!(eng.database().table("t").unwrap().len(), 2);
        drop(eng);
        // reopening over the crashed (durable-only) disk recovers exactly
        // the acked prefix — the failed commit never became visible
        vfs.crash(CrashMode::DurableOnly);
        let recovered = DurableEngine::open_with(vfs, "/n1").unwrap();
        assert!(!recovered.is_degraded());
        assert_eq!(write_database(recovered.database()), want);
        let _ = std::fs::remove_dir_all("/n1");
    }

    #[test]
    fn short_write_surfaces_as_torn_write() {
        let vfs = FaultVfs::new(11);
        let mut eng = DurableEngine::create_with(vfs.clone(), "/n2").unwrap();
        eng.create_table(schema_t()).unwrap();
        let want = write_database(eng.database());
        vfs.set_plan(DiskFaultPlan {
            short_write: 1.0,
            ..DiskFaultPlan::default()
        });
        let err = StorageEngine::insert(&mut eng, "t", row(1, "torn")).unwrap_err();
        assert!(matches!(err, Error::TornWrite(_)), "got {err:?}");
        assert!(eng.is_degraded());
        drop(eng);
        // the partial frame is a classic torn tail: recovery truncates it
        vfs.set_plan(DiskFaultPlan::default());
        vfs.crash(CrashMode::FullCache);
        let recovered = DurableEngine::open_with(vfs, "/n2").unwrap();
        assert_eq!(write_database(recovered.database()), want);
    }

    #[test]
    fn engine_is_byte_identical_on_stdfs_and_faultvfs() {
        fn drive<V: Vfs>(mut eng: DurableEngine<V>) -> DurableEngine<V> {
            eng.create_table(schema_t()).unwrap();
            eng.create_index("t", "by_k", IndexKind::BTree, &["k"], false)
                .unwrap();
            eng.begin();
            let a = StorageEngine::insert(&mut eng, "t", row(1, "a")).unwrap();
            StorageEngine::insert(&mut eng, "t", row(2, "b")).unwrap();
            eng.commit().unwrap();
            StorageEngine::update(&mut eng, "t", a, vec![Value::Int(9), Value::Null]).unwrap();
            eng.checkpoint().unwrap();
            StorageEngine::delete(&mut eng, "t", a).unwrap();
            eng
        }
        let dir = temp_dir("vfs-eq");
        let vfs = FaultVfs::new(3);
        let real = drive(DurableEngine::create(&dir).unwrap());
        let sim = drive(DurableEngine::create_with(vfs.clone(), &dir).unwrap());
        // the simulated disk holds exactly the bytes the real one does, for
        // every epoch file the engine wrote
        let mut sim_files: Vec<(PathBuf, Vec<u8>)> = vfs.dump().into_iter().collect();
        sim_files.sort();
        assert!(!sim_files.is_empty());
        for (path, bytes) in &sim_files {
            assert_eq!(
                &std::fs::read(path).unwrap(),
                bytes,
                "{} diverged between StdFs and FaultVfs",
                path.display()
            );
        }
        assert_eq!(real.epoch(), sim.epoch());
        assert_eq!(real.wal_bytes(), sim.wal_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
