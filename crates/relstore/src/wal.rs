//! `DurableEngine`: a write-ahead-logged, snapshotting storage backend.
//!
//! The durable backend wraps a write-through in-memory [`Database`] and
//! journals every logical mutation to a binary write-ahead log before it is
//! considered committed, taking periodic full-database snapshots so the log
//! can be truncated. It uses only `std::fs` (hermetic-build policy).
//!
//! ## On-disk layout
//!
//! One directory per engine:
//!
//! ```text
//! snapshot-<epoch>   full database state at the start of the epoch
//!                    (the line format of `crate::snapshot`, row ids kept)
//! wal-<epoch>        logical ops committed since that snapshot
//! ```
//!
//! A checkpoint writes `snapshot-<epoch+1>` (atomic tmp + rename), starts an
//! empty `wal-<epoch+1>`, and removes the previous epoch's files. Recovery
//! loads the highest epoch whose snapshot parses, then replays its WAL.
//!
//! ## WAL record format
//!
//! Each record is a frame `[u32 len | u32 fnv1a(payload) | payload]`, all
//! integers little-endian. The payload is one tagged logical op:
//!
//! ```text
//! 1 CreateTable  name, columns (name, dtype, nullable)
//! 2 CreateIndex  table, name, kind, unique, key column names
//! 3 DropTable    name
//! 4 Insert       table, row id, values
//! 5 Delete       table, row id
//! 6 Update       table, row id, new values
//! 7 Commit       (group boundary, empty body)
//! ```
//!
//! Ops between two `Commit` markers form one atomic group: replay buffers
//! decoded ops and applies them only when their `Commit` frame is read, so
//! a crash mid-group loses the whole group, never half of it. Replay stops
//! at the first torn or corrupt frame (short header, short payload,
//! checksum mismatch, undecodable op) and truncates the log back to the
//! last committed frame — a torn final record is expected after a crash,
//! not an error. Row ids are recorded in the log and restored verbatim, so
//! recovered state is byte-identical to the pre-crash snapshot text.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::catalog::Database;
use crate::engine::StorageEngine;
use crate::error::{Error, Result};
use crate::index::IndexKind;
use crate::schema::{ColumnDef, TableSchema};
use crate::snapshot::{read_database, write_database};
use crate::table::{Row, RowId};
use crate::value::{DataType, Value};

/// Default number of committed ops between automatic checkpoints.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 8192;

const OP_CREATE_TABLE: u8 = 1;
const OP_CREATE_INDEX: u8 = 2;
const OP_DROP_TABLE: u8 = 3;
const OP_INSERT: u8 = 4;
const OP_DELETE: u8 = 5;
const OP_UPDATE: u8 = 6;
const OP_COMMIT: u8 = 7;

fn io_err(ctx: &str, e: std::io::Error) -> Error {
    Error::Io(format!("{ctx}: {e}"))
}

/// FNV-1a over the payload; cheap, dependency-free, and plenty to detect
/// torn or bit-rotted frames (we never face adversarial corruption).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

// ---- payload encoding ----------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(3);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
    }
}

fn put_row(out: &mut Vec<u8>, row: &[Value]) {
    put_u32(out, row.len() as u32);
    for v in row {
        put_value(out, v);
    }
}

/// Sequential payload reader; every accessor fails on truncation instead of
/// panicking, so a corrupt frame surfaces as a decode error.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|e| *e <= self.buf.len())
            .ok_or_else(|| Error::Io("wal: truncated payload".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::Io("wal: invalid utf-8".into()))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::Str(self.str()?),
            t => return Err(Error::Io(format!("wal: unknown value tag {t}"))),
        })
    }

    fn row(&mut self) -> Result<Row> {
        let n = self.u32()? as usize;
        // cap pre-allocation by what the buffer could possibly hold
        let mut row = Vec::with_capacity(n.min(self.buf.len() - self.pos));
        for _ in 0..n {
            row.push(self.value()?);
        }
        Ok(row)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// A decoded logical WAL op, buffered until its group's commit marker.
enum WalOp {
    CreateTable(TableSchema),
    CreateIndex {
        table: String,
        name: String,
        kind: IndexKind,
        unique: bool,
        columns: Vec<String>,
    },
    DropTable(String),
    Insert(String, RowId, Row),
    Delete(String, RowId),
    Update(String, RowId, Row),
}

fn decode_op(payload: &[u8]) -> Result<Option<WalOp>> {
    let mut c = Cursor::new(payload);
    let op = match c.u8()? {
        OP_CREATE_TABLE => {
            let name = c.str()?;
            let ncols = c.u32()? as usize;
            let mut cols = Vec::with_capacity(ncols.min(payload.len()));
            for _ in 0..ncols {
                let cname = c.str()?;
                let dtype = match c.u8()? {
                    0 => DataType::Bool,
                    1 => DataType::Int,
                    2 => DataType::Float,
                    3 => DataType::Str,
                    t => return Err(Error::Io(format!("wal: unknown dtype tag {t}"))),
                };
                let mut col = ColumnDef::new(cname, dtype);
                if c.u8()? != 0 {
                    col = col.nullable();
                }
                cols.push(col);
            }
            Some(WalOp::CreateTable(TableSchema::new(name, cols)?))
        }
        OP_CREATE_INDEX => {
            let table = c.str()?;
            let name = c.str()?;
            let kind = match c.u8()? {
                0 => IndexKind::Hash,
                1 => IndexKind::BTree,
                t => return Err(Error::Io(format!("wal: unknown index kind {t}"))),
            };
            let unique = c.u8()? != 0;
            let ncols = c.u32()? as usize;
            let mut columns = Vec::with_capacity(ncols.min(payload.len()));
            for _ in 0..ncols {
                columns.push(c.str()?);
            }
            Some(WalOp::CreateIndex {
                table,
                name,
                kind,
                unique,
                columns,
            })
        }
        OP_DROP_TABLE => Some(WalOp::DropTable(c.str()?)),
        OP_INSERT => Some(WalOp::Insert(c.str()?, RowId(c.u64()?), c.row()?)),
        OP_DELETE => Some(WalOp::Delete(c.str()?, RowId(c.u64()?))),
        OP_UPDATE => Some(WalOp::Update(c.str()?, RowId(c.u64()?), c.row()?)),
        OP_COMMIT => None,
        t => return Err(Error::Io(format!("wal: unknown op tag {t}"))),
    };
    if !c.done() {
        return Err(Error::Io("wal: trailing bytes in payload".into()));
    }
    Ok(op)
}

fn apply_op(db: &mut Database, op: WalOp) -> Result<()> {
    match op {
        WalOp::CreateTable(schema) => db.create_table(schema),
        WalOp::CreateIndex {
            table,
            name,
            kind,
            unique,
            columns,
        } => {
            let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
            db.create_index(&table, &name, kind, &cols, unique)
        }
        WalOp::DropTable(name) => db.drop_table(&name).map(|_| ()),
        // `restore` preserves the logged row id (and bumps the table's id
        // counter), so recovered state is byte-identical to pre-crash state
        WalOp::Insert(table, rid, row) => db.table_mut(&table)?.restore(rid, row),
        WalOp::Delete(table, rid) => db.delete(&table, rid).map(|_| ()),
        WalOp::Update(table, rid, row) => db.update(&table, rid, row).map(|_| ()),
    }
}

// ---- the engine ----------------------------------------------------------

/// The durable storage backend: write-through in-memory state plus a binary
/// WAL plus periodic snapshots. Constructed over a directory;
/// [`DurableEngine::open`] recovers committed state after a crash.
///
/// Not `Clone` (a WAL directory has one writer); the parallel filter still
/// shares the inner [`Database`] read-only across threads.
#[derive(Debug)]
pub struct DurableEngine {
    db: Database,
    dir: PathBuf,
    epoch: u64,
    wal: BufWriter<File>,
    /// Encoded frames of the open (or auto-) commit group.
    pending: Vec<u8>,
    /// Ops in the pending buffer (for the checkpoint counter).
    pending_ops: u64,
    /// Open `begin` nesting depth: only the outermost `commit` flushes, so
    /// a caller can wrap several engine-level groups into one atomic unit.
    group_depth: u32,
    ops_since_checkpoint: u64,
    checkpoint_every: Option<u64>,
    /// Committed WAL bytes this epoch (instrumentation for the bench).
    wal_bytes: u64,
    commits: u64,
}

impl DurableEngine {
    /// Creates a fresh engine over `dir` (created if missing; must not
    /// already contain an engine).
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::create_from(dir, Database::new())
    }

    /// Creates a fresh engine whose initial snapshot is `db` (bulk load:
    /// the seed state is persisted once as `snapshot-0`, not logged op by
    /// op).
    pub fn create_from(dir: impl Into<PathBuf>, db: Database) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("wal: create dir", e))?;
        if latest_epoch(&dir)?.is_some() {
            return Err(Error::Io(format!(
                "wal: directory '{}' already contains an engine (use open)",
                dir.display()
            )));
        }
        write_snapshot_atomic(&dir, 0, &db)?;
        let wal = open_wal(&dir, 0, true)?;
        Ok(DurableEngine {
            db,
            dir,
            epoch: 0,
            wal,
            pending: Vec::new(),
            pending_ops: 0,
            group_depth: 0,
            ops_since_checkpoint: 0,
            checkpoint_every: Some(DEFAULT_CHECKPOINT_EVERY),
            wal_bytes: 0,
            commits: 0,
        })
    }

    /// Recovers an engine from `dir`: loads the latest valid snapshot,
    /// replays the committed WAL tail, and truncates any torn or corrupt
    /// suffix (expected after a crash) before accepting new writes.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        let epoch = latest_epoch(&dir)?
            .ok_or_else(|| Error::Io(format!("wal: no snapshot found in '{}'", dir.display())))?;
        let text = std::fs::read_to_string(snapshot_path(&dir, epoch))
            .map_err(|e| io_err("wal: read snapshot", e))?;
        let mut db = read_database(&text)?;
        let wal_path = wal_path(&dir, epoch);
        let valid_len = match std::fs::read(&wal_path) {
            Ok(bytes) => replay(&mut db, &bytes)?,
            // a crash between snapshot rename and WAL creation leaves no
            // WAL file: equivalent to an empty log
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(io_err("wal: read log", e)),
        };
        let mut wal = open_wal(&dir, epoch, false)?;
        wal.get_mut()
            .set_len(valid_len)
            .map_err(|e| io_err("wal: truncate torn tail", e))?;
        wal.get_mut()
            .seek(SeekFrom::Start(valid_len))
            .map_err(|e| io_err("wal: seek", e))?;
        Ok(DurableEngine {
            db,
            dir,
            epoch,
            wal,
            pending: Vec::new(),
            pending_ops: 0,
            group_depth: 0,
            ops_since_checkpoint: 0,
            checkpoint_every: Some(DEFAULT_CHECKPOINT_EVERY),
            wal_bytes: valid_len,
            commits: 0,
        })
    }

    /// The directory this engine persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current snapshot epoch (bumped by every checkpoint).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Committed WAL bytes written in the current epoch.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Commit groups made durable so far (including auto-commits).
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Sets the automatic-checkpoint threshold: snapshot + truncate after
    /// every `n` committed ops (`None` disables; explicit
    /// [`StorageEngine::checkpoint`] always works).
    pub fn set_checkpoint_every(&mut self, n: Option<u64>) {
        self.checkpoint_every = n;
    }

    /// Consumes the engine, returning the in-memory state.
    pub fn into_database(self) -> Database {
        self.db
    }

    fn log_op(&mut self, payload: Vec<u8>) -> Result<()> {
        append_frame(&mut self.pending, &payload);
        self.pending_ops += 1;
        if self.group_depth == 0 {
            self.flush_group()?;
        }
        Ok(())
    }

    /// Writes the pending frames plus a commit marker and syncs.
    fn flush_group(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        append_frame(&mut self.pending, &[OP_COMMIT]);
        self.wal
            .write_all(&self.pending)
            .map_err(|e| io_err("wal: append", e))?;
        self.wal.flush().map_err(|e| io_err("wal: flush", e))?;
        self.wal
            .get_ref()
            .sync_data()
            .map_err(|e| io_err("wal: sync", e))?;
        self.wal_bytes += self.pending.len() as u64;
        self.commits += 1;
        self.ops_since_checkpoint += self.pending_ops;
        self.pending.clear();
        self.pending_ops = 0;
        if let Some(every) = self.checkpoint_every {
            if self.ops_since_checkpoint >= every {
                self.do_checkpoint()?;
            }
        }
        Ok(())
    }

    /// Snapshot + log truncation: writes `snapshot-<epoch+1>` atomically,
    /// starts an empty `wal-<epoch+1>`, removes the old epoch's files.
    fn do_checkpoint(&mut self) -> Result<()> {
        let next = self.epoch + 1;
        write_snapshot_atomic(&self.dir, next, &self.db)?;
        self.wal = open_wal(&self.dir, next, true)?;
        // best-effort cleanup: a crash in between leaves stale files that
        // recovery ignores (it picks the highest valid epoch)
        let _ = std::fs::remove_file(wal_path(&self.dir, self.epoch));
        let _ = std::fs::remove_file(snapshot_path(&self.dir, self.epoch));
        self.epoch = next;
        self.ops_since_checkpoint = 0;
        self.wal_bytes = 0;
        Ok(())
    }
}

impl StorageEngine for DurableEngine {
    fn database(&self) -> &Database {
        &self.db
    }

    fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        let mut p = vec![OP_CREATE_TABLE];
        put_str(&mut p, schema.name());
        put_u32(&mut p, schema.columns().len() as u32);
        for col in schema.columns() {
            put_str(&mut p, &col.name);
            p.push(match col.dtype {
                DataType::Bool => 0,
                DataType::Int => 1,
                DataType::Float => 2,
                DataType::Str => 3,
            });
            p.push(u8::from(col.nullable));
        }
        self.db.create_table(schema)?;
        self.log_op(p)
    }

    fn create_index(
        &mut self,
        table: &str,
        name: &str,
        kind: IndexKind,
        columns: &[&str],
        unique: bool,
    ) -> Result<()> {
        self.db.create_index(table, name, kind, columns, unique)?;
        let mut p = vec![OP_CREATE_INDEX];
        put_str(&mut p, table);
        put_str(&mut p, name);
        p.push(match kind {
            IndexKind::Hash => 0,
            IndexKind::BTree => 1,
        });
        p.push(u8::from(unique));
        put_u32(&mut p, columns.len() as u32);
        for c in columns {
            put_str(&mut p, c);
        }
        self.log_op(p)
    }

    fn drop_table(&mut self, name: &str) -> Result<()> {
        self.db.drop_table(name)?;
        let mut p = vec![OP_DROP_TABLE];
        put_str(&mut p, name);
        self.log_op(p)
    }

    fn insert(&mut self, table: &str, row: Row) -> Result<RowId> {
        // apply first to learn the row id the in-memory engine assigns
        let rid = self.db.insert(table, row)?;
        let row = self.db.get(table, rid).expect("row just inserted").clone();
        let mut p = vec![OP_INSERT];
        put_str(&mut p, table);
        put_u64(&mut p, rid.0);
        put_row(&mut p, &row);
        self.log_op(p)?;
        Ok(rid)
    }

    fn insert_batch(&mut self, table: &str, rows: Vec<Row>) -> Result<Vec<RowId>> {
        let mut ids = Vec::with_capacity(rows.len());
        for row in rows {
            ids.push(StorageEngine::insert(self, table, row)?);
        }
        Ok(ids)
    }

    fn delete(&mut self, table: &str, id: RowId) -> Result<Row> {
        let row = self.db.delete(table, id)?;
        let mut p = vec![OP_DELETE];
        put_str(&mut p, table);
        put_u64(&mut p, id.0);
        self.log_op(p)?;
        Ok(row)
    }

    fn update(&mut self, table: &str, id: RowId, row: Row) -> Result<Row> {
        let old = self.db.update(table, id, row)?;
        let new = self.db.get(table, id).expect("row just updated").clone();
        let mut p = vec![OP_UPDATE];
        put_str(&mut p, table);
        put_u64(&mut p, id.0);
        put_row(&mut p, &new);
        self.log_op(p)?;
        Ok(old)
    }

    fn begin(&mut self) {
        self.group_depth += 1;
    }

    fn commit(&mut self) -> Result<()> {
        self.group_depth = self.group_depth.saturating_sub(1);
        if self.group_depth == 0 {
            self.flush_group()
        } else {
            Ok(())
        }
    }

    fn rollback(&mut self) -> Result<()> {
        if self.group_depth == 0 {
            return Err(crate::engine::unsupported(
                "rollback outside a commit group",
            ));
        }
        self.group_depth = 0;
        self.pending.clear();
        self.pending_ops = 0;
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<()> {
        if self.group_depth > 0 {
            return Err(Error::TransactionState(
                "checkpoint inside an open commit group".into(),
            ));
        }
        self.do_checkpoint()
    }
}

// ---- files ---------------------------------------------------------------

fn snapshot_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snapshot-{epoch}"))
}

fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch}"))
}

/// Highest epoch with a (non-tmp) snapshot file, if any.
fn latest_epoch(dir: &Path) -> Result<Option<u64>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("wal: read dir", e)),
    };
    let mut best = None;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("wal: read dir", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(epoch) = name.strip_prefix("snapshot-") {
            if let Ok(epoch) = epoch.parse::<u64>() {
                best = best.max(Some(epoch));
            }
        }
    }
    Ok(best)
}

fn write_snapshot_atomic(dir: &Path, epoch: u64, db: &Database) -> Result<()> {
    let tmp = dir.join(format!("snapshot-{epoch}.tmp"));
    let text = write_database(db);
    std::fs::write(&tmp, text).map_err(|e| io_err("wal: write snapshot", e))?;
    let f = File::open(&tmp).map_err(|e| io_err("wal: open snapshot", e))?;
    f.sync_data().map_err(|e| io_err("wal: sync snapshot", e))?;
    std::fs::rename(&tmp, snapshot_path(dir, epoch))
        .map_err(|e| io_err("wal: publish snapshot", e))?;
    Ok(())
}

fn open_wal(dir: &Path, epoch: u64, truncate: bool) -> Result<BufWriter<File>> {
    let file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(truncate)
        .open(wal_path(dir, epoch))
        .map_err(|e| io_err("wal: open log", e))?;
    Ok(BufWriter::new(file))
}

fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32(out, payload.len() as u32);
    put_u32(out, fnv1a(payload));
    out.extend_from_slice(payload);
}

/// Replays committed groups from `bytes` into `db` and returns the byte
/// length of the committed prefix. Anything after the last commit marker —
/// an open group, a torn frame, a corrupt checksum — is ignored, and the
/// caller truncates the file to the returned length.
fn replay(db: &mut Database, bytes: &[u8]) -> Result<u64> {
    let mut pos = 0usize;
    let mut committed = 0usize;
    let mut group: Vec<WalOp> = Vec::new();
    // stop at a torn header (or clean EOF), torn payload, corrupt frame
    while let Some(header_end) = pos.checked_add(8).filter(|e| *e <= bytes.len()) {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let want = u32::from_le_bytes(bytes[pos + 4..header_end].try_into().unwrap());
        let Some(frame_end) = header_end.checked_add(len).filter(|e| *e <= bytes.len()) else {
            break; // torn payload
        };
        let payload = &bytes[header_end..frame_end];
        if fnv1a(payload) != want {
            break; // corrupt frame: treat like a torn tail
        }
        let Ok(op) = decode_op(payload) else {
            break; // undecodable op: same
        };
        pos = frame_end;
        match op {
            Some(op) => group.push(op),
            None => {
                // commit marker: the group becomes visible atomically
                for op in group.drain(..) {
                    apply_op(db, op)?;
                }
                committed = pos;
            }
        }
    }
    Ok(committed as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "mdv-wal-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn schema_t() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("v", DataType::Str).nullable(),
            ],
        )
        .unwrap()
    }

    fn row(k: i64, v: &str) -> Row {
        vec![Value::Int(k), Value::Str(v.into())]
    }

    #[test]
    fn recovery_replays_committed_ops_byte_identically() {
        let dir = temp_dir("basic");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        eng.create_index("t", "by_k", IndexKind::Hash, &["k"], true)
            .unwrap();
        eng.begin();
        let a = StorageEngine::insert(&mut eng, "t", row(1, "a")).unwrap();
        StorageEngine::insert(&mut eng, "t", row(2, "b")).unwrap();
        eng.commit().unwrap();
        StorageEngine::update(&mut eng, "t", a, vec![Value::Int(1), Value::Null]).unwrap();
        StorageEngine::delete(&mut eng, "t", a).unwrap();
        let want = write_database(eng.database());
        drop(eng);
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_group_is_lost_whole() {
        let dir = temp_dir("atomic");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        StorageEngine::insert(&mut eng, "t", row(1, "committed")).unwrap();
        let want = write_database(eng.database());
        eng.begin();
        StorageEngine::insert(&mut eng, "t", row(2, "doomed")).unwrap();
        StorageEngine::insert(&mut eng, "t", row(3, "doomed")).unwrap();
        // simulate a crash before commit: the group never reaches the file
        drop(eng);
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nested_groups_flush_only_at_outermost_commit() {
        let dir = temp_dir("nest");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        let committed = eng.commits();
        eng.begin(); // outer group (e.g. a whole node operation)
        eng.begin(); // inner group (e.g. one engine-level batch)
        StorageEngine::insert(&mut eng, "t", row(1, "a")).unwrap();
        StorageEngine::commit(&mut eng).unwrap(); // inner: must NOT flush
        StorageEngine::insert(&mut eng, "t", row(2, "b")).unwrap();
        assert_eq!(eng.commits(), committed, "inner commit flushed early");
        // crash here loses the whole outer group
        {
            let lost = DurableEngine::open(&dir).unwrap();
            assert!(lost.database().table("t").unwrap().iter().next().is_none());
        }
        StorageEngine::commit(&mut eng).unwrap(); // outer: flushes both
        let want = write_database(eng.database());
        drop(eng);
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_record_is_discarded_and_log_reusable() {
        let dir = temp_dir("torn");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        StorageEngine::insert(&mut eng, "t", row(1, "safe")).unwrap();
        let want = write_database(eng.database());
        let epoch = eng.epoch();
        drop(eng);
        // crash mid-append: a partial frame lands at the end of the log
        let path = wal_path(&dir, epoch);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x40, 0, 0, 0, 0xde, 0xad]).unwrap(); // len=64, torn
        drop(f);
        let mut recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), want);
        // the torn tail was truncated: new writes commit and recover fine
        StorageEngine::insert(&mut recovered, "t", row(2, "after")).unwrap();
        let want2 = write_database(recovered.database());
        drop(recovered);
        let again = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(again.database()), want2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_truncates_tail() {
        let dir = temp_dir("crc");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        StorageEngine::insert(&mut eng, "t", row(1, "keep")).unwrap();
        let keep = write_database(eng.database());
        StorageEngine::insert(&mut eng, "t", row(2, "flipped")).unwrap();
        let epoch = eng.epoch();
        drop(eng);
        // flip one byte inside the last committed group's payload
        let path = wal_path(&dir, epoch);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 20] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), keep);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_and_survives_restart() {
        let dir = temp_dir("ckpt");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        for k in 0..10 {
            StorageEngine::insert(&mut eng, "t", row(k, "x")).unwrap();
        }
        assert!(eng.wal_bytes() > 0);
        eng.checkpoint().unwrap();
        assert_eq!(eng.epoch(), 1);
        assert_eq!(eng.wal_bytes(), 0, "log truncated at checkpoint");
        assert!(!snapshot_path(&dir, 0).exists());
        assert!(!wal_path(&dir, 0).exists());
        StorageEngine::insert(&mut eng, "t", row(100, "post")).unwrap();
        let want = write_database(eng.database());
        drop(eng);
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(recovered.epoch(), 1);
        assert_eq!(write_database(recovered.database()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_checkpoint_fires_on_threshold() {
        let dir = temp_dir("auto");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.set_checkpoint_every(Some(5));
        eng.create_table(schema_t()).unwrap();
        for k in 0..20 {
            StorageEngine::insert(&mut eng, "t", row(k, "x")).unwrap();
        }
        assert!(eng.epoch() >= 3, "epoch {} after 21 ops", eng.epoch());
        let want = write_database(eng.database());
        drop(eng);
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rollback_discards_pending_durability() {
        let dir = temp_dir("rb");
        let mut eng = DurableEngine::create(&dir).unwrap();
        eng.create_table(schema_t()).unwrap();
        let before = write_database(eng.database());
        eng.begin();
        let rid = StorageEngine::insert(&mut eng, "t", row(7, "gone")).unwrap();
        // caller undoes the in-memory effect (what Txn would do) …
        eng.db.delete("t", rid).unwrap();
        // … then discards the group's pending log records
        StorageEngine::rollback(&mut eng).unwrap();
        drop(eng);
        let recovered = DurableEngine::open(&dir).unwrap();
        // rows match; id counters may differ, compare logical content
        assert_eq!(
            recovered.database().table("t").unwrap().len(),
            read_database(&before).unwrap().table("t").unwrap().len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_from_seeds_without_logging() {
        let mut db = Database::new();
        db.create_table(schema_t()).unwrap();
        db.insert("t", row(1, "seed")).unwrap();
        let dir = temp_dir("seed");
        let eng = DurableEngine::create_from(&dir, db.clone()).unwrap();
        assert_eq!(eng.wal_bytes(), 0, "seed state goes to the snapshot");
        assert_eq!(write_database(eng.database()), write_database(&db));
        drop(eng);
        let recovered = DurableEngine::open(&dir).unwrap();
        assert_eq!(write_database(recovered.database()), write_database(&db));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_refuses_empty_dir_and_create_refuses_existing() {
        let dir = temp_dir("guard");
        assert!(DurableEngine::open(&dir).is_err());
        let eng = DurableEngine::create(&dir).unwrap();
        drop(eng);
        assert!(DurableEngine::create(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
