//! A small SQL dialect over the storage engine: `SELECT` with multi-table
//! joins, the MDV paper's workhorse ("search requests are translated into
//! SQL join queries", §2.2).
//!
//! Supported grammar:
//!
//! ```text
//! SELECT [DISTINCT] * | item [, item ...]
//! FROM table [alias] [, table [alias] ...]
//! [WHERE expr]
//! [ORDER BY column [ASC|DESC]]
//! [LIMIT n]
//!
//! item   := column | CAST(column AS INT|FLOAT|STR|BOOL)
//! column := [alias.]name
//! expr   := expr OR expr | expr AND expr | NOT expr | (expr) | scalar op scalar
//! op     := = | != | <> | < | <= | > | >= | CONTAINS
//! scalar := column | CAST(scalar AS type) | 'string' | number | TRUE | FALSE | NULL
//! ```
//!
//! Execution joins the FROM tables left to right: per-table conjuncts are
//! pushed down and evaluated through the engine's access-path planner
//! (index probes where possible), cross-table equality conjuncts become
//! hash joins, everything else is a residual filter. `CONTAINS` is the
//! dialect's substring operator (the rule language's `contains`);
//! `CAST(value AS INT)` performs the string→number reconversion the MDV
//! filter tables rely on.

use std::collections::HashMap;

use crate::catalog::Database;
use crate::error::{Error, Result};
use crate::join::hash_join;
use crate::predicate::{CmpOp, Expr, Predicate};
use crate::query;
use crate::table::Row;
use crate::value::{DataType, Value};

/// The result of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column labels, in projection order.
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

/// Parses and executes one `SELECT` statement.
pub fn execute(db: &Database, sql: &str) -> Result<ResultSet> {
    let stmt = parse(sql)?;
    run(db, &stmt)
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct SelectStmt {
    distinct: bool,
    /// `None` = `SELECT *`.
    projection: Option<Vec<Scalar>>,
    from: Vec<FromItem>,
    where_: Option<SqlExpr>,
    order_by: Option<(ColumnRef, bool /* descending */)>,
    limit: Option<usize>,
}

#[derive(Debug, Clone, PartialEq)]
struct FromItem {
    table: String,
    alias: String,
}

#[derive(Debug, Clone, PartialEq)]
struct ColumnRef {
    /// Alias qualifier; `None` for unqualified references.
    qualifier: Option<String>,
    column: String,
}

#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Col(ColumnRef),
    Lit(Value),
    Cast(Box<Scalar>, DataType),
}

#[derive(Debug, Clone, PartialEq)]
enum SqlExpr {
    Cmp { lhs: Scalar, op: CmpOp, rhs: Scalar },
    And(Vec<SqlExpr>),
    Or(Vec<SqlExpr>),
    Not(Box<SqlExpr>),
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String), // keyword or identifier (keywords matched case-insensitively)
    Str(String),
    Int(i64),
    Float(f64),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let err = |msg: &str| Error::TypeError(format!("SQL: {msg}"));
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                toks.push(Tok::Ne);
                i += 2;
            }
            '<' if chars.get(i + 1) == Some(&'>') => {
                toks.push(Tok::Ne);
                i += 2;
            }
            '<' if chars.get(i + 1) == Some(&'=') => {
                toks.push(Tok::Le);
                i += 2;
            }
            '<' => {
                toks.push(Tok::Lt);
                i += 1;
            }
            '>' if chars.get(i + 1) == Some(&'=') => {
                toks.push(Tok::Ge);
                i += 2;
            }
            '>' => {
                toks.push(Tok::Gt);
                i += 1;
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => return Err(err("unterminated string")),
                    }
                }
                toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                let mut is_float = false;
                while let Some(&d) = chars.get(i) {
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.'
                        && !is_float
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                    {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    toks.push(Tok::Float(text.parse().map_err(|_| err("bad float"))?));
                } else {
                    toks.push(Tok::Int(text.parse().map_err(|_| err("bad integer"))?));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while chars
                    .get(i)
                    .is_some_and(|&c| c.is_alphanumeric() || c == '_')
                {
                    i += 1;
                }
                toks.push(Tok::Word(chars[start..i].iter().collect()));
            }
            other => return Err(err(&format!("unexpected character '{other}'"))),
        }
    }
    toks.push(Tok::Eof);
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

fn parse(sql: &str) -> Result<SelectStmt> {
    let mut p = Parser {
        toks: lex(sql)?,
        pos: 0,
    };
    let stmt = p.select()?;
    p.expect_eof()?;
    Ok(stmt)
}

impl Parser {
    fn err(&self, msg: &str) -> Error {
        Error::TypeError(format!("SQL: {msg} (near token {:?})", self.peek()))
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Tok {
        let t = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// Consumes a keyword (case-insensitive) if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Tok::Word(w) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.bump();
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {kw}")))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(self.err("trailing tokens after statement"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Word(w) => Ok(w),
            _ => Err(self.err("expected an identifier")),
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let projection = if *self.peek() == Tok::Star {
            self.bump();
            None
        } else {
            let mut items = vec![self.scalar()?];
            while *self.peek() == Tok::Comma {
                self.bump();
                items.push(self.scalar()?);
            }
            Some(items)
        };
        self.expect_kw("FROM")?;
        let mut from = vec![self.from_item()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            from.push(self.from_item()?);
        }
        let where_ = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let col = self.column_ref()?;
            let desc = if self.eat_kw("DESC") {
                true
            } else {
                self.eat_kw("ASC");
                false
            };
            Some((col, desc))
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                Tok::Int(n) if n >= 0 => Some(n as usize),
                _ => return Err(self.err("LIMIT expects a non-negative integer")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            projection,
            from,
            where_,
            order_by,
            limit,
        })
    }

    #[allow(clippy::wrong_self_convention)] // parses a FROM-clause item, not a conversion
    fn from_item(&mut self) -> Result<FromItem> {
        let table = self.ident()?;
        // an optional alias, as long as it is not a keyword starting a clause
        let alias = match self.peek() {
            Tok::Word(w)
                if !["WHERE", "ORDER", "LIMIT"]
                    .iter()
                    .any(|k| w.eq_ignore_ascii_case(k)) =>
            {
                self.ident()?
            }
            _ => table.clone(),
        };
        Ok(FromItem { table, alias })
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident()?;
        if *self.peek() == Tok::Dot {
            self.bump();
            let column = self.ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                column: first,
            })
        }
    }

    fn scalar(&mut self) -> Result<Scalar> {
        match self.peek().clone() {
            Tok::Str(s) => {
                self.bump();
                Ok(Scalar::Lit(Value::Str(s)))
            }
            Tok::Int(i) => {
                self.bump();
                Ok(Scalar::Lit(Value::Int(i)))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Scalar::Lit(Value::Float(x)))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("CAST") => {
                self.bump();
                if self.bump() != Tok::LParen {
                    return Err(self.err("expected '(' after CAST"));
                }
                let inner = self.scalar()?;
                self.expect_kw("AS")?;
                let ty = match self.ident()?.to_ascii_uppercase().as_str() {
                    "INT" | "INTEGER" => DataType::Int,
                    "FLOAT" | "REAL" | "DOUBLE" => DataType::Float,
                    "STR" | "TEXT" | "VARCHAR" => DataType::Str,
                    "BOOL" | "BOOLEAN" => DataType::Bool,
                    other => return Err(self.err(&format!("unknown CAST type {other}"))),
                };
                if self.bump() != Tok::RParen {
                    return Err(self.err("expected ')' after CAST type"));
                }
                Ok(Scalar::Cast(Box::new(inner), ty))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("TRUE") => {
                self.bump();
                Ok(Scalar::Lit(Value::Bool(true)))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("FALSE") => {
                self.bump();
                Ok(Scalar::Lit(Value::Bool(false)))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("NULL") => {
                self.bump();
                Ok(Scalar::Lit(Value::Null))
            }
            Tok::Word(_) => Ok(Scalar::Col(self.column_ref()?)),
            _ => Err(self.err("expected a scalar")),
        }
    }

    fn expr(&mut self) -> Result<SqlExpr> {
        let mut parts = vec![self.and_expr()?];
        while self.eat_kw("OR") {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            SqlExpr::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let mut parts = vec![self.factor()?];
        while self.eat_kw("AND") {
            parts.push(self.factor()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            SqlExpr::And(parts)
        })
    }

    fn factor(&mut self) -> Result<SqlExpr> {
        if self.eat_kw("NOT") {
            return Ok(SqlExpr::Not(Box::new(self.factor()?)));
        }
        if *self.peek() == Tok::LParen {
            self.bump();
            let inner = self.expr()?;
            if self.bump() != Tok::RParen {
                return Err(self.err("expected ')'"));
            }
            return Ok(inner);
        }
        let lhs = self.scalar()?;
        let op = match self.bump() {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            Tok::Word(w) if w.eq_ignore_ascii_case("CONTAINS") => CmpOp::Contains,
            _ => return Err(self.err("expected a comparison operator")),
        };
        let rhs = self.scalar()?;
        Ok(SqlExpr::Cmp { lhs, op, rhs })
    }
}

// ---------------------------------------------------------------------------
// Binder + executor
// ---------------------------------------------------------------------------

/// Column layout of the (partially) joined row.
struct Layout {
    /// alias → (first column position, table name).
    tables: Vec<(String, usize, String)>,
    /// flat list of (alias, column name) in position order.
    columns: Vec<(String, String)>,
}

impl Layout {
    fn resolve(&self, col: &ColumnRef) -> Result<usize> {
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, (alias, name))| {
                name == &col.column && col.qualifier.as_ref().is_none_or(|q| q == alias)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [one] => Ok(*one),
            [] => Err(Error::TypeError(format!(
                "SQL: unknown column '{}'",
                display_col(col)
            ))),
            _ => Err(Error::TypeError(format!(
                "SQL: ambiguous column '{}'",
                display_col(col)
            ))),
        }
    }
}

fn display_col(col: &ColumnRef) -> String {
    match &col.qualifier {
        Some(q) => format!("{q}.{}", col.column),
        None => col.column.clone(),
    }
}

/// Converts a bound scalar into a relstore expression over the combined row.
fn bind_scalar(layout: &Layout, s: &Scalar) -> Result<Expr> {
    Ok(match s {
        Scalar::Col(c) => Expr::Col(layout.resolve(c)?),
        Scalar::Lit(v) => Expr::Const(v.clone()),
        Scalar::Cast(inner, ty) => Expr::Cast(Box::new(bind_scalar(layout, inner)?), *ty),
    })
}

fn bind_expr(layout: &Layout, e: &SqlExpr) -> Result<Predicate> {
    Ok(match e {
        SqlExpr::Cmp { lhs, op, rhs } => Predicate::Cmp {
            lhs: bind_scalar(layout, lhs)?,
            op: *op,
            rhs: bind_scalar(layout, rhs)?,
        },
        SqlExpr::And(parts) => Predicate::and(
            parts
                .iter()
                .map(|p| bind_expr(layout, p))
                .collect::<Result<_>>()?,
        ),
        SqlExpr::Or(parts) => Predicate::Or(
            parts
                .iter()
                .map(|p| bind_expr(layout, p))
                .collect::<Result<_>>()?,
        ),
        SqlExpr::Not(inner) => Predicate::Not(Box::new(bind_expr(layout, inner)?)),
    })
}

/// The aliases a scalar references.
fn scalar_aliases(s: &Scalar, out: &mut Vec<ColumnRef>) {
    match s {
        Scalar::Col(c) => out.push(c.clone()),
        Scalar::Lit(_) => {}
        Scalar::Cast(inner, _) => scalar_aliases(inner, out),
    }
}

fn expr_columns(e: &SqlExpr, out: &mut Vec<ColumnRef>) {
    match e {
        SqlExpr::Cmp { lhs, rhs, .. } => {
            scalar_aliases(lhs, out);
            scalar_aliases(rhs, out);
        }
        SqlExpr::And(parts) | SqlExpr::Or(parts) => {
            for p in parts {
                expr_columns(p, out);
            }
        }
        SqlExpr::Not(inner) => expr_columns(inner, out),
    }
}

fn run(db: &Database, stmt: &SelectStmt) -> Result<ResultSet> {
    // build the full layout up front (for alias resolution / validation)
    let mut full = Layout {
        tables: Vec::new(),
        columns: Vec::new(),
    };
    for item in &stmt.from {
        let table = db.table(&item.table)?;
        if full.tables.iter().any(|(a, _, _)| a == &item.alias) {
            return Err(Error::TypeError(format!(
                "SQL: duplicate table alias '{}'",
                item.alias
            )));
        }
        full.tables
            .push((item.alias.clone(), full.columns.len(), item.table.clone()));
        for col in table.schema().columns() {
            full.columns.push((item.alias.clone(), col.name.clone()));
        }
    }

    // split the WHERE clause into top-level conjuncts
    let conjuncts: Vec<SqlExpr> = match &stmt.where_ {
        None => Vec::new(),
        Some(SqlExpr::And(parts)) => parts.clone(),
        Some(other) => vec![other.clone()],
    };
    let mut remaining: Vec<SqlExpr> = conjuncts;

    // join left to right
    let mut bound_aliases: Vec<String> = Vec::new();
    let mut rows: Vec<Row> = Vec::new();
    let mut layout = Layout {
        tables: Vec::new(),
        columns: Vec::new(),
    };

    for item in &stmt.from {
        let table = db.table(&item.table)?;
        // single-table conjuncts for this table: push down through the planner
        let mut local_layout = Layout {
            tables: vec![(item.alias.clone(), 0, item.table.clone())],
            columns: table
                .schema()
                .columns()
                .iter()
                .map(|c| (item.alias.clone(), c.name.clone()))
                .collect(),
        };
        // a conjunct is local when every column it references resolves in
        // the local layout (qualified by this alias, or unqualified+unique)
        let mut local_preds = Vec::new();
        remaining.retain(|conj| {
            let mut cols = Vec::new();
            expr_columns(conj, &mut cols);
            let is_local = !cols.is_empty() && cols.iter().all(|c| local_layout.resolve(c).is_ok());
            if is_local {
                if let Ok(p) = bind_expr(&local_layout, conj) {
                    local_preds.push(p);
                    return false;
                }
            }
            true
        });
        let pred = Predicate::and(local_preds);
        let filtered: Vec<Row> = query::select(table, &pred)?
            .into_iter()
            .map(|(_, r)| r)
            .collect();

        if bound_aliases.is_empty() {
            rows = filtered;
            layout = local_layout;
            bound_aliases.push(item.alias.clone());
            continue;
        }

        // extend the layout
        let offset = layout.columns.len();
        layout
            .tables
            .push((item.alias.clone(), offset, item.table.clone()));
        layout.columns.append(&mut local_layout.columns);
        bound_aliases.push(item.alias.clone());

        // find equality conjuncts usable as hash-join keys: one plain column
        // on each side, one side bound, the other in the new table
        let mut left_keys = Vec::new(); // positions in `rows`
        let mut right_keys = Vec::new(); // positions in the new table rows
        remaining.retain(|conj| {
            if let SqlExpr::Cmp {
                lhs: Scalar::Col(a),
                op: CmpOp::Eq,
                rhs: Scalar::Col(b),
            } = conj
            {
                let a_pos = layout.resolve(a);
                let b_pos = layout.resolve(b);
                if let (Ok(ap), Ok(bp)) = (a_pos, b_pos) {
                    let (old, new) = if ap < offset && bp >= offset {
                        (ap, bp - offset)
                    } else if bp < offset && ap >= offset {
                        (bp, ap - offset)
                    } else {
                        return true;
                    };
                    left_keys.push(old);
                    right_keys.push(new);
                    return false;
                }
            }
            true
        });

        rows = if left_keys.is_empty() {
            // no join keys: cartesian product
            let mut out = Vec::new();
            for l in &rows {
                for r in &filtered {
                    let mut joined = l.clone();
                    joined.extend_from_slice(r);
                    out.push(joined);
                }
            }
            out
        } else {
            hash_join(&rows, &filtered, &left_keys, &right_keys)
        };

        // apply any conjuncts that became fully bound with this table
        let mut now_bound = Vec::new();
        remaining.retain(|conj| {
            let mut cols = Vec::new();
            expr_columns(conj, &mut cols);
            if cols.iter().all(|c| layout.resolve(c).is_ok()) {
                if let Ok(p) = bind_expr(&layout, conj) {
                    now_bound.push(p);
                    return false;
                }
            }
            true
        });
        if !now_bound.is_empty() {
            let pred = Predicate::and(now_bound);
            rows.retain(|r| pred.matches(r).unwrap_or(false));
        }
    }

    // any conjunct still unbound references unknown columns
    if let Some(conj) = remaining.first() {
        let mut cols = Vec::new();
        expr_columns(conj, &mut cols);
        for c in cols {
            layout.resolve(&c)?;
        }
        // resolvable but unapplied would be a planner bug
        let pred = bind_expr(&layout, conj)?;
        rows.retain(|r| pred.matches(r).unwrap_or(false));
    }

    // ORDER BY
    if let Some((col, desc)) = &stmt.order_by {
        let pos = layout.resolve(col)?;
        rows.sort_by(|a, b| a[pos].cmp(&b[pos]));
        if *desc {
            rows.reverse();
        }
    }

    // projection
    let (columns, mut rows) = match &stmt.projection {
        None => (
            layout
                .columns
                .iter()
                .map(|(a, c)| format!("{a}.{c}"))
                .collect::<Vec<_>>(),
            rows,
        ),
        Some(items) => {
            let exprs: Vec<Expr> = items
                .iter()
                .map(|s| bind_scalar(&layout, s))
                .collect::<Result<_>>()?;
            let labels: Vec<String> = items
                .iter()
                .map(|s| match s {
                    Scalar::Col(c) => display_col(c),
                    Scalar::Lit(v) => v.to_string(),
                    Scalar::Cast(_, ty) => format!("CAST AS {ty}"),
                })
                .collect();
            let projected: Vec<Row> = rows
                .iter()
                .map(|r| exprs.iter().map(|e| e.eval(r)).collect::<Result<Row>>())
                .collect::<Result<_>>()?;
            (labels, projected)
        }
    };

    if stmt.distinct {
        let mut seen = HashMap::new();
        rows.retain(|r| seen.insert(format!("{r:?}"), ()).is_none());
    }
    if let Some(limit) = stmt.limit {
        rows.truncate(limit);
    }
    Ok(ResultSet { columns, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use crate::schema::{ColumnDef, TableSchema};

    /// The MDV base layout: Resources + Statements.
    fn mdv_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "Resources",
                vec![
                    ColumnDef::new("uri_reference", DataType::Str),
                    ColumnDef::new("class", DataType::Str),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "Statements",
                vec![
                    ColumnDef::new("uri_reference", DataType::Str),
                    ColumnDef::new("property", DataType::Str),
                    ColumnDef::new("value", DataType::Str),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_index(
            "Statements",
            "by_pv",
            IndexKind::Hash,
            &["property", "value"],
            false,
        )
        .unwrap();
        for (uri, class, host, memory) in [
            ("d1#host", "CycleProvider", "a.uni-passau.de", "128"),
            ("d2#host", "CycleProvider", "b.example.org", "92"),
            ("d3#host", "CycleProvider", "c.uni-passau.de", "32"),
        ] {
            db.insert("Resources", vec![Value::from(uri), Value::from(class)])
                .unwrap();
            db.insert(
                "Statements",
                vec![
                    Value::from(uri),
                    Value::from("serverHost"),
                    Value::from(host),
                ],
            )
            .unwrap();
            db.insert(
                "Statements",
                vec![Value::from(uri), Value::from("memory"), Value::from(memory)],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn select_star_single_table() {
        let db = mdv_db();
        let rs = execute(&db, "SELECT * FROM Resources").unwrap();
        assert_eq!(
            rs.columns,
            vec!["Resources.uri_reference", "Resources.class"]
        );
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn filter_and_projection() {
        let db = mdv_db();
        let rs = execute(
            &db,
            "SELECT s.uri_reference FROM Statements s \
             WHERE s.property = 'serverHost' AND s.value CONTAINS 'uni-passau.de'",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.columns, vec!["s.uri_reference"]);
    }

    #[test]
    fn join_query_mdv_shape() {
        // the translated form of: search CycleProvider c register c
        // where c.serverHost contains 'uni-passau.de' and c.memory > 64
        let db = mdv_db();
        let rs = execute(
            &db,
            "SELECT DISTINCT r.uri_reference \
             FROM Resources r, Statements h, Statements m \
             WHERE r.class = 'CycleProvider' \
             AND h.uri_reference = r.uri_reference \
             AND h.property = 'serverHost' AND h.value CONTAINS 'uni-passau.de' \
             AND m.uri_reference = r.uri_reference \
             AND m.property = 'memory' AND CAST(m.value AS INT) > 64",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Str("d1#host".into()));
    }

    #[test]
    fn cast_reconverts_strings() {
        let db = mdv_db();
        let rs = execute(
            &db,
            "SELECT s.uri_reference FROM Statements s \
             WHERE s.property = 'memory' AND CAST(s.value AS INT) >= 92 \
             ORDER BY s.uri_reference",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Str("d1#host".into()));
        assert_eq!(rs.rows[1][0], Value::Str("d2#host".into()));
    }

    #[test]
    fn order_by_desc_and_limit() {
        let db = mdv_db();
        let rs = execute(
            &db,
            "SELECT s.value FROM Statements s WHERE s.property = 'memory' \
             ORDER BY s.value DESC LIMIT 2",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Str("92".into()));
    }

    #[test]
    fn or_and_not_and_parens() {
        let db = mdv_db();
        let rs = execute(
            &db,
            "SELECT r.uri_reference FROM Resources r \
             WHERE NOT (r.uri_reference = 'd1#host' OR r.uri_reference = 'd2#host')",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Str("d3#host".into()));
    }

    #[test]
    fn unqualified_columns_resolve_when_unique() {
        let db = mdv_db();
        let rs = execute(
            &db,
            "SELECT class FROM Resources WHERE class = 'CycleProvider'",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 3);
        // ambiguous across tables
        let err = execute(&db, "SELECT uri_reference FROM Resources r, Statements s").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn errors_are_descriptive() {
        let db = mdv_db();
        assert!(execute(&db, "SELECT * FROM NoSuchTable").is_err());
        assert!(execute(&db, "SELECT nope FROM Resources").is_err());
        assert!(execute(&db, "SELEKT * FROM Resources").is_err());
        assert!(execute(&db, "SELECT * FROM Resources WHERE").is_err());
        assert!(execute(&db, "SELECT * FROM Resources LIMIT x").is_err());
        assert!(execute(&db, "SELECT * FROM Resources extra garbage").is_err());
        assert!(execute(&db, "SELECT * FROM Resources r, Resources r").is_err());
    }

    #[test]
    fn cartesian_product_when_no_join_keys() {
        let db = mdv_db();
        let rs = execute(
            &db,
            "SELECT r.uri_reference, s.property FROM Resources r, Statements s LIMIT 100",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 3 * 6);
    }

    #[test]
    fn distinct_dedupes() {
        let db = mdv_db();
        let rs = execute(&db, "SELECT DISTINCT r.class FROM Resources r").unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn string_escapes() {
        let db = mdv_db();
        let rs = execute(
            &db,
            "SELECT * FROM Resources r WHERE r.uri_reference = 'it''s'",
        )
        .unwrap();
        assert!(rs.rows.is_empty());
    }
}
