//! Join execution: hash equi-joins and nested-loop theta joins over row
//! batches. The MDV filter's core step — `FilterData ⋈ FilterRulesOP` — runs
//! through these operators.

use crate::error::Result;
use crate::predicate::Predicate;
use crate::table::Row;
use crate::value::Value;
use std::collections::HashMap;

/// Hash equi-join of two row batches on the given key columns.
///
/// Output rows are `left ++ right` concatenations. Key columns with NULLs
/// never join (SQL semantics). The smaller side should be passed as `left`
/// for the build phase, but correctness does not depend on it.
pub fn hash_join(
    left: &[Row],
    right: &[Row],
    left_keys: &[usize],
    right_keys: &[usize],
) -> Vec<Row> {
    assert_eq!(left_keys.len(), right_keys.len(), "join key arity mismatch");
    let mut built: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(left.len());
    'build: for (i, row) in left.iter().enumerate() {
        let mut key = Vec::with_capacity(left_keys.len());
        for &k in left_keys {
            if row[k].is_null() {
                continue 'build;
            }
            key.push(row[k].clone());
        }
        built.entry(key).or_default().push(i);
    }
    let mut out = Vec::new();
    'probe: for rrow in right {
        let mut key = Vec::with_capacity(right_keys.len());
        for &k in right_keys {
            if rrow[k].is_null() {
                continue 'probe;
            }
            key.push(rrow[k].clone());
        }
        if let Some(matches) = built.get(&key) {
            for &li in matches {
                let mut joined = left[li].clone();
                joined.extend_from_slice(rrow);
                out.push(joined);
            }
        }
    }
    out
}

/// Nested-loop theta join: emits `left ++ right` whenever `pred` holds on the
/// concatenated row. Column positions in `pred` address the concatenation
/// (left columns first).
pub fn nested_loop_join(left: &[Row], right: &[Row], pred: &Predicate) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    for lrow in left {
        // Reuse one buffer per outer row; truncate back between inner rows.
        let base_len = lrow.len();
        let mut joined = lrow.clone();
        for rrow in right {
            joined.truncate(base_len);
            joined.extend_from_slice(rrow);
            if pred.matches(&joined)? {
                out.push(joined.clone());
            }
        }
    }
    Ok(out)
}

/// Semi-join: rows of `left` that have at least one equi-match in `right`.
pub fn semi_join(
    left: &[Row],
    right: &[Row],
    left_keys: &[usize],
    right_keys: &[usize],
) -> Vec<Row> {
    assert_eq!(left_keys.len(), right_keys.len(), "join key arity mismatch");
    let mut probe: std::collections::HashSet<Vec<Value>> =
        std::collections::HashSet::with_capacity(right.len());
    'build: for row in right {
        let mut key = Vec::with_capacity(right_keys.len());
        for &k in right_keys {
            if row[k].is_null() {
                continue 'build;
            }
            key.push(row[k].clone());
        }
        probe.insert(key);
    }
    left.iter()
        .filter(|row| {
            let mut key = Vec::with_capacity(left_keys.len());
            for &k in left_keys {
                if row[k].is_null() {
                    return false;
                }
                key.push(row[k].clone());
            }
            probe.contains(&key)
        })
        .cloned()
        .collect()
}

/// Anti-join: rows of `left` with **no** equi-match in `right`. Used by the
/// MDV update protocol ("candidates minus wrong candidates", paper §3.5).
pub fn anti_join(
    left: &[Row],
    right: &[Row],
    left_keys: &[usize],
    right_keys: &[usize],
) -> Vec<Row> {
    assert_eq!(left_keys.len(), right_keys.len(), "join key arity mismatch");
    let mut probe: std::collections::HashSet<Vec<Value>> =
        std::collections::HashSet::with_capacity(right.len());
    'build: for row in right {
        let mut key = Vec::with_capacity(right_keys.len());
        for &k in right_keys {
            if row[k].is_null() {
                continue 'build;
            }
            key.push(row[k].clone());
        }
        probe.insert(key);
    }
    left.iter()
        .filter(|row| {
            let mut key = Vec::with_capacity(left_keys.len());
            for &k in left_keys {
                if row[k].is_null() {
                    // NULL keys never match, so they survive an anti-join.
                    return true;
                }
                key.push(row[k].clone());
            }
            !probe.contains(&key)
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Expr};

    fn rows(data: &[(&str, i64)]) -> Vec<Row> {
        data.iter()
            .map(|(s, i)| vec![Value::Str((*s).into()), Value::Int(*i)])
            .collect()
    }

    #[test]
    fn hash_join_basic() {
        let l = rows(&[("a", 1), ("b", 2), ("c", 2)]);
        let r = rows(&[("x", 2), ("y", 3)]);
        let out = hash_join(&l, &r, &[1], &[1]);
        // b⋈x and c⋈x
        assert_eq!(out.len(), 2);
        for row in &out {
            assert_eq!(row.len(), 4);
            assert_eq!(row[1], Value::Int(2));
            assert_eq!(row[3], Value::Int(2));
        }
    }

    #[test]
    fn hash_join_cross_type_numeric_keys() {
        // Int(2) and Float(2.0) hash/compare equal, so they join.
        let l = vec![vec![Value::Int(2)]];
        let r = vec![vec![Value::Float(2.0)]];
        assert_eq!(hash_join(&l, &r, &[0], &[0]).len(), 1);
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let l = vec![vec![Value::Null], vec![Value::Int(1)]];
        let r = vec![vec![Value::Null], vec![Value::Int(1)]];
        let out = hash_join(&l, &r, &[0], &[0]);
        assert_eq!(out.len(), 1, "only the Int(1) pair joins");
    }

    #[test]
    fn hash_join_composite_keys() {
        let l = rows(&[("a", 1), ("a", 2)]);
        let r = rows(&[("a", 1), ("b", 1)]);
        let out = hash_join(&l, &r, &[0, 1], &[0, 1]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn nested_loop_theta() {
        let l = rows(&[("a", 1), ("b", 5)]);
        let r = rows(&[("x", 3), ("y", 4)]);
        // left.value > right.value  (columns: 0,1 left; 2,3 right)
        let pred = Predicate::Cmp {
            lhs: Expr::Col(1),
            op: CmpOp::Gt,
            rhs: Expr::Col(3),
        };
        let out = nested_loop_join(&l, &r, &pred).unwrap();
        // only b(5) > x(3) and b(5) > y(4)
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r[0] == Value::Str("b".into())));
    }

    #[test]
    fn semi_and_anti_partition_left() {
        let l = rows(&[("a", 1), ("b", 2), ("c", 3)]);
        let r = rows(&[("x", 2)]);
        let semi = semi_join(&l, &r, &[1], &[1]);
        let anti = anti_join(&l, &r, &[1], &[1]);
        assert_eq!(semi.len(), 1);
        assert_eq!(semi[0][0], Value::Str("b".into()));
        assert_eq!(anti.len(), 2);
        assert_eq!(semi.len() + anti.len(), l.len());
    }

    #[test]
    fn anti_join_null_left_keys_survive() {
        let l = vec![vec![Value::Null], vec![Value::Int(1)]];
        let r = vec![vec![Value::Int(1)]];
        let out = anti_join(&l, &r, &[0], &[0]);
        assert_eq!(out.len(), 1);
        assert!(out[0][0].is_null());
    }

    #[test]
    fn empty_inputs() {
        let l = rows(&[("a", 1)]);
        let empty: Vec<Row> = Vec::new();
        assert!(hash_join(&l, &empty, &[1], &[1]).is_empty());
        assert!(hash_join(&empty, &l, &[1], &[1]).is_empty());
        assert_eq!(semi_join(&l, &empty, &[1], &[1]).len(), 0);
        assert_eq!(anti_join(&l, &empty, &[1], &[1]).len(), 1);
    }
}
