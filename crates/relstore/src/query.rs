//! Single-table query execution with a small access-path planner.
//!
//! The planner inspects the conjunctive terms of a predicate and chooses, in
//! order of preference:
//!
//! 1. a **point probe** on an index whose key columns are all equality-bound,
//! 2. a **prefix-range probe** on a B-tree index whose leading key columns
//!    are equality-bound and whose next column carries range bounds,
//! 3. a full **table scan**.
//!
//! The full predicate is always re-applied as a residual filter, so plans are
//! interchangeable in results — only cost differs. This mirrors how the MDV
//! filter tables are "used as indexes to all triggering rules" (paper §3.3.4)
//! while correctness never depends on physical design.

use std::ops::Bound;

use crate::error::Result;
use crate::index::IndexKind;
use crate::predicate::{CmpOp, Expr, Predicate};
use crate::table::{Row, RowId, Table};
use crate::value::Value;

/// A chosen access path, exposed for tests and plan inspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    TableScan,
    /// Point probe on the named index.
    IndexProbe {
        index: String,
    },
    /// Prefix + range probe on the named B-tree index.
    IndexRange {
        index: String,
    },
}

/// One equality or range restriction `column op constant` usable by an index.
#[derive(Debug, Clone)]
struct SargableTerm {
    column: usize,
    op: CmpOp,
    value: Value,
}

/// Collects sargable conjuncts (`Col op Const`) from a predicate. Only the
/// top-level conjunction is mined; nested `Or`/`Not` terms stay residual.
fn sargable_terms(pred: &Predicate) -> Vec<SargableTerm> {
    fn from_cmp(lhs: &Expr, op: CmpOp, rhs: &Expr) -> Option<SargableTerm> {
        match (lhs, rhs) {
            (Expr::Col(c), Expr::Const(v)) => Some(SargableTerm {
                column: *c,
                op,
                value: v.clone(),
            }),
            (Expr::Const(v), Expr::Col(c)) => Some(SargableTerm {
                column: *c,
                op: op.mirrored(),
                value: v.clone(),
            }),
            _ => None,
        }
    }
    match pred {
        Predicate::Cmp { lhs, op, rhs } => from_cmp(lhs, *op, rhs).into_iter().collect(),
        Predicate::And(ps) => ps
            .iter()
            .filter_map(|p| match p {
                Predicate::Cmp { lhs, op, rhs } => from_cmp(lhs, *op, rhs),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// The plan for a single-table selection.
#[derive(Debug, Clone)]
pub struct Plan {
    pub path: AccessPath,
    /// Row ids to fetch when the path is an index probe; empty for scans.
    candidates: Option<Vec<RowId>>,
}

/// Plans a selection over `table` with `pred`, returning candidate row ids
/// (for index paths) or a scan marker.
pub fn plan(table: &Table, pred: &Predicate) -> Result<Plan> {
    let terms = sargable_terms(pred);
    let eq_terms: Vec<&SargableTerm> = terms.iter().filter(|t| t.op == CmpOp::Eq).collect();

    // 1. Point probe: an index whose key columns are all equality-bound.
    for idx in table.indexes() {
        let key: Option<Vec<Value>> = idx
            .key_columns()
            .iter()
            .map(|kc| {
                eq_terms
                    .iter()
                    .find(|t| t.column == *kc)
                    .map(|t| t.value.clone())
            })
            .collect();
        if let Some(key) = key {
            return Ok(Plan {
                path: AccessPath::IndexProbe {
                    index: idx.name().to_owned(),
                },
                candidates: Some(idx.probe(&key)),
            });
        }
    }

    // 2. Prefix range: B-tree index with eq-bound prefix and a ranged next column.
    for idx in table
        .indexes()
        .iter()
        .filter(|i| i.kind() == IndexKind::BTree)
    {
        let cols = idx.key_columns();
        // longest eq-bound prefix
        let mut prefix_vals = Vec::new();
        let mut pos = 0;
        while pos < cols.len() {
            match eq_terms.iter().find(|t| t.column == cols[pos]) {
                Some(t) => {
                    prefix_vals.push(t.value.clone());
                    pos += 1;
                }
                None => break,
            }
        }
        if pos >= cols.len() {
            continue; // fully bound handled above
        }
        let range_col = cols[pos];
        let mut lo: Bound<&Value> = Bound::Unbounded;
        let mut hi: Bound<&Value> = Bound::Unbounded;
        for t in terms.iter().filter(|t| t.column == range_col) {
            match t.op {
                CmpOp::Gt => lo = tighten_lo(lo, Bound::Excluded(&t.value)),
                CmpOp::Ge => lo = tighten_lo(lo, Bound::Included(&t.value)),
                CmpOp::Lt => hi = tighten_hi(hi, Bound::Excluded(&t.value)),
                CmpOp::Le => hi = tighten_hi(hi, Bound::Included(&t.value)),
                _ => {}
            }
        }
        let has_range = !matches!((&lo, &hi), (Bound::Unbounded, Bound::Unbounded));
        if !has_range && prefix_vals.is_empty() {
            continue;
        }
        let rids = idx.probe_prefix_range(&prefix_vals, lo, hi)?;
        return Ok(Plan {
            path: AccessPath::IndexRange {
                index: idx.name().to_owned(),
            },
            candidates: Some(rids),
        });
    }

    Ok(Plan {
        path: AccessPath::TableScan,
        candidates: None,
    })
}

fn tighten_lo<'a>(cur: Bound<&'a Value>, new: Bound<&'a Value>) -> Bound<&'a Value> {
    match (&cur, &new) {
        (Bound::Unbounded, _) => new,
        (_, Bound::Unbounded) => cur,
        (Bound::Included(a) | Bound::Excluded(a), Bound::Included(b) | Bound::Excluded(b)) => {
            if b > a {
                new
            } else if a > b {
                cur
            } else if matches!(new, Bound::Excluded(_)) {
                new
            } else {
                cur
            }
        }
    }
}

fn tighten_hi<'a>(cur: Bound<&'a Value>, new: Bound<&'a Value>) -> Bound<&'a Value> {
    match (&cur, &new) {
        (Bound::Unbounded, _) => new,
        (_, Bound::Unbounded) => cur,
        (Bound::Included(a) | Bound::Excluded(a), Bound::Included(b) | Bound::Excluded(b)) => {
            if b < a {
                new
            } else if a < b {
                cur
            } else if matches!(new, Bound::Excluded(_)) {
                new
            } else {
                cur
            }
        }
    }
}

/// Executes a selection, returning matching `(id, row)` pairs.
pub fn select(table: &Table, pred: &Predicate) -> Result<Vec<(RowId, Row)>> {
    let plan = plan(table, pred)?;
    select_with_plan(table, pred, &plan)
}

/// Executes a selection with a pre-computed plan.
pub fn select_with_plan(table: &Table, pred: &Predicate, plan: &Plan) -> Result<Vec<(RowId, Row)>> {
    let mut out = Vec::new();
    match &plan.candidates {
        Some(rids) => {
            for &rid in rids {
                let row = table.get(rid)?;
                if pred.matches(row)? {
                    out.push((rid, row.clone()));
                }
            }
        }
        None => {
            for (rid, row) in table.iter() {
                if pred.matches(row)? {
                    out.push((rid, row.clone()));
                }
            }
        }
    }
    Ok(out)
}

/// Projects rows onto the named columns.
pub fn project(table: &Table, rows: &[(RowId, Row)], columns: &[&str]) -> Result<Vec<Row>> {
    let idxs = table.schema().column_indices(columns)?;
    Ok(rows
        .iter()
        .map(|(_, r)| idxs.iter().map(|&i| r[i].clone()).collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::DataType;

    fn table_with_indexes() -> Table {
        let mut t = Table::new(
            TableSchema::new(
                "r",
                vec![
                    ColumnDef::new("class", DataType::Str),
                    ColumnDef::new("property", DataType::Str),
                    ColumnDef::new("value", DataType::Int),
                ],
            )
            .unwrap(),
        );
        t.create_index("by_cp", IndexKind::Hash, &["class", "property"], false)
            .unwrap();
        t.create_index(
            "by_cpv",
            IndexKind::BTree,
            &["class", "property", "value"],
            false,
        )
        .unwrap();
        for (c, p, v) in [
            ("A", "x", 1),
            ("A", "x", 5),
            ("A", "y", 9),
            ("B", "x", 5),
            ("B", "z", 7),
        ] {
            t.insert(vec![
                Value::Str(c.into()),
                Value::Str(p.into()),
                Value::Int(v),
            ])
            .unwrap();
        }
        t
    }

    fn eq(t: &Table, col: &str, v: Value) -> Predicate {
        Predicate::col_eq(t.schema(), col, v).unwrap()
    }

    fn cmp(t: &Table, col: &str, op: CmpOp, v: Value) -> Predicate {
        Predicate::col_cmp(t.schema(), col, op, v).unwrap()
    }

    #[test]
    fn plan_prefers_point_probe() {
        let t = table_with_indexes();
        let p = Predicate::and(vec![
            eq(&t, "class", Value::Str("A".into())),
            eq(&t, "property", Value::Str("x".into())),
        ]);
        let plan = plan(&t, &p).unwrap();
        assert_eq!(
            plan.path,
            AccessPath::IndexProbe {
                index: "by_cp".into()
            }
        );
        let rows = select(&t, &p).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn plan_uses_prefix_range() {
        let t = table_with_indexes();
        let p = Predicate::and(vec![
            eq(&t, "class", Value::Str("A".into())),
            eq(&t, "property", Value::Str("x".into())),
            cmp(&t, "value", CmpOp::Gt, Value::Int(2)),
        ]);
        // by_cp fully matches (class, property) so point probe wins; drop the
        // hash index to force the range path.
        let mut t2 = Table::new(t.schema().clone());
        t2.create_index(
            "by_cpv",
            IndexKind::BTree,
            &["class", "property", "value"],
            false,
        )
        .unwrap();
        for (_, row) in t.iter() {
            t2.insert(row.clone()).unwrap();
        }
        let plan2 = plan(&t2, &p).unwrap();
        assert_eq!(
            plan2.path,
            AccessPath::IndexRange {
                index: "by_cpv".into()
            }
        );
        let rows = select(&t2, &p).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[2], Value::Int(5));
    }

    #[test]
    fn plan_falls_back_to_scan() {
        let t = table_with_indexes();
        let p = cmp(&t, "value", CmpOp::Lt, Value::Int(6));
        // no index leads with `value`, so scan
        let plan = plan(&t, &p).unwrap();
        assert_eq!(plan.path, AccessPath::TableScan);
        assert_eq!(select(&t, &p).unwrap().len(), 3);
    }

    #[test]
    fn index_and_scan_agree() {
        let t = table_with_indexes();
        let p = Predicate::and(vec![
            eq(&t, "class", Value::Str("B".into())),
            eq(&t, "property", Value::Str("x".into())),
        ]);
        let via_index = select(&t, &p).unwrap();
        let via_scan = select_with_plan(
            &t,
            &p,
            &Plan {
                path: AccessPath::TableScan,
                candidates: None,
            },
        )
        .unwrap();
        assert_eq!(via_index, via_scan);
    }

    #[test]
    fn residual_filter_applies_on_index_path() {
        let t = table_with_indexes();
        // probe on (class, property) but extra restriction on value
        let p = Predicate::and(vec![
            eq(&t, "class", Value::Str("A".into())),
            eq(&t, "property", Value::Str("x".into())),
            eq(&t, "value", Value::Int(5)),
        ]);
        let rows = select(&t, &p).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[2], Value::Int(5));
    }

    #[test]
    fn bound_tightening() {
        let t = table_with_indexes();
        let mut t2 = Table::new(t.schema().clone());
        t2.create_index("by_v", IndexKind::BTree, &["value"], false)
            .unwrap();
        for v in 0..10 {
            t2.insert(vec![
                Value::Str("A".into()),
                Value::Str("x".into()),
                Value::Int(v),
            ])
            .unwrap();
        }
        let p = Predicate::and(vec![
            cmp(&t2, "value", CmpOp::Gt, Value::Int(2)),
            cmp(&t2, "value", CmpOp::Ge, Value::Int(4)),
            cmp(&t2, "value", CmpOp::Lt, Value::Int(8)),
            cmp(&t2, "value", CmpOp::Le, Value::Int(9)),
        ]);
        let rows = select(&t2, &p).unwrap();
        let vals: Vec<i64> = rows.iter().map(|(_, r)| r[2].as_int().unwrap()).collect();
        assert_eq!(vals, vec![4, 5, 6, 7]);
    }

    #[test]
    fn projection() {
        let t = table_with_indexes();
        let rows = select(&t, &eq(&t, "class", Value::Str("B".into()))).unwrap();
        let projected = project(&t, &rows, &["value", "property"]).unwrap();
        assert_eq!(projected.len(), 2);
        assert_eq!(projected[0].len(), 2);
    }

    #[test]
    fn mirrored_sargable_terms() {
        let t = table_with_indexes();
        // Const = Col form should still be sargable
        let p = Predicate::Cmp {
            lhs: Expr::Const(Value::Str("A".into())),
            op: CmpOp::Eq,
            rhs: Expr::col(t.schema(), "class").unwrap(),
        };
        let rows = select(&t, &p).unwrap();
        assert_eq!(rows.len(), 3);
    }
}
