//! The database catalog: a named collection of tables with convenience
//! mutation APIs. One `Database` instance backs one MDV node (an MDP's filter
//! tables, or an LMR's cache).

use std::collections::BTreeMap;

use crate::error::{Error, Result};
use crate::index::IndexKind;
use crate::schema::TableSchema;
use crate::table::{Row, RowId, Table};

/// A named collection of in-memory tables.
#[derive(Debug, Clone, Default)]
pub struct Database {
    // BTreeMap keeps table listings deterministic for debugging and tests.
    tables: BTreeMap<String, Table>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates a table from a schema.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        let name = schema.name().to_owned();
        if self.tables.contains_key(&name) {
            return Err(Error::TableExists(name));
        }
        self.tables.insert(name, Table::new(schema));
        Ok(())
    }

    /// Drops a table, returning it.
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        self.tables
            .remove(name)
            .ok_or_else(|| Error::UnknownTable(name.to_owned()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::UnknownTable(name.to_owned()))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| Error::UnknownTable(name.to_owned()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Creates a secondary index on a table.
    pub fn create_index(
        &mut self,
        table: &str,
        index_name: &str,
        kind: IndexKind,
        columns: &[&str],
        unique: bool,
    ) -> Result<()> {
        self.table_mut(table)?
            .create_index(index_name, kind, columns, unique)
    }

    pub fn insert(&mut self, table: &str, row: Row) -> Result<RowId> {
        self.table_mut(table)?.insert(row)
    }

    pub fn insert_batch(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<Vec<RowId>> {
        self.table_mut(table)?.insert_batch(rows)
    }

    pub fn delete(&mut self, table: &str, id: RowId) -> Result<Row> {
        self.table_mut(table)?.delete(id)
    }

    pub fn update(&mut self, table: &str, id: RowId, row: Row) -> Result<Row> {
        self.table_mut(table)?.update(id, row)
    }

    pub fn get(&self, table: &str, id: RowId) -> Result<&Row> {
        self.table(table)?.get(id)
    }

    /// Total number of live rows across all tables (diagnostics).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::{DataType, Value};

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![
                ColumnDef::new("k", DataType::Int),
                ColumnDef::new("v", DataType::Str),
            ],
        )
        .unwrap()
    }

    #[test]
    fn create_and_drop_tables() {
        let mut db = Database::new();
        db.create_table(schema("a")).unwrap();
        db.create_table(schema("b")).unwrap();
        assert!(matches!(
            db.create_table(schema("a")),
            Err(Error::TableExists(_))
        ));
        assert_eq!(db.table_names(), vec!["a", "b"]);
        db.drop_table("a").unwrap();
        assert!(!db.has_table("a"));
        assert!(matches!(db.drop_table("a"), Err(Error::UnknownTable(_))));
    }

    #[test]
    fn crud_through_catalog() {
        let mut db = Database::new();
        db.create_table(schema("t")).unwrap();
        let id = db
            .insert("t", vec![Value::Int(1), Value::Str("x".into())])
            .unwrap();
        assert_eq!(db.get("t", id).unwrap()[0], Value::Int(1));
        db.update("t", id, vec![Value::Int(2), Value::Str("y".into())])
            .unwrap();
        assert_eq!(db.get("t", id).unwrap()[0], Value::Int(2));
        db.delete("t", id).unwrap();
        assert!(db.get("t", id).is_err());
        assert!(db.insert("missing", vec![]).is_err());
    }

    #[test]
    fn total_rows_counts_all_tables() {
        let mut db = Database::new();
        db.create_table(schema("a")).unwrap();
        db.create_table(schema("b")).unwrap();
        db.insert("a", vec![Value::Int(1), Value::Str("x".into())])
            .unwrap();
        db.insert_batch(
            "b",
            vec![
                vec![Value::Int(2), Value::Str("y".into())],
                vec![Value::Int(3), Value::Str("z".into())],
            ],
        )
        .unwrap();
        assert_eq!(db.total_rows(), 3);
    }

    #[test]
    fn index_via_catalog() {
        let mut db = Database::new();
        db.create_table(schema("t")).unwrap();
        db.create_index("t", "by_k", IndexKind::BTree, &["k"], false)
            .unwrap();
        let id = db
            .insert("t", vec![Value::Int(7), Value::Str("x".into())])
            .unwrap();
        let idx = db.table("t").unwrap().index("by_k").unwrap();
        assert_eq!(idx.probe(&vec![Value::Int(7)]), vec![id]);
    }
}
