//! Table schemas: column definitions and name resolution.

use std::fmt;

use crate::error::{Error, Result};
use crate::value::{DataType, Value};

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }
}

/// Schema of a table: ordered, named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    name: String,
    columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Builds a schema; column names must be unique.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Result<Self> {
        let name = name.into();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(Error::SchemaMismatch {
                    table: name,
                    detail: format!("duplicate column '{}'", c.name),
                });
            }
        }
        Ok(TableSchema { name, columns })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Resolves a column name to its positional index.
    pub fn column_index(&self, column: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == column)
            .ok_or_else(|| Error::UnknownColumn {
                table: self.name.clone(),
                column: column.to_owned(),
            })
    }

    /// Resolves several column names at once.
    pub fn column_indices(&self, columns: &[&str]) -> Result<Vec<usize>> {
        columns.iter().map(|c| self.column_index(c)).collect()
    }

    /// Validates a row against this schema (arity, types, nullability).
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::SchemaMismatch {
                table: self.name.clone(),
                detail: format!("expected {} values, got {}", self.columns.len(), row.len()),
            });
        }
        for (col, val) in self.columns.iter().zip(row) {
            match val.data_type() {
                None if col.nullable => {}
                None => {
                    return Err(Error::SchemaMismatch {
                        table: self.name.clone(),
                        detail: format!("column '{}' is not nullable", col.name),
                    })
                }
                Some(dt) if dt == col.dtype => {}
                Some(dt) => {
                    return Err(Error::SchemaMismatch {
                        table: self.name.clone(),
                        detail: format!(
                            "column '{}' expects {}, got {} ({})",
                            col.name, col.dtype, dt, val
                        ),
                    })
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for TableSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
            if c.nullable {
                f.write_str(" NULL")?;
            }
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("score", DataType::Float).nullable(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("a", DataType::Str),
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate column"));
    }

    #[test]
    fn column_resolution() {
        let s = sample();
        assert_eq!(s.column_index("name").unwrap(), 1);
        assert!(s.column_index("missing").is_err());
        assert_eq!(s.column_indices(&["score", "id"]).unwrap(), vec![2, 0]);
    }

    #[test]
    fn row_validation() {
        let s = sample();
        s.check_row(&[Value::Int(1), Value::Str("a".into()), Value::Null])
            .unwrap();
        // wrong arity
        assert!(s.check_row(&[Value::Int(1)]).is_err());
        // non-nullable null
        assert!(s
            .check_row(&[Value::Null, Value::Str("a".into()), Value::Null])
            .is_err());
        // wrong type
        assert!(s
            .check_row(&[Value::Int(1), Value::Int(2), Value::Null])
            .is_err());
    }

    #[test]
    fn display_schema() {
        assert_eq!(
            sample().to_string(),
            "t(id INT, name STR, score FLOAT NULL)"
        );
    }
}
