//! # mdv-relstore
//!
//! An embedded, in-memory relational storage engine. It stands in for the
//! "major commercial RDBMS" that the MDV paper (Keidl et al., ICDE 2002)
//! used as the backend of its publish & subscribe filter:
//!
//! * typed tables with schemas and nullability ([`TableSchema`], [`Table`]),
//! * hash and B-tree secondary indexes ([`Index`]),
//! * predicate evaluation with SQL three-valued logic ([`Predicate`]),
//! * a selection planner that picks point-probe / range-probe / scan access
//!   paths ([`query`]),
//! * hash, nested-loop, semi- and anti-joins ([`join`]),
//! * undo-log transactions ([`Txn`]).
//!
//! The engine is deliberately single-node and synchronous: the MDV filter
//! algorithm's behaviour (batch amortization, index-driven rule matching)
//! depends on *relational* evaluation, not on a network protocol.
//!
//! ## Shared read access
//!
//! Every read path (`Database::table`, `Table::rows`/`get`, index probes,
//! `query::select`, the joins) takes `&self` and the storage structures hold
//! no interior mutability — no `Cell`/`RefCell`, no lazily materialized
//! caches. A `&Database` is therefore safe to share across threads
//! (`Database: Send + Sync`, asserted below), which is what the parallel
//! filter in `mdv-filter` relies on: worker threads probe the trigger and
//! materialization tables concurrently through shared references while all
//! writes stay on the coordinating thread. See DESIGN.md §5 ("Parallel
//! filter execution").
//!
//! ```
//! use mdv_relstore::{Database, TableSchema, ColumnDef, DataType, Value,
//!                    Predicate, CmpOp, IndexKind, query};
//!
//! let mut db = Database::new();
//! db.create_table(TableSchema::new("FilterData", vec![
//!     ColumnDef::new("uri_reference", DataType::Str),
//!     ColumnDef::new("class", DataType::Str),
//!     ColumnDef::new("property", DataType::Str),
//!     ColumnDef::new("value", DataType::Str),
//! ]).unwrap()).unwrap();
//! db.create_index("FilterData", "by_class_prop", IndexKind::Hash,
//!                 &["class", "property"], false).unwrap();
//! db.insert("FilterData", vec![
//!     Value::from("doc.rdf#info"), Value::from("ServerInformation"),
//!     Value::from("memory"), Value::from("92"),
//! ]).unwrap();
//!
//! let t = db.table("FilterData").unwrap();
//! let pred = Predicate::col_eq(t.schema(), "class", Value::from("ServerInformation")).unwrap();
//! assert_eq!(query::select(t, &pred).unwrap().len(), 1);
//! ```
//!
//! `DESIGN.md` §4 holds the workspace-wide module map locating this
//! crate's files.

pub mod catalog;
pub mod engine;
pub mod error;
pub mod index;
pub mod join;
pub mod predicate;
pub mod query;
pub mod schema;
pub mod snapshot;
pub mod sql;
pub mod table;
pub mod txn;
pub mod value;
pub mod vfs;
pub mod wal;

pub use catalog::Database;
pub use engine::{with_commit_group, StorageEngine};
pub use error::{Error, Result};
pub use index::{Index, IndexKey, IndexKind};
pub use predicate::{CmpOp, Expr, Predicate};
pub use query::{select, select_with_plan, AccessPath, Plan};
pub use schema::{ColumnDef, TableSchema};
pub use snapshot::{load_from_path, read_database, save_to_path, write_database};
pub use sql::{execute as execute_sql, ResultSet};
pub use table::{Row, RowId, Table};
pub use txn::Txn;
pub use value::{DataType, Value};
pub use vfs::{CrashMode, DiskFaultPlan, FaultStats, FaultVfs, StdFs, Vfs, VfsFile, CRASH_MODES};
pub use wal::{DurableConfig, DurableEngine, RecoveryReport};

// Compile-time audit backing the "shared read access" contract above: the
// parallel filter shares `&Database` across pool workers, so the storage
// types must stay free of non-Sync interior mutability. Adding a
// `Cell`/`RefCell` anywhere inside would fail this assertion, not corrupt
// reads at runtime.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<Database>();
    assert_shareable::<Table>();
    assert_shareable::<Index>();
    assert_shareable::<TableSchema>();
    assert_shareable::<Value>();
    // the durable backend must stay shareable too: the parallel filter
    // reads `&Database` through it from pool workers
    assert_shareable::<DurableEngine>();
};
