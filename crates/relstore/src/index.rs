//! Secondary indexes: hash indexes for point lookups, B-tree indexes for
//! range scans. Both map a composite key (one or more column values) to the
//! set of live row ids carrying that key.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use crate::error::{Error, Result};
use crate::table::RowId;
use crate::value::Value;

/// The physical kind of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash map; supports equality probes only.
    Hash,
    /// Ordered map; supports equality and range probes.
    BTree,
}

/// Composite index key. `Value`'s total order makes this orderable.
pub type IndexKey = Vec<Value>;

/// A secondary index over one or more columns of a table.
#[derive(Debug, Clone)]
pub struct Index {
    name: String,
    /// Positions of the key columns in the table schema, in key order.
    key_columns: Vec<usize>,
    unique: bool,
    store: IndexStore,
}

#[derive(Debug, Clone)]
enum IndexStore {
    Hash(HashMap<IndexKey, Vec<RowId>>),
    BTree(BTreeMap<IndexKey, Vec<RowId>>),
}

impl Index {
    pub fn new(
        name: impl Into<String>,
        kind: IndexKind,
        key_columns: Vec<usize>,
        unique: bool,
    ) -> Self {
        let store = match kind {
            IndexKind::Hash => IndexStore::Hash(HashMap::new()),
            IndexKind::BTree => IndexStore::BTree(BTreeMap::new()),
        };
        Index {
            name: name.into(),
            key_columns,
            unique,
            store,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    pub fn kind(&self) -> IndexKind {
        match self.store {
            IndexStore::Hash(_) => IndexKind::Hash,
            IndexStore::BTree(_) => IndexKind::BTree,
        }
    }

    pub fn is_unique(&self) -> bool {
        self.unique
    }

    /// Extracts this index's key from a full table row.
    pub fn key_of(&self, row: &[Value]) -> IndexKey {
        self.key_columns.iter().map(|&i| row[i].clone()).collect()
    }

    /// Inserts a (key, row) entry. Fails on unique violation without mutating.
    pub fn insert(&mut self, row: &[Value], rid: RowId) -> Result<()> {
        let key = self.key_of(row);
        if self.unique {
            if let Some(existing) = self.get_bucket(&key) {
                if !existing.is_empty() {
                    return Err(Error::UniqueViolation {
                        index: self.name.clone(),
                        key: format!("{key:?}"),
                    });
                }
            }
        }
        match &mut self.store {
            IndexStore::Hash(m) => m.entry(key).or_default().push(rid),
            IndexStore::BTree(m) => m.entry(key).or_default().push(rid),
        }
        Ok(())
    }

    /// Removes a (key, row) entry; a no-op if the entry is absent.
    pub fn remove(&mut self, row: &[Value], rid: RowId) {
        let key = self.key_of(row);
        let bucket = match &mut self.store {
            IndexStore::Hash(m) => m.get_mut(&key),
            IndexStore::BTree(m) => m.get_mut(&key),
        };
        if let Some(bucket) = bucket {
            bucket.retain(|&r| r != rid);
            if bucket.is_empty() {
                match &mut self.store {
                    IndexStore::Hash(m) => {
                        m.remove(&key);
                    }
                    IndexStore::BTree(m) => {
                        m.remove(&key);
                    }
                }
            }
        }
    }

    fn get_bucket(&self, key: &IndexKey) -> Option<&Vec<RowId>> {
        match &self.store {
            IndexStore::Hash(m) => m.get(key),
            IndexStore::BTree(m) => m.get(key),
        }
    }

    /// Point probe: all row ids with exactly this key.
    pub fn probe(&self, key: &IndexKey) -> Vec<RowId> {
        self.get_bucket(key).cloned().unwrap_or_default()
    }

    /// Range probe over the index order. Only valid on B-tree indexes.
    ///
    /// Bounds apply to full composite keys; use [`Index::probe_prefix_range`]
    /// for a fixed key prefix with a ranged last column.
    pub fn probe_range(&self, lo: Bound<&IndexKey>, hi: Bound<&IndexKey>) -> Result<Vec<RowId>> {
        match &self.store {
            IndexStore::Hash(_) => Err(Error::TypeError(format!(
                "index '{}' is a hash index and cannot serve range probes",
                self.name
            ))),
            IndexStore::BTree(m) => {
                let mut out = Vec::new();
                for (_, rids) in m.range::<IndexKey, _>((lo, hi)) {
                    out.extend_from_slice(rids);
                }
                Ok(out)
            }
        }
    }

    /// Range probe where the first `prefix.len()` key columns are fixed and
    /// the next key column is constrained by `(lo, hi)` bounds.
    pub fn probe_prefix_range(
        &self,
        prefix: &[Value],
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Result<Vec<RowId>> {
        let mut lo_key: IndexKey = prefix.to_vec();
        let mut hi_key: IndexKey = prefix.to_vec();
        let lo_bound = match lo {
            Bound::Included(v) => {
                lo_key.push(v.clone());
                Bound::Included(&lo_key)
            }
            Bound::Excluded(v) => {
                lo_key.push(v.clone());
                Bound::Excluded(&lo_key)
            }
            Bound::Unbounded => {
                // Composite keys with this prefix sort >= the bare prefix.
                Bound::Included(&lo_key)
            }
        };
        let hi_bound = match hi {
            Bound::Included(v) => {
                hi_key.push(v.clone());
                Bound::Included(&hi_key)
            }
            Bound::Excluded(v) => {
                hi_key.push(v.clone());
                Bound::Excluded(&hi_key)
            }
            Bound::Unbounded => Bound::Unbounded,
        };
        match &self.store {
            IndexStore::Hash(_) => Err(Error::TypeError(format!(
                "index '{}' is a hash index and cannot serve range probes",
                self.name
            ))),
            IndexStore::BTree(m) => {
                let mut out = Vec::new();
                for (key, rids) in m.range::<IndexKey, _>((lo_bound, hi_bound)) {
                    // An unbounded hi still needs the prefix filter: the range
                    // otherwise runs to the end of the index.
                    if key.len() < prefix.len() || &key[..prefix.len()] != prefix {
                        break;
                    }
                    out.extend_from_slice(rids);
                }
                Ok(out)
            }
        }
    }

    /// Number of distinct keys currently in the index.
    pub fn distinct_keys(&self) -> usize {
        match &self.store {
            IndexStore::Hash(m) => m.len(),
            IndexStore::BTree(m) => m.len(),
        }
    }

    /// Drops all entries (used when truncating a table).
    pub fn clear(&mut self) {
        match &mut self.store {
            IndexStore::Hash(m) => m.clear(),
            IndexStore::BTree(m) => m.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn hash_index_point_probe() {
        let mut idx = Index::new("i", IndexKind::Hash, vec![0], false);
        idx.insert(&row(&[1, 10]), RowId(0)).unwrap();
        idx.insert(&row(&[1, 20]), RowId(1)).unwrap();
        idx.insert(&row(&[2, 30]), RowId(2)).unwrap();
        let mut hits = idx.probe(&vec![Value::Int(1)]);
        hits.sort();
        assert_eq!(hits, vec![RowId(0), RowId(1)]);
        assert!(idx.probe(&vec![Value::Int(9)]).is_empty());
    }

    #[test]
    fn unique_violation() {
        let mut idx = Index::new("u", IndexKind::Hash, vec![0], true);
        idx.insert(&row(&[1]), RowId(0)).unwrap();
        let err = idx.insert(&row(&[1]), RowId(1)).unwrap_err();
        assert!(matches!(err, Error::UniqueViolation { .. }));
        // after removing, the key can be reused
        idx.remove(&row(&[1]), RowId(0));
        idx.insert(&row(&[1]), RowId(2)).unwrap();
    }

    #[test]
    fn remove_is_exact() {
        let mut idx = Index::new("i", IndexKind::Hash, vec![0], false);
        idx.insert(&row(&[5]), RowId(0)).unwrap();
        idx.insert(&row(&[5]), RowId(1)).unwrap();
        idx.remove(&row(&[5]), RowId(0));
        assert_eq!(idx.probe(&vec![Value::Int(5)]), vec![RowId(1)]);
        // removing a non-member is a no-op
        idx.remove(&row(&[5]), RowId(42));
        assert_eq!(idx.probe(&vec![Value::Int(5)]), vec![RowId(1)]);
    }

    #[test]
    fn btree_range_probe() {
        let mut idx = Index::new("b", IndexKind::BTree, vec![0], false);
        for v in 0..10 {
            idx.insert(&row(&[v]), RowId(v as u64)).unwrap();
        }
        let key = |v: i64| vec![Value::Int(v)];
        let hits = idx
            .probe_range(Bound::Included(&key(3)), Bound::Excluded(&key(6)))
            .unwrap();
        assert_eq!(hits, vec![RowId(3), RowId(4), RowId(5)]);
    }

    #[test]
    fn prefix_range_probe() {
        // key = (class, value); range over value for a fixed class
        let mut idx = Index::new("b", IndexKind::BTree, vec![0, 1], false);
        let mk = |c: &str, v: i64| vec![Value::Str(c.into()), Value::Int(v)];
        idx.insert(&mk("A", 1), RowId(0)).unwrap();
        idx.insert(&mk("A", 5), RowId(1)).unwrap();
        idx.insert(&mk("A", 9), RowId(2)).unwrap();
        idx.insert(&mk("B", 5), RowId(3)).unwrap();
        let hits = idx
            .probe_prefix_range(
                &[Value::Str("A".into())],
                Bound::Excluded(&Value::Int(1)),
                Bound::Unbounded,
            )
            .unwrap();
        assert_eq!(hits, vec![RowId(1), RowId(2)]);
        let hits = idx
            .probe_prefix_range(
                &[Value::Str("A".into())],
                Bound::Unbounded,
                Bound::Included(&Value::Int(5)),
            )
            .unwrap();
        assert_eq!(hits, vec![RowId(0), RowId(1)]);
    }

    #[test]
    fn hash_index_rejects_range() {
        let idx = Index::new("i", IndexKind::Hash, vec![0], false);
        assert!(idx.probe_range(Bound::Unbounded, Bound::Unbounded).is_err());
    }

    #[test]
    fn clear_empties_index() {
        let mut idx = Index::new("i", IndexKind::Hash, vec![0], false);
        idx.insert(&row(&[1]), RowId(0)).unwrap();
        idx.clear();
        assert_eq!(idx.distinct_keys(), 0);
    }
}
