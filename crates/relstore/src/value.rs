//! Runtime values and data types.
//!
//! Values carry a total order across *all* variants so that they can serve as
//! keys of ordered (B-tree) indexes: `Null < Bool < Int/Float < Str`, with
//! integers and floats ordered numerically against each other. This mirrors
//! how SQL engines define an index collation over heterogeneous key spaces.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{Error, Result};

/// Logical column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    /// UTF-8 string. The MDV filter stores rule constants as strings and
    /// reconverts them when joining (paper §3.3.4), which `Value::coerce`
    /// supports.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
        };
        f.write_str(s)
    }
}

/// A runtime value stored in a table cell.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    /// Returns the data type of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the string slice if this is a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float if this is a `Float` (or widened `Int`) value.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Coerces this value to `target`, converting between numeric types and
    /// parsing strings into numbers (the "stored as strings, reconverted when
    /// joining" pattern from the paper).
    pub fn coerce(&self, target: DataType) -> Result<Value> {
        let fail = || {
            Err(Error::TypeError(format!(
                "cannot coerce {self} to {target}"
            )))
        };
        match (self, target) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Bool(b), DataType::Bool) => Ok(Value::Bool(*b)),
            (Value::Int(i), DataType::Int) => Ok(Value::Int(*i)),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Int(i), DataType::Str) => Ok(Value::Str(i.to_string())),
            (Value::Float(x), DataType::Float) => Ok(Value::Float(*x)),
            (Value::Float(x), DataType::Int) => {
                if x.fract() == 0.0 && *x >= i64::MIN as f64 && *x <= i64::MAX as f64 {
                    Ok(Value::Int(*x as i64))
                } else {
                    fail()
                }
            }
            (Value::Float(x), DataType::Str) => Ok(Value::Str(format_float(*x))),
            (Value::Str(s), DataType::Str) => Ok(Value::Str(s.clone())),
            (Value::Str(s), DataType::Int) => {
                s.trim().parse::<i64>().map(Value::Int).or_else(|_| fail())
            }
            (Value::Str(s), DataType::Float) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .or_else(|_| fail()),
            (Value::Str(s), DataType::Bool) => match s.trim() {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                _ => fail(),
            },
            (Value::Bool(_), _) | (Value::Int(_) | Value::Float(_), DataType::Bool) => fail(),
        }
    }

    /// SQL-style comparison: `Null` compares as unknown (returns `None`);
    /// numeric types compare numerically across `Int`/`Float`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality (`None` for incomparable / null operands).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Rank used for the total (index) ordering across variants.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

/// Formats a float the way the engine prints it (no trailing `.0` noise for
/// integral values would be ambiguous, so keep one decimal for those).
fn format_float(x: f64) -> String {
    if x.fract() == 0.0 && x.is_finite() {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used for index keys. Unlike [`Value::sql_cmp`], nulls are
    /// orderable (lowest) and cross-type comparisons fall back to type rank.
    fn cmp(&self, other: &Self) -> Ordering {
        let (ra, rb) = (self.type_rank(), other.type_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => unreachable!("same type rank implies comparable variants"),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash must agree with Eq: Int(2) == Float(2.0), so all numerics hash
        // through their f64 bit pattern (total_cmp-compatible normalization).
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Float(x) => x.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => f.write_str(&format_float(*x)),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn total_order_across_types() {
        let mut vals = vec![
            Value::Str("a".into()),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(1.5),
                Value::Int(3),
                Value::Str("a".into()),
            ]
        );
    }

    #[test]
    fn numeric_cross_type_equality_and_hash() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
        assert_ne!(Value::Int(2), Value::Float(2.5));
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
    }

    #[test]
    fn sql_cmp_cross_type_is_incomparable() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Str("1".into())), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn coerce_string_to_numeric() {
        assert_eq!(
            Value::Str("64".into()).coerce(DataType::Int).unwrap(),
            Value::Int(64)
        );
        assert_eq!(
            Value::Str(" 2.5 ".into()).coerce(DataType::Float).unwrap(),
            Value::Float(2.5)
        );
        assert!(Value::Str("abc".into()).coerce(DataType::Int).is_err());
    }

    #[test]
    fn coerce_numeric_to_string_roundtrip() {
        let v = Value::Int(500).coerce(DataType::Str).unwrap();
        assert_eq!(v, Value::Str("500".into()));
        assert_eq!(v.coerce(DataType::Int).unwrap(), Value::Int(500));
    }

    #[test]
    fn coerce_float_to_int_only_when_integral() {
        assert_eq!(
            Value::Float(4.0).coerce(DataType::Int).unwrap(),
            Value::Int(4)
        );
        assert!(Value::Float(4.5).coerce(DataType::Int).is_err());
    }

    #[test]
    fn null_coerces_to_anything() {
        assert_eq!(Value::Null.coerce(DataType::Str).unwrap(), Value::Null);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(1.25f64), Value::Float(1.25));
    }
}
