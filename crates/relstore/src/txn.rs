//! Undo-log transactions over a [`Database`].
//!
//! A [`Txn`] borrows the database mutably and records the inverse of every
//! mutation it performs. `commit` discards the log; `rollback` (explicit or
//! on drop) replays it in reverse. MDV uses this to make a document
//! registration — base-table writes plus filter-table writes — atomic.

use crate::catalog::Database;
use crate::error::Result;
use crate::table::{Row, RowId};

enum UndoOp {
    /// Undo an insert by deleting the row.
    Insert { table: String, id: RowId },
    /// Undo a delete by restoring the row under its original id.
    Delete { table: String, id: RowId, row: Row },
    /// Undo an update by writing the old image back.
    Update { table: String, id: RowId, old: Row },
}

/// An open transaction. Dropped without [`Txn::commit`], it rolls back.
pub struct Txn<'a> {
    db: &'a mut Database,
    log: Vec<UndoOp>,
    committed: bool,
}

impl<'a> Txn<'a> {
    pub fn begin(db: &'a mut Database) -> Self {
        Txn {
            db,
            log: Vec::new(),
            committed: false,
        }
    }

    /// Read-only access to the underlying database.
    pub fn db(&self) -> &Database {
        self.db
    }

    pub fn insert(&mut self, table: &str, row: Row) -> Result<RowId> {
        let id = self.db.insert(table, row)?;
        self.log.push(UndoOp::Insert {
            table: table.to_owned(),
            id,
        });
        Ok(id)
    }

    pub fn insert_batch(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Row>,
    ) -> Result<Vec<RowId>> {
        rows.into_iter().map(|r| self.insert(table, r)).collect()
    }

    pub fn delete(&mut self, table: &str, id: RowId) -> Result<Row> {
        let row = self.db.delete(table, id)?;
        self.log.push(UndoOp::Delete {
            table: table.to_owned(),
            id,
            row: row.clone(),
        });
        Ok(row)
    }

    pub fn update(&mut self, table: &str, id: RowId, row: Row) -> Result<Row> {
        let old = self.db.update(table, id, row)?;
        self.log.push(UndoOp::Update {
            table: table.to_owned(),
            id,
            old: old.clone(),
        });
        Ok(old)
    }

    /// Makes all changes permanent.
    pub fn commit(mut self) {
        self.committed = true;
        self.log.clear();
    }

    /// Reverts all changes made through this transaction.
    pub fn rollback(mut self) {
        self.apply_undo();
        self.committed = true; // nothing left for Drop
    }

    fn apply_undo(&mut self) {
        while let Some(op) = self.log.pop() {
            // Undo of a recorded op cannot fail unless the caller bypassed
            // the transaction and mutated the database directly, which
            // violates the API contract; panicking surfaces that bug.
            match op {
                UndoOp::Insert { table, id } => {
                    self.db.delete(&table, id).expect("undo insert");
                }
                UndoOp::Delete { table, id, row } => {
                    self.db
                        .table_mut(&table)
                        .expect("undo delete: table")
                        .restore(id, row)
                        .expect("undo delete: restore");
                }
                UndoOp::Update { table, id, old } => {
                    self.db.update(&table, id, old).expect("undo update");
                }
            }
        }
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        if !self.committed {
            self.apply_undo();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("k", DataType::Int),
                    ColumnDef::new("v", DataType::Str),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn row(k: i64, v: &str) -> Row {
        vec![Value::Int(k), Value::Str(v.into())]
    }

    #[test]
    fn commit_keeps_changes() {
        let mut db = db();
        let id;
        {
            let mut txn = Txn::begin(&mut db);
            id = txn.insert("t", row(1, "a")).unwrap();
            txn.commit();
        }
        assert!(db.get("t", id).is_ok());
    }

    #[test]
    fn rollback_reverts_insert() {
        let mut db = db();
        let mut txn = Txn::begin(&mut db);
        let id = txn.insert("t", row(1, "a")).unwrap();
        txn.rollback();
        assert!(db.get("t", id).is_err());
        assert_eq!(db.table("t").unwrap().len(), 0);
    }

    #[test]
    fn rollback_reverts_delete_with_same_id() {
        let mut db = db();
        let id = db.insert("t", row(1, "a")).unwrap();
        {
            let mut txn = Txn::begin(&mut db);
            txn.delete("t", id).unwrap();
            txn.rollback();
        }
        assert_eq!(db.get("t", id).unwrap()[1], Value::Str("a".into()));
    }

    #[test]
    fn rollback_reverts_update() {
        let mut db = db();
        let id = db.insert("t", row(1, "a")).unwrap();
        {
            let mut txn = Txn::begin(&mut db);
            txn.update("t", id, row(2, "b")).unwrap();
            txn.rollback();
        }
        assert_eq!(db.get("t", id).unwrap(), &row(1, "a"));
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let mut db = db();
        {
            let mut txn = Txn::begin(&mut db);
            txn.insert("t", row(1, "a")).unwrap();
            // dropped here
        }
        assert_eq!(db.table("t").unwrap().len(), 0);
    }

    #[test]
    fn mixed_ops_roll_back_in_reverse_order() {
        let mut db = db();
        let keep = db.insert("t", row(0, "keep")).unwrap();
        {
            let mut txn = Txn::begin(&mut db);
            let a = txn.insert("t", row(1, "a")).unwrap();
            txn.update("t", a, row(1, "a2")).unwrap();
            txn.update("t", keep, row(0, "changed")).unwrap();
            txn.delete("t", keep).unwrap();
            txn.rollback();
        }
        assert_eq!(db.table("t").unwrap().len(), 1);
        assert_eq!(db.get("t", keep).unwrap(), &row(0, "keep"));
    }

    #[test]
    fn restored_row_preserves_index_entries() {
        let mut db = db();
        db.create_index("t", "by_v", crate::index::IndexKind::Hash, &["v"], false)
            .unwrap();
        let id = db.insert("t", row(1, "a")).unwrap();
        {
            let mut txn = Txn::begin(&mut db);
            txn.delete("t", id).unwrap();
            txn.rollback();
        }
        let idx = db.table("t").unwrap().index("by_v").unwrap();
        assert_eq!(idx.probe(&vec![Value::Str("a".into())]), vec![id]);
    }
}
