//! Error type shared by all relstore operations.

use std::fmt;

/// Result alias for relstore operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the storage engine.
///
/// The engine is embedded, so errors are programming or schema errors rather
/// than I/O failures; they are all recoverable and carry enough context to be
/// actionable in a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// No table with this name exists in the catalog.
    UnknownTable(String),
    /// An index with this name already exists on the table.
    IndexExists(String),
    /// No index with this name exists on the table.
    UnknownIndex(String),
    /// A column name did not resolve against the table schema.
    UnknownColumn { table: String, column: String },
    /// A row's arity or a value's type did not match the schema.
    SchemaMismatch { table: String, detail: String },
    /// A unique-index constraint was violated on insert or update.
    UniqueViolation { index: String, key: String },
    /// The referenced row id is not live in the table.
    InvalidRowId { table: String, row: u64 },
    /// A value could not be coerced to the requested type.
    TypeError(String),
    /// A transaction-state violation (e.g. commit without begin).
    TransactionState(String),
    /// An I/O failure in a durable backend (WAL, snapshot).
    Io(String),
    /// Detected corruption in durable state: a WAL frame or snapshot whose
    /// checksum does not match, or data that fails to parse mid-log. Never
    /// applied silently — recovery either falls back to an older epoch or
    /// surfaces this.
    Corrupt(String),
    /// A write persisted only a prefix of its bytes (short write). The
    /// engine wedges rather than retrying, since a retry would duplicate
    /// the partial frame in the log.
    TornWrite(String),
    /// The engine wedged after a failed durability operation; all further
    /// mutations are refused until the caller recovers by reopening.
    Wedged(String),
}

impl Error {
    /// Classifies an `std::io::Error` from a durable backend into the
    /// matching typed variant.
    pub fn from_io(context: &str, e: std::io::Error) -> Error {
        match e.kind() {
            std::io::ErrorKind::WriteZero => Error::TornWrite(format!("{context}: {e}")),
            std::io::ErrorKind::InvalidData => Error::Corrupt(format!("{context}: {e}")),
            _ => Error::Io(format!("{context}: {e}")),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TableExists(name) => write!(f, "table '{name}' already exists"),
            Error::UnknownTable(name) => write!(f, "unknown table '{name}'"),
            Error::IndexExists(name) => write!(f, "index '{name}' already exists"),
            Error::UnknownIndex(name) => write!(f, "unknown index '{name}'"),
            Error::UnknownColumn { table, column } => {
                write!(f, "unknown column '{column}' in table '{table}'")
            }
            Error::SchemaMismatch { table, detail } => {
                write!(f, "schema mismatch for table '{table}': {detail}")
            }
            Error::UniqueViolation { index, key } => {
                write!(
                    f,
                    "unique constraint violated on index '{index}' for key {key}"
                )
            }
            Error::InvalidRowId { table, row } => {
                write!(f, "row id {row} is not live in table '{table}'")
            }
            Error::TypeError(msg) => write!(f, "type error: {msg}"),
            Error::TransactionState(msg) => write!(f, "transaction error: {msg}"),
            Error::Io(msg) => write!(f, "storage i/o error: {msg}"),
            Error::Corrupt(msg) => write!(f, "storage corruption detected: {msg}"),
            Error::TornWrite(msg) => write!(f, "torn write: {msg}"),
            Error::Wedged(msg) => write!(f, "storage engine wedged: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::UnknownColumn {
            table: "t".into(),
            column: "c".into(),
        };
        assert_eq!(e.to_string(), "unknown column 'c' in table 't'");
        let e = Error::UniqueViolation {
            index: "pk".into(),
            key: "[Int(1)]".into(),
        };
        assert!(e.to_string().contains("pk"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
