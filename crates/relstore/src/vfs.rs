//! The virtual filesystem under the durable backend (DESIGN.md §12).
//!
//! [`crate::wal::DurableEngine`] talks to disk exclusively through the
//! [`Vfs`] trait — open/read/write/sync/rename/remove/read_dir — so the
//! exact same recovery code runs against two backends:
//!
//! * [`StdFs`]: a zero-cost passthrough to `std::fs` (the default; the
//!   on-disk layout is byte-identical to the pre-Vfs engine),
//! * [`FaultVfs`]: a deterministic simulated disk that injects I/O faults
//!   from one seeded xoshiro stream (read/write errors, short writes,
//!   failed syncs, silent byte corruption) and records every durability
//!   boundary so a crash-point explorer can replay recovery from the disk
//!   image at *each* write/sync/rename of a schedule.
//!
//! ## The crash model
//!
//! `FaultVfs` keeps two byte strings per file: `pending` (what the OS page
//! cache would hold; all reads see it) and `durable` (what survived the
//! last successful sync). A crash — [`FaultVfs::crash`] or a crash image
//! taken at a boundary — discards `pending` in one of three ways:
//!
//! * **durable-only**: strictly what was synced (a power cut with an
//!   honest disk),
//! * **full-cache**: everything written (the cache happened to flush),
//! * **torn-tail**: synced bytes plus a *prefix* of the unsynced suffix
//!   (the cache flushed part of an append before the cut).
//!
//! Committed (synced) writes must survive all three; recovery must treat
//! anything beyond the durable prefix as untrusted. Renames are modeled as
//! atomic metadata operations (the engine syncs file contents before
//! renaming; the explorer takes boundaries on both sides of the rename, so
//! a crash between content sync and publish is still explored).

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use mdv_runtime::rng::Prng;

/// An open, append-only file handle of a [`Vfs`] backend. The WAL is the
/// only long-lived handle the engine holds, and it only ever appends,
/// syncs, and (at recovery) truncates a torn tail.
pub trait VfsFile: Send + Sync {
    /// Appends `data` at the end of the file. A short (torn) write
    /// surfaces as [`io::ErrorKind::WriteZero`] after persisting a prefix.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;

    /// Makes everything appended so far durable (`fsync`). On error the
    /// data must be assumed *not* durable.
    fn sync(&mut self) -> io::Result<()>;

    /// Truncates the file to `len` bytes (recovery cutting a torn tail).
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// The filesystem surface the durable engine needs. Implementations are
/// cheap-clone handles: every filter shard's engine of one node shares the
/// same underlying (real or simulated) disk.
pub trait Vfs {
    type File: VfsFile;

    /// Creates `dir` and its parents (idempotent).
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Opens `path` for appending, creating it if missing; `truncate`
    /// empties it first.
    fn open_append(&self, path: &Path, truncate: bool) -> io::Result<Self::File>;

    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates or replaces `path` with `data` (not yet durable).
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Syncs a closed file's content by path (`fsync` before a publishing
    /// rename).
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// The file names (not paths) inside `dir`.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<String>>;
}

// ---- StdFs ----------------------------------------------------------------

/// The real filesystem: a zero-sized passthrough to `std::fs`. The default
/// backend of [`crate::wal::DurableEngine`]; its on-disk layout is pinned
/// byte-identical to the pre-Vfs engine by `tests/storage_torture.rs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdFs;

impl VfsFile for File {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.set_len(len)?;
        self.seek(SeekFrom::Start(len)).map(|_| ())
    }
}

impl Vfs for StdFs {
    type File = File;

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn open_append(&self, path: &Path, truncate: bool) -> io::Result<File> {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(truncate)
            .open(path)?;
        f.seek(SeekFrom::End(0))?;
        Ok(f)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_owned());
            }
        }
        Ok(names)
    }
}

// ---- FaultVfs -------------------------------------------------------------

/// Per-operation fault probabilities of a [`FaultVfs`], all drawn from one
/// seeded xoshiro stream so a whole torture schedule is a pure function of
/// `(DiskFaultPlan, seed)`. `Default` injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskFaultPlan {
    /// Probability that a read fails with an injected I/O error.
    pub read_err: f64,
    /// Probability that a write/append fails before persisting anything.
    pub write_err: f64,
    /// Probability that a write/append persists only a prefix and fails
    /// with [`io::ErrorKind::WriteZero`] (a torn write).
    pub short_write: f64,
    /// Probability that a sync fails (the data must not be trusted
    /// durable — the engine wedges rather than acks).
    pub sync_err: f64,
    /// Probability that a write/append *silently* flips one byte of the
    /// persisted data (bit rot; caught later by frame and snapshot
    /// checksums, never parsed as garbage).
    pub corrupt: f64,
}

/// Counters of the faults a [`FaultVfs`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub read_errors: u64,
    pub write_errors: u64,
    pub short_writes: u64,
    pub sync_errors: u64,
    pub corruptions: u64,
}

impl FaultStats {
    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.read_errors
            + self.write_errors
            + self.short_writes
            + self.sync_errors
            + self.corruptions
    }
}

/// How a [`FaultVfs::crash`] collapses unsynced state (see the module docs
/// for the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Only synced bytes survive.
    DurableOnly,
    /// The whole cache happened to reach disk.
    FullCache,
    /// Synced bytes plus half of each file's unsynced appended suffix.
    TornTail,
}

/// All crash variants, in a fixed exploration order.
pub const CRASH_MODES: [CrashMode; 3] = [
    CrashMode::DurableOnly,
    CrashMode::FullCache,
    CrashMode::TornTail,
];

#[derive(Debug, Clone, Default)]
struct FileState {
    durable: Vec<u8>,
    pending: Vec<u8>,
}

impl FileState {
    /// The bytes surviving a crash under `mode`.
    fn surviving(&self, mode: CrashMode) -> Vec<u8> {
        match mode {
            CrashMode::DurableOnly => self.durable.clone(),
            CrashMode::FullCache => self.pending.clone(),
            CrashMode::TornTail => {
                // torn tails only make sense for append-extended files; a
                // rewritten (non-extending) file falls back to durable
                if self.pending.len() > self.durable.len()
                    && self.pending.starts_with(&self.durable)
                {
                    let extra = self.pending.len() - self.durable.len();
                    self.pending[..self.durable.len() + extra.div_ceil(2)].to_vec()
                } else {
                    self.durable.clone()
                }
            }
        }
    }
}

/// One recorded durability boundary: the simulated disk right after a
/// write/sync/rename/remove/truncate completed (or tore).
#[derive(Debug, Clone)]
struct Boundary {
    op: String,
    marker: u64,
    files: BTreeMap<PathBuf, FileState>,
    dirs: Vec<PathBuf>,
}

#[derive(Debug)]
struct Disk {
    files: BTreeMap<PathBuf, FileState>,
    dirs: Vec<PathBuf>,
    rng: Prng,
    plan: DiskFaultPlan,
    armed: bool,
    recording: bool,
    marker: u64,
    boundaries: Vec<Boundary>,
    stats: FaultStats,
}

impl Disk {
    /// One probability draw from the shared stream. Draws only when the
    /// probability is positive, so disabling a fault class does not shift
    /// the stream consumed by the others across plan variations.
    fn hit(&mut self, p: f64) -> bool {
        self.armed && p > 0.0 && self.rng.gen_f64() < p
    }

    fn record(&mut self, op: String) {
        if self.recording {
            self.boundaries.push(Boundary {
                op,
                marker: self.marker,
                files: self.files.clone(),
                dirs: self.dirs.clone(),
            });
        }
    }

    fn dir_exists(&self, dir: &Path) -> bool {
        self.dirs.iter().any(|d| d == dir)
    }
}

fn injected(kind: io::ErrorKind, what: &str, path: &Path) -> io::Error {
    io::Error::new(
        kind,
        format!("injected {what} fault on '{}'", path.display()),
    )
}

/// The deterministic simulated disk: a fault-injecting, boundary-recording
/// [`Vfs`]. Clones share one disk (and one fault stream), which is how the
/// per-shard engines of one node see a single failure domain.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    disk: Arc<Mutex<Disk>>,
}

impl FaultVfs {
    /// A clean simulated disk: no faults armed, nothing recorded.
    pub fn new(seed: u64) -> Self {
        Self::with_plan(seed, DiskFaultPlan::default())
    }

    /// A simulated disk injecting faults per `plan` (armed immediately).
    pub fn with_plan(seed: u64, plan: DiskFaultPlan) -> Self {
        FaultVfs {
            disk: Arc::new(Mutex::new(Disk {
                files: BTreeMap::new(),
                dirs: Vec::new(),
                rng: Prng::seed_from_u64(seed),
                plan,
                armed: true,
                recording: false,
                marker: 0,
                boundaries: Vec::new(),
                stats: FaultStats::default(),
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Disk> {
        self.disk.lock().expect("fault disk lock poisoned")
    }

    /// Replaces the fault plan (takes effect on the next operation).
    pub fn set_plan(&self, plan: DiskFaultPlan) {
        self.lock().plan = plan;
    }

    /// Arms or disarms fault injection without touching the plan — e.g.
    /// disarm for a setup phase, arm for the torture window.
    pub fn arm(&self, on: bool) {
        self.lock().armed = on;
    }

    /// Starts or stops recording durability boundaries.
    pub fn set_recording(&self, on: bool) {
        self.lock().recording = on;
    }

    /// Annotates subsequent boundaries with `marker` (tests use it to tag
    /// each boundary with the count of commits acked so far, which is what
    /// the committed-writes-survive oracle needs at replay time).
    pub fn set_marker(&self, marker: u64) {
        self.lock().marker = marker;
    }

    /// How many durability boundaries have been recorded.
    pub fn boundary_count(&self) -> usize {
        self.lock().boundaries.len()
    }

    /// The recorded operation label and marker of boundary `i`.
    pub fn boundary_info(&self, i: usize) -> (String, u64) {
        let disk = self.lock();
        let b = &disk.boundaries[i];
        (b.op.clone(), b.marker)
    }

    /// The crash image of boundary `i` under `mode`, as a fresh, clean
    /// `FaultVfs` (no faults, no recording) ready to be recovered from.
    pub fn crash_image(&self, i: usize, mode: CrashMode) -> FaultVfs {
        let disk = self.lock();
        let b = &disk.boundaries[i];
        let files = b
            .files
            .iter()
            .map(|(path, fs)| {
                let bytes = fs.surviving(mode);
                (
                    path.clone(),
                    FileState {
                        durable: bytes.clone(),
                        pending: bytes,
                    },
                )
            })
            .collect();
        FaultVfs {
            disk: Arc::new(Mutex::new(Disk {
                files,
                dirs: b.dirs.clone(),
                rng: Prng::seed_from_u64(0),
                plan: DiskFaultPlan::default(),
                armed: false,
                recording: false,
                marker: 0,
                boundaries: Vec::new(),
                stats: FaultStats::default(),
            })),
        }
    }

    /// Crashes the live disk in place: unsynced state collapses per `mode`
    /// and every surviving byte becomes durable. Recorded boundaries and
    /// fault counters survive (they describe the pre-crash run).
    pub fn crash(&self, mode: CrashMode) {
        let mut disk = self.lock();
        for fs in disk.files.values_mut() {
            let bytes = fs.surviving(mode);
            fs.durable = bytes.clone();
            fs.pending = bytes;
        }
    }

    /// The faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.lock().stats
    }

    /// Every file's current (cache-visible) content, for byte-level
    /// comparisons against another backend.
    pub fn dump(&self) -> BTreeMap<PathBuf, Vec<u8>> {
        self.lock()
            .files
            .iter()
            .map(|(p, fs)| (p.clone(), fs.pending.clone()))
            .collect()
    }

    /// Sum of all unsynced (pending-beyond-durable) bytes — zero on a
    /// fully synced disk.
    pub fn unsynced_bytes(&self) -> usize {
        self.lock()
            .files
            .values()
            .map(|fs| fs.pending.len().saturating_sub(fs.durable.len()))
            .sum()
    }
}

/// An open handle into a [`FaultVfs`] file.
#[derive(Debug)]
pub struct FaultFile {
    disk: Arc<Mutex<Disk>>,
    path: PathBuf,
}

impl FaultFile {
    fn lock(&self) -> std::sync::MutexGuard<'_, Disk> {
        self.disk.lock().expect("fault disk lock poisoned")
    }
}

/// Appends `data` to `path` on the locked disk, with write-error, short-
/// write, and silent-corruption faults; shared by handle appends and
/// whole-file writes (which first truncate).
fn append_faulty(disk: &mut Disk, path: &Path, data: &[u8], op: &str) -> io::Result<()> {
    let p_write = disk.plan.write_err;
    if disk.hit(p_write) {
        disk.stats.write_errors += 1;
        return Err(injected(io::ErrorKind::Other, "write", path));
    }
    let mut payload = data.to_vec();
    let p_corrupt = disk.plan.corrupt;
    if !payload.is_empty() && disk.hit(p_corrupt) {
        let at = (disk.rng.next_u64() as usize) % payload.len();
        payload[at] ^= 1 << (disk.rng.next_u64() % 8);
        disk.stats.corruptions += 1;
    }
    let p_short = disk.plan.short_write;
    let short = if payload.len() > 1 && disk.hit(p_short) {
        Some((disk.rng.next_u64() as usize) % payload.len())
    } else {
        None
    };
    let file = disk.files.entry(path.to_path_buf()).or_default();
    match short {
        Some(n) => {
            file.pending.extend_from_slice(&payload[..n]);
            disk.stats.short_writes += 1;
            disk.record(format!(
                "{op} {} ({n}/{}B torn)",
                path.display(),
                payload.len()
            ));
            Err(injected(io::ErrorKind::WriteZero, "short-write", path))
        }
        None => {
            file.pending.extend_from_slice(&payload);
            disk.record(format!("{op} {} ({}B)", path.display(), payload.len()));
            Ok(())
        }
    }
}

fn sync_faulty(disk: &mut Disk, path: &Path) -> io::Result<()> {
    let p_sync = disk.plan.sync_err;
    if disk.hit(p_sync) {
        disk.stats.sync_errors += 1;
        return Err(injected(io::ErrorKind::Other, "sync", path));
    }
    let file = disk
        .files
        .get_mut(path)
        .ok_or_else(|| injected(io::ErrorKind::NotFound, "sync-missing", path))?;
    file.durable = file.pending.clone();
    disk.record(format!("sync {}", path.display()));
    Ok(())
}

impl VfsFile for FaultFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        let path = self.path.clone();
        append_faulty(&mut self.lock(), &path, data, "append")
    }

    fn sync(&mut self) -> io::Result<()> {
        let path = self.path.clone();
        sync_faulty(&mut self.lock(), &path)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let mut disk = self.lock();
        let file = disk
            .files
            .get_mut(&self.path)
            .ok_or_else(|| injected(io::ErrorKind::NotFound, "truncate-missing", &self.path))?;
        file.pending.truncate(len as usize);
        let path = self.path.clone();
        disk.record(format!("truncate {} to {len}B", path.display()));
        Ok(())
    }
}

impl Vfs for FaultVfs {
    type File = FaultFile;

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut disk = self.lock();
        if !disk.dir_exists(dir) {
            disk.dirs.push(dir.to_path_buf());
        }
        Ok(())
    }

    fn open_append(&self, path: &Path, truncate: bool) -> io::Result<FaultFile> {
        let mut disk = self.lock();
        let file = disk.files.entry(path.to_path_buf()).or_default();
        if truncate {
            file.pending.clear();
        }
        Ok(FaultFile {
            disk: Arc::clone(&self.disk),
            path: path.to_path_buf(),
        })
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut disk = self.lock();
        let p_read = disk.plan.read_err;
        if disk.hit(p_read) {
            disk.stats.read_errors += 1;
            return Err(injected(io::ErrorKind::Other, "read", path));
        }
        disk.files
            .get(path)
            .map(|fs| fs.pending.clone())
            .ok_or_else(|| injected(io::ErrorKind::NotFound, "read-missing", path))
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut disk = self.lock();
        // a rewrite empties the cache view first; durable content (what a
        // crash reverts to) only changes at the next sync
        disk.files
            .entry(path.to_path_buf())
            .or_default()
            .pending
            .clear();
        append_faulty(&mut disk, path, data, "write")
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        sync_faulty(&mut self.lock(), path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut disk = self.lock();
        let file = disk
            .files
            .remove(from)
            .ok_or_else(|| injected(io::ErrorKind::NotFound, "rename-missing", from))?;
        disk.files.insert(to.to_path_buf(), file);
        disk.record(format!("rename {} -> {}", from.display(), to.display()));
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut disk = self.lock();
        disk.files
            .remove(path)
            .ok_or_else(|| injected(io::ErrorKind::NotFound, "remove-missing", path))?;
        disk.record(format!("remove {}", path.display()));
        Ok(())
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let disk = self.lock();
        if !disk.dir_exists(dir) {
            return Err(injected(io::ErrorKind::NotFound, "read-dir-missing", dir));
        }
        Ok(disk
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(String::from))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn pending_is_visible_durable_survives_crash() {
        let vfs = FaultVfs::new(1);
        vfs.create_dir_all(&p("/d")).unwrap();
        let mut f = vfs.open_append(&p("/d/wal"), true).unwrap();
        f.append(b"synced").unwrap();
        f.sync().unwrap();
        f.append(b"+lost").unwrap();
        assert_eq!(vfs.read(&p("/d/wal")).unwrap(), b"synced+lost");
        assert_eq!(vfs.unsynced_bytes(), 5);
        vfs.crash(CrashMode::DurableOnly);
        assert_eq!(vfs.read(&p("/d/wal")).unwrap(), b"synced");
        assert_eq!(vfs.unsynced_bytes(), 0);
    }

    #[test]
    fn torn_tail_crash_keeps_a_prefix_of_the_unsynced_suffix() {
        let vfs = FaultVfs::new(1);
        let mut f = vfs.open_append(&p("/wal"), true).unwrap();
        f.append(b"AB").unwrap();
        f.sync().unwrap();
        f.append(b"cdef").unwrap();
        vfs.crash(CrashMode::TornTail);
        assert_eq!(vfs.read(&p("/wal")).unwrap(), b"ABcd");
    }

    #[test]
    fn boundaries_record_ops_markers_and_images() {
        let vfs = FaultVfs::new(1);
        vfs.set_recording(true);
        let mut f = vfs.open_append(&p("/wal"), true).unwrap();
        f.append(b"one").unwrap();
        f.sync().unwrap();
        vfs.set_marker(1);
        f.append(b"two").unwrap();
        assert_eq!(vfs.boundary_count(), 3);
        assert_eq!(vfs.boundary_info(0).1, 0);
        assert_eq!(vfs.boundary_info(2).1, 1);
        // at boundary 1 (the sync), "one" is durable
        let img = vfs.crash_image(1, CrashMode::DurableOnly);
        assert_eq!(img.read(&p("/wal")).unwrap(), b"one");
        // at boundary 2 (unsynced append), durable-only still sees "one",
        // full-cache sees both
        assert_eq!(
            vfs.crash_image(2, CrashMode::DurableOnly)
                .read(&p("/wal"))
                .unwrap(),
            b"one"
        );
        assert_eq!(
            vfs.crash_image(2, CrashMode::FullCache)
                .read(&p("/wal"))
                .unwrap(),
            b"onetwo"
        );
    }

    #[test]
    fn rename_is_atomic_and_rewrite_keeps_durable_until_sync() {
        let vfs = FaultVfs::new(7);
        vfs.write(&p("/tmp1"), b"new-snapshot").unwrap();
        vfs.sync_file(&p("/tmp1")).unwrap();
        vfs.rename(&p("/tmp1"), &p("/snapshot-1")).unwrap();
        assert!(vfs.read(&p("/tmp1")).is_err());
        assert_eq!(vfs.read(&p("/snapshot-1")).unwrap(), b"new-snapshot");
        // rewrite without sync: crash reverts to the synced content
        vfs.write(&p("/snapshot-1"), b"overwrite").unwrap();
        vfs.crash(CrashMode::DurableOnly);
        assert_eq!(vfs.read(&p("/snapshot-1")).unwrap(), b"new-snapshot");
    }

    #[test]
    fn injected_faults_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let vfs = FaultVfs::with_plan(
                seed,
                DiskFaultPlan {
                    write_err: 0.3,
                    short_write: 0.3,
                    sync_err: 0.3,
                    corrupt: 0.2,
                    ..DiskFaultPlan::default()
                },
            );
            let mut f = vfs.open_append(&p("/wal"), true).unwrap();
            let mut outcomes = Vec::new();
            for i in 0..50u8 {
                outcomes.push(f.append(&[i; 8]).is_ok());
                outcomes.push(f.sync().is_ok());
            }
            (outcomes, vfs.stats(), vfs.dump())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1, "different seeds, same faults");
        let stats = run(42).1;
        assert!(stats.total() > 0, "plan never fired: {stats:?}");
    }

    #[test]
    fn read_dir_lists_only_direct_children() {
        let vfs = FaultVfs::new(1);
        vfs.create_dir_all(&p("/a")).unwrap();
        vfs.write(&p("/a/x"), b"1").unwrap();
        vfs.write(&p("/a/y"), b"2").unwrap();
        vfs.write(&p("/b"), b"3").unwrap();
        let mut names = vfs.read_dir(&p("/a")).unwrap();
        names.sort();
        assert_eq!(names, ["x", "y"]);
        assert!(vfs.read_dir(&p("/missing")).is_err());
    }

    #[test]
    fn stdfs_and_faultvfs_agree_byte_for_byte_without_faults() {
        let dir = std::env::temp_dir().join(format!("mdv-vfs-eq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let real = StdFs;
        let sim = FaultVfs::new(9);
        for vfs_run in [0, 1] {
            let wal = dir.join("wal-0");
            macro_rules! both {
                ($m:ident ( $($a:expr),* )) => {
                    if vfs_run == 0 { real.$m($($a),*).map(|_| ()).unwrap() }
                    else { sim.$m($($a),*).map(|_| ()).unwrap() }
                };
            }
            both!(create_dir_all(&dir));
            both!(write(&wal, b""));
            both!(sync_file(&wal));
            both!(write(&dir.join("snap.tmp"), b"snapshot body\n"));
            both!(sync_file(&dir.join("snap.tmp")));
            both!(rename(&dir.join("snap.tmp"), &dir.join("snapshot-0")));
        }
        let mut f_real = real.open_append(&dir.join("wal-0"), false).unwrap();
        let mut f_sim = sim.open_append(&dir.join("wal-0"), false).unwrap();
        for f in [&mut f_real as &mut dyn VfsFile, &mut f_sim] {
            f.append(b"frame-1").unwrap();
            f.sync().unwrap();
            f.append(b"frame-2").unwrap();
            f.truncate(7).unwrap();
        }
        for name in ["wal-0", "snapshot-0"] {
            assert_eq!(
                real.read(&dir.join(name)).unwrap(),
                sim.read(&dir.join(name)).unwrap(),
                "{name} diverged between StdFs and FaultVfs"
            );
        }
        let mut real_names = real.read_dir(&dir).unwrap();
        let mut sim_names = sim.read_dir(&dir).unwrap();
        real_names.sort();
        sim_names.sort();
        assert_eq!(real_names, sim_names);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
