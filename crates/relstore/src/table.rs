//! Heap tables: slotted row storage with secondary index maintenance.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::index::{Index, IndexKind};
use crate::schema::TableSchema;
use crate::value::Value;

/// Stable identifier of a row within its table.
///
/// Row ids are never reused while the row is live; deleting a row frees its
/// slot for reuse by a *new* id, so dangling ids are detectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

/// A materialized row.
pub type Row = Vec<Value>;

#[derive(Debug, Clone)]
struct Slot {
    id: RowId,
    row: Row,
}

/// An in-memory heap table with optional secondary indexes.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    /// Live slots; `None` marks a hole left by a delete.
    slots: Vec<Option<Slot>>,
    /// Maps live row ids to their slot position.
    by_id: HashMap<RowId, usize>,
    /// Slot positions available for reuse.
    free: Vec<usize>,
    next_id: u64,
    indexes: Vec<Index>,
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            slots: Vec::new(),
            by_id: HashMap::new(),
            free: Vec::new(),
            next_id: 0,
            indexes: Vec::new(),
        }
    }

    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Creates a secondary index over the named columns and backfills it from
    /// existing rows.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        kind: IndexKind,
        columns: &[&str],
        unique: bool,
    ) -> Result<()> {
        let name = name.into();
        if self.indexes.iter().any(|i| i.name() == name) {
            return Err(Error::IndexExists(name));
        }
        let cols = self.schema.column_indices(columns)?;
        let mut idx = Index::new(name, kind, cols, unique);
        for slot in self.slots.iter().flatten() {
            idx.insert(&slot.row, slot.id)?;
        }
        self.indexes.push(idx);
        Ok(())
    }

    pub fn index(&self, name: &str) -> Result<&Index> {
        self.indexes
            .iter()
            .find(|i| i.name() == name)
            .ok_or_else(|| Error::UnknownIndex(name.to_owned()))
    }

    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Finds an index whose key is exactly the given column positions
    /// (used by the planner for access-path selection).
    pub fn index_on(&self, columns: &[usize], kind: Option<IndexKind>) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|i| i.key_columns() == columns && kind.is_none_or(|k| i.kind() == k))
    }

    /// Inserts a row, returning its id. All indexes are updated; a unique
    /// violation aborts the insert with no change.
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        self.schema.check_row(&row)?;
        let id = RowId(self.next_id);
        // Validate unique constraints before touching anything.
        for idx in &self.indexes {
            if idx.is_unique() && !idx.probe(&idx.key_of(&row)).is_empty() {
                return Err(Error::UniqueViolation {
                    index: idx.name().to_owned(),
                    key: format!("{:?}", idx.key_of(&row)),
                });
            }
        }
        self.next_id += 1;
        for idx in &mut self.indexes {
            idx.insert(&row, id).expect("uniqueness pre-checked");
        }
        let slot = Slot { id, row };
        let pos = match self.free.pop() {
            Some(pos) => {
                self.slots[pos] = Some(slot);
                pos
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.by_id.insert(id, pos);
        Ok(id)
    }

    /// Inserts many rows; stops at the first error (rows before it stay).
    pub fn insert_batch(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<Vec<RowId>> {
        rows.into_iter().map(|r| self.insert(r)).collect()
    }

    /// Fetches a row by id.
    pub fn get(&self, id: RowId) -> Result<&Row> {
        self.by_id
            .get(&id)
            .and_then(|&pos| self.slots[pos].as_ref())
            .map(|s| &s.row)
            .ok_or_else(|| Error::InvalidRowId {
                table: self.name().to_owned(),
                row: id.0,
            })
    }

    /// Deletes a row by id, returning the removed row.
    pub fn delete(&mut self, id: RowId) -> Result<Row> {
        let pos = *self.by_id.get(&id).ok_or_else(|| Error::InvalidRowId {
            table: self.name().to_owned(),
            row: id.0,
        })?;
        let slot = self.slots[pos].take().expect("by_id points at live slot");
        self.by_id.remove(&id);
        self.free.push(pos);
        for idx in &mut self.indexes {
            idx.remove(&slot.row, id);
        }
        Ok(slot.row)
    }

    /// Replaces a row in place, keeping its id. Indexes are re-keyed.
    pub fn update(&mut self, id: RowId, new_row: Row) -> Result<Row> {
        self.schema.check_row(&new_row)?;
        let pos = *self.by_id.get(&id).ok_or_else(|| Error::InvalidRowId {
            table: self.name().to_owned(),
            row: id.0,
        })?;
        let old_row = self.slots[pos].as_ref().expect("live slot").row.clone();
        // Unique pre-check against other rows (the row's own entry is exempt).
        for idx in &self.indexes {
            if idx.is_unique() {
                let key = idx.key_of(&new_row);
                if key != idx.key_of(&old_row) && !idx.probe(&key).is_empty() {
                    return Err(Error::UniqueViolation {
                        index: idx.name().to_owned(),
                        key: format!("{key:?}"),
                    });
                }
            }
        }
        for idx in &mut self.indexes {
            idx.remove(&old_row, id);
            idx.insert(&new_row, id).expect("uniqueness pre-checked");
        }
        self.slots[pos].as_mut().expect("live slot").row = new_row;
        Ok(old_row)
    }

    /// Re-inserts a previously deleted row under its original id. Only the
    /// transaction rollback path may use this; ids of live rows are rejected.
    pub(crate) fn restore(&mut self, id: RowId, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        if self.by_id.contains_key(&id) {
            return Err(Error::InvalidRowId {
                table: self.name().to_owned(),
                row: id.0,
            });
        }
        for idx in &mut self.indexes {
            idx.insert(&row, id)?;
        }
        let slot = Slot { id, row };
        let pos = match self.free.pop() {
            Some(pos) => {
                self.slots[pos] = Some(slot);
                pos
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.by_id.insert(id, pos);
        self.next_id = self.next_id.max(id.0 + 1);
        Ok(())
    }

    /// Drops a secondary index by name.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        let pos = self
            .indexes
            .iter()
            .position(|i| i.name() == name)
            .ok_or_else(|| Error::UnknownIndex(name.to_owned()))?;
        self.indexes.remove(pos);
        Ok(())
    }

    /// Iterates over `(id, row)` pairs of live rows in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.slots.iter().flatten().map(|s| (s.id, &s.row))
    }

    /// Removes every row (indexes included) but keeps the schema and indexes.
    pub fn truncate(&mut self) {
        self.slots.clear();
        self.by_id.clear();
        self.free.clear();
        for idx in &mut self.indexes {
            idx.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn table() -> Table {
        Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("name", DataType::Str),
                ],
            )
            .unwrap(),
        )
    }

    fn row(id: i64, name: &str) -> Row {
        vec![Value::Int(id), Value::Str(name.into())]
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let mut t = table();
        let a = t.insert(row(1, "a")).unwrap();
        let b = t.insert(row(2, "b")).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).unwrap()[1], Value::Str("a".into()));
        let removed = t.delete(a).unwrap();
        assert_eq!(removed[0], Value::Int(1));
        assert!(t.get(a).is_err());
        assert_eq!(t.get(b).unwrap()[0], Value::Int(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn slot_reuse_gets_fresh_id() {
        let mut t = table();
        let a = t.insert(row(1, "a")).unwrap();
        t.delete(a).unwrap();
        let b = t.insert(row(2, "b")).unwrap();
        assert_ne!(a, b, "row ids are never reused");
        assert!(t.get(a).is_err());
    }

    #[test]
    fn schema_enforced_on_insert_and_update() {
        let mut t = table();
        assert!(t
            .insert(vec![Value::Str("x".into()), Value::Str("y".into())])
            .is_err());
        let a = t.insert(row(1, "a")).unwrap();
        assert!(t.update(a, vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn index_maintained_through_mutations() {
        let mut t = table();
        t.create_index("by_name", IndexKind::Hash, &["name"], false)
            .unwrap();
        let a = t.insert(row(1, "a")).unwrap();
        let _b = t.insert(row(2, "b")).unwrap();
        let idx = t.index("by_name").unwrap();
        assert_eq!(idx.probe(&vec![Value::Str("a".into())]), vec![a]);
        t.update(a, row(1, "z")).unwrap();
        let idx = t.index("by_name").unwrap();
        assert!(idx.probe(&vec![Value::Str("a".into())]).is_empty());
        assert_eq!(idx.probe(&vec![Value::Str("z".into())]), vec![a]);
        t.delete(a).unwrap();
        let idx = t.index("by_name").unwrap();
        assert!(idx.probe(&vec![Value::Str("z".into())]).is_empty());
    }

    #[test]
    fn index_backfill_on_creation() {
        let mut t = table();
        let a = t.insert(row(1, "a")).unwrap();
        t.create_index("by_id", IndexKind::BTree, &["id"], true)
            .unwrap();
        assert_eq!(
            t.index("by_id").unwrap().probe(&vec![Value::Int(1)]),
            vec![a]
        );
    }

    #[test]
    fn unique_index_enforced() {
        let mut t = table();
        t.create_index("pk", IndexKind::Hash, &["id"], true)
            .unwrap();
        t.insert(row(1, "a")).unwrap();
        assert!(matches!(
            t.insert(row(1, "dup")),
            Err(Error::UniqueViolation { .. })
        ));
        // failed insert left no garbage behind
        assert_eq!(t.len(), 1);
        let b = t.insert(row(2, "b")).unwrap();
        // update to a clashing key fails, same-key update succeeds
        assert!(t.update(b, row(1, "b")).is_err());
        t.update(b, row(2, "b2")).unwrap();
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = table();
        t.create_index("i", IndexKind::Hash, &["id"], false)
            .unwrap();
        assert!(matches!(
            t.create_index("i", IndexKind::Hash, &["name"], false),
            Err(Error::IndexExists(_))
        ));
    }

    #[test]
    fn truncate_clears_rows_and_indexes() {
        let mut t = table();
        t.create_index("by_name", IndexKind::Hash, &["name"], false)
            .unwrap();
        t.insert(row(1, "a")).unwrap();
        t.truncate();
        assert!(t.is_empty());
        assert_eq!(t.index("by_name").unwrap().distinct_keys(), 0);
        // still usable after truncate
        t.insert(row(3, "c")).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_yields_live_rows_only() {
        let mut t = table();
        let a = t.insert(row(1, "a")).unwrap();
        let _b = t.insert(row(2, "b")).unwrap();
        t.delete(a).unwrap();
        let names: Vec<_> = t.iter().map(|(_, r)| r[1].to_string()).collect();
        assert_eq!(names, vec!["b"]);
    }
}
