//! Property and stress tests for the runtime primitives the simulated
//! network transport is built on: the MPMC channel (`channel.rs`) and the
//! thread pool (`pool.rs`). The transport's fault-injection machinery
//! (`mdv-system`) assumes these hold; here they are checked directly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mdv_runtime::channel::{bounded, unbounded, TryRecvError};
use mdv_runtime::pool::{parallel_map, ThreadPool};
use mdv_runtime::Prng;
use mdv_testkit::{prop_assert, prop_assert_eq, property};

property! {
    /// Concurrent producers: every message arrives exactly once and each
    /// producer's own messages keep their send order (per-producer FIFO) —
    /// for bounded and unbounded channels alike.
    fn mpmc_delivers_exactly_once_in_per_producer_order(src) cases = 30; {
        let producers = src.u64_in(1..5);
        let per = src.u64_in(1..80);
        let use_bounded = src.bool();
        let cap = src.u64_in(1..10) as usize;
        let (tx, rx) = if use_bounded {
            bounded(cap)
        } else {
            unbounded()
        };
        let received: Vec<(u64, u64)> = std::thread::scope(|s| {
            for p in 0..producers {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per {
                        tx.send((p, i)).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        prop_assert_eq!(received.len() as u64, producers * per, "loss or duplication");
        for p in 0..producers {
            let seqs: Vec<u64> = received
                .iter()
                .filter(|(who, _)| *who == p)
                .map(|(_, i)| *i)
                .collect();
            prop_assert_eq!(
                seqs,
                (0..per).collect::<Vec<u64>>(),
                "producer {} reordered",
                p
            );
        }
    }

    /// A bounded channel never holds more than its capacity, and a sender
    /// blocked on a full queue completes once the consumer drains it.
    fn bounded_channel_respects_capacity(src) cases = 30; {
        let cap = src.u64_in(1..8) as usize;
        let total = cap as u64 + src.u64_in(1..40);
        let (tx, rx) = bounded(cap);
        std::thread::scope(|s| {
            let tx2 = tx.clone();
            let producer = s.spawn(move || {
                for i in 0..total {
                    tx2.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while got.len() < total as usize {
                assert!(
                    rx.len() <= cap,
                    "queue above capacity: {} > {cap}",
                    rx.len()
                );
                match rx.try_recv() {
                    Ok(v) => got.push(v),
                    Err(TryRecvError::Empty) => std::thread::yield_now(),
                    Err(TryRecvError::Disconnected) => break,
                }
            }
            producer.join().unwrap();
            assert_eq!(got, (0..total).collect::<Vec<u64>>());
        });
        drop(tx);
        prop_assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    /// The pool runs every job exactly once no matter how the job count
    /// relates to the worker count.
    fn pool_runs_every_job_once(src) cases = 30; {
        let workers = src.u64_in(1..6) as usize;
        let jobs = src.u64_in(0..120);
        let sum = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(workers);
            for i in 0..jobs {
                let sum = sum.clone();
                pool.execute(move || {
                    sum.fetch_add(i + 1, Ordering::SeqCst);
                });
            }
            // drop joins the workers, so every job has run afterwards
        }
        prop_assert_eq!(sum.load(Ordering::SeqCst), (1..=jobs).sum::<u64>());
    }

    /// `parallel_map` is a pure map: input order, any thread count.
    fn parallel_map_matches_sequential_map(src) cases = 30; {
        let items: Vec<i64> = src.vec(0..50, |s| s.i64_in(-1000..1000));
        let threads = src.u64_in(1..9) as usize;
        let out = parallel_map(&items, threads, |&x| x.wrapping_mul(3) - 7);
        let expected: Vec<i64> = items.iter().map(|&x| x.wrapping_mul(3) - 7).collect();
        prop_assert_eq!(out, expected);
    }

    /// The PRNG driving the fault plans is a pure function of its seed.
    fn prng_streams_replay_from_seed(src) cases = 30; {
        let seed = src.bits();
        let mut a = Prng::seed_from_u64(seed);
        let mut b = Prng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        prop_assert!((0.0..1.0).contains(&a.gen_f64()));
    }
}

#[test]
fn pool_contains_panicking_jobs() {
    // a panicking job must neither kill its worker nor poison the queue:
    // jobs submitted afterwards still run on the full-size pool
    let done = Arc::new(AtomicU64::new(0));
    {
        let pool = ThreadPool::new(2);
        for _ in 0..4 {
            pool.execute(|| panic!("job blew up (expected in this test)"));
        }
        for _ in 0..50 {
            let done = done.clone();
            pool.execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
    }
    assert_eq!(done.load(Ordering::SeqCst), 50);
}

#[test]
fn submitted_job_panic_reaches_the_submitter() {
    // the contract the parallel filter relies on: a panic in a submitted
    // job must come back to the submitter as an Err carrying the message,
    // never as a silently missing result
    use mdv_runtime::pool::JobError;
    let pool = ThreadPool::new(2);
    let handles: Vec<_> = (0..8u64)
        .map(|i| {
            pool.submit(move || {
                if i % 3 == 0 {
                    panic!("job {i} blew up (expected in this test)");
                }
                i * 10
            })
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        let i = i as u64;
        match h.join() {
            Ok(v) => {
                assert_ne!(i % 3, 0, "job {i} should have panicked");
                assert_eq!(v, i * 10);
            }
            Err(JobError::Panicked(msg)) => {
                assert_eq!(i % 3, 0, "job {i} should have succeeded");
                assert!(msg.contains(&format!("job {i} blew up")), "got '{msg}'");
            }
        }
    }
}

#[test]
fn parallel_map_propagates_panics_to_the_caller() {
    // unlike the fire-and-forget pool, parallel_map returns results, so a
    // lost panic would silently fabricate data — it must propagate instead
    let items: Vec<u64> = (0..16).collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        parallel_map(&items, 4, |&x| {
            if x == 11 {
                panic!("poisoned item (expected in this test)");
            }
            x
        })
    }));
    assert!(result.is_err(), "panic in the mapper must reach the caller");
}

#[test]
fn blocked_sender_wakes_when_receiver_disconnects() {
    // a sender parked on a full bounded queue must not hang forever when
    // the last receiver goes away — it wakes and reports the failure
    let (tx, rx) = bounded(1);
    tx.send(0u8).unwrap();
    std::thread::scope(|s| {
        let h = s.spawn(|| tx.send(1));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(h.join().unwrap().is_err(), "send must fail, not hang");
    });
}
