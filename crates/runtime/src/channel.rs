//! Bounded and unbounded MPMC channels.
//!
//! Unlike `std::sync::mpsc`, both endpoints are cloneable, which is what
//! the simulated network transport needs: every node hands out its sender
//! to many peers, and system drivers poll many receivers. Implemented as a
//! `VecDeque` behind a mutex with two condvars (not-empty / not-full) —
//! deliberately simple; the transport layer is not a throughput hot path.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// The sending half is gone and the queue is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// No message is queued and every sender is dropped.
    Disconnected,
}

/// The receiving half is gone; the unsent message is returned.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // Poison-free: a panicking holder leaves a consistent VecDeque.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// An unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// A bounded MPMC channel: `send` blocks while `cap` messages are queued.
/// A capacity of 0 is rounded up to 1 (no rendezvous semantics).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues a message, blocking while a bounded channel is full.
    /// Fails (returning the message) once every receiver is dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self
                        .shared
                        .not_full
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// The number of currently queued messages.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Dequeues a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        match state.queue.pop_front() {
            Some(v) => {
                drop(state);
                self.shared.not_full.notify_one();
                Ok(v)
            }
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Like [`Receiver::recv`] with an upper bound on the wait.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, TryRecvError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(TryRecvError::Empty);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Drains every currently queued message without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }

    /// The number of currently queued messages.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // wake receivers blocked in recv so they observe disconnection
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn drop_all_senders_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn drop_receiver_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(|| tx.send(3));
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.len(), 2, "third send must be blocked");
            assert_eq!(rx.recv(), Ok(1));
            assert!(h.join().unwrap().is_ok());
        });
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            let h = s.spawn(|| rx.recv());
            std::thread::sleep(Duration::from_millis(10));
            tx.send(42u64).unwrap();
            assert_eq!(h.join().unwrap(), Ok(42));
        });
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(TryRecvError::Empty)
        );
    }

    #[test]
    fn mpmc_every_message_delivered_once() {
        let (tx, rx) = bounded(4);
        let n_senders = 4;
        let per_sender = 100u64;
        let mut received = std::thread::scope(|s| {
            for t in 0..n_senders {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per_sender {
                        tx.send(t * per_sender + i).unwrap();
                    }
                });
            }
            drop(tx);
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<u64>>()
        });
        received.sort_unstable();
        assert_eq!(
            received,
            (0..n_senders * per_sender).collect::<Vec<u64>>(),
            "no loss, no duplication"
        );
    }
}
