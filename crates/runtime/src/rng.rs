//! A deterministic, seedable PRNG.
//!
//! The generator is Xoshiro256++ (Blackman & Vigna), seeded by expanding a
//! 64-bit seed through SplitMix64 — the standard pairing, because
//! Xoshiro must not be seeded with all zeros and SplitMix64 decorrelates
//! nearby seeds. Not cryptographic; meant for workload generation,
//! property testing, and benchmarks where reproducibility is the point.

use std::ops::Range;

/// SplitMix64: a tiny, fast generator used here to expand seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Xoshiro256++ with a convenience sampling surface.
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Expands `seed` into the full 256-bit state via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Prng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, n)` via Lemire's widening-multiply reduction
    /// (bias < 2⁻⁶⁴, irrelevant at these scales). `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "Prng::below(0)");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform draw from a half-open range, like `rand`'s `gen_range`.
    ///
    /// Panics when the range is empty.
    pub fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len() as u64) as usize])
        }
    }

    /// `n` elements sampled without replacement (all of `xs`, shuffled,
    /// when `n >= xs.len()`). Order is random.
    pub fn sample<T: Clone>(&mut self, xs: &[T], n: usize) -> Vec<T> {
        let mut indices: Vec<usize> = (0..xs.len()).collect();
        self.shuffle(&mut indices);
        indices.into_iter().take(n).map(|i| xs[i].clone()).collect()
    }
}

/// Types [`Prng::gen_range`] can sample uniformly from a half-open range.
pub trait UniformRange: Sized {
    fn sample(rng: &mut Prng, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformRange for $ty {
            fn sample(rng: &mut Prng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range over empty range");
                let width = range.end.abs_diff(range.start) as u64;
                range.start.wrapping_add(rng.below(width) as $ty)
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_uint {
    ($($ty:ty),*) => {$(
        impl UniformRange for $ty {
            fn sample(rng: &mut Prng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range over empty range");
                let width = (range.end - range.start) as u64;
                range.start + rng.below(width) as $ty
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

impl UniformRange for f64 {
    fn sample(rng: &mut Prng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range over empty range");
        range.start + rng.gen_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ for the state [1, 2, 3, 4]
        // (reference implementation by Blackman & Vigna).
        let mut rng = Prng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = rng.gen_range(3usize..4);
            assert_eq!(u, 3);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = Prng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Prng::seed_from_u64(0).gen_range(5i64..5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Prng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "~25% expected, got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Prng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "50 elements stayed put");
    }

    #[test]
    fn choose_and_sample() {
        let mut rng = Prng::seed_from_u64(4);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let xs = [10, 20, 30];
        for _ in 0..100 {
            assert!(xs.contains(rng.choose(&xs).unwrap()));
        }
        let mut s = rng.sample(&xs, 2);
        assert_eq!(s.len(), 2);
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 2, "sampling is without replacement");
        assert_eq!(rng.sample(&xs, 10).len(), 3);
    }
}
