//! Poison-free lock wrappers with the `parking_lot` calling convention:
//! `lock()` / `read()` / `write()` return guards directly instead of a
//! `Result`, recovering the inner value when a previous holder panicked
//! (lock poisoning exists to surface broken invariants, but every use in
//! this workspace guards data that stays consistent across panics).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// `N` independent mutexes selected by key hash — cheap striping for maps
/// touched from many threads.
#[derive(Debug)]
pub struct ShardedMutex<T> {
    shards: Vec<Mutex<T>>,
}

impl<T> ShardedMutex<T> {
    /// Builds `shards` stripes (at least one) from a constructor.
    pub fn new_with(shards: usize, mut init: impl FnMut() -> T) -> Self {
        ShardedMutex {
            shards: (0..shards.max(1)).map(|_| Mutex::new(init())).collect(),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Locks the stripe owning `key` (Fibonacci hashing of the key).
    pub fn lock_key(&self, key: u64) -> MutexGuard<'_, T> {
        let mixed = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let idx = (mixed >> 32) as usize % self.shards.len();
        self.shards[idx].lock()
    }

    /// Locks stripe `idx` directly (for whole-structure sweeps).
    pub fn lock_shard(&self, idx: usize) -> MutexGuard<'_, T> {
        self.shards[idx].lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock still usable after a panicking holder");
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn sharded_mutex_distributes_and_isolates() {
        let s = ShardedMutex::new_with(8, Vec::<u64>::new);
        assert_eq!(s.shard_count(), 8);
        for k in 0..1000u64 {
            s.lock_key(k).push(k);
        }
        let total: usize = (0..8).map(|i| s.lock_shard(i).len()).sum();
        assert_eq!(total, 1000);
        let used = (0..8).filter(|&i| !s.lock_shard(i).is_empty()).count();
        assert!(used > 1, "keys spread across stripes");
        // the same key always maps to the same stripe
        let before: Vec<usize> = (0..8).map(|i| s.lock_shard(i).len()).collect();
        s.lock_key(17).push(17);
        s.lock_key(17).push(17);
        let after: Vec<usize> = (0..8).map(|i| s.lock_shard(i).len()).collect();
        let grown = (0..8).filter(|&i| after[i] != before[i]).count();
        assert_eq!(grown, 1);
    }
}
