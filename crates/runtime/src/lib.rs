//! # mdv-runtime
//!
//! The zero-dependency runtime layer of the MDV workspace. Everything the
//! repository previously pulled from crates.io for concurrency and
//! randomness lives here, built on `std` alone, so the whole workspace
//! compiles, tests, and benchmarks on a machine with no registry access:
//!
//! * [`rng`] — a SplitMix64-seeded Xoshiro256++ PRNG with the
//!   `gen_range` / `shuffle` / `choose` / `sample` surface the workload
//!   generators and benchmarks need. Deterministic: one seed, one stream.
//! * [`channel`] — bounded and unbounded MPMC channels (both endpoints
//!   cloneable) used by the simulated network transport.
//! * [`pool`] — a scoped thread pool and a `parallel_map` helper built on
//!   `std::thread::scope`.
//! * [`sync`] — poison-free `Mutex` / `RwLock` wrappers plus a sharded
//!   mutex for hot maps.
//!
//! `DESIGN.md` §4 holds the workspace-wide module map locating this
//! crate's files.

pub mod channel;
pub mod pool;
pub mod rng;
pub mod sync;

pub use channel::{bounded, unbounded, Receiver, RecvError, SendError, Sender, TryRecvError};
pub use pool::{parallel_map, ThreadPool};
pub use rng::Prng;
pub use sync::{Mutex, RwLock, ShardedMutex};
