//! A small scoped thread pool built on `std::thread::scope` plus the
//! in-tree MPMC channel — the replacement for what `crossbeam`'s scoped
//! utilities provided.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::channel::{bounded, unbounded, Receiver, Sender};
use crate::sync::Mutex;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submitted job produced no value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked; the payload's message, when it was a string.
    Panicked(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "pool job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// The submitter's half of a [`ThreadPool::submit`] call: blocks on `join`
/// until the job finishes, surfacing a job panic as [`JobError::Panicked`]
/// instead of a silently missing result.
#[derive(Debug)]
pub struct JobHandle<T> {
    rx: Receiver<Result<T, JobError>>,
}

impl<T> JobHandle<T> {
    /// Waits for the job and returns its value, or `Err` when it panicked.
    pub fn join(self) -> Result<T, JobError> {
        // The worker always sends exactly one message (the catch_unwind
        // result), so a closed channel can only mean the pool was dropped
        // with the job never run — report that as a panic-equivalent loss.
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(JobError::Panicked("job was dropped unrun".to_owned())))
    }
}

/// Renders a panic payload the way `std` does for `Box<dyn Any>`.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A fixed-size pool of worker threads consuming jobs from an MPMC queue.
/// Dropping the pool closes the queue and joins every worker.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("mdv-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // a panicking job must not take the worker down
                            // with it: the pool keeps serving later jobs
                            let _ = catch_unwind(AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(tx),
            workers,
        }
    }

    /// Enqueues a fire-and-forget job. A panic inside the job is contained
    /// by the worker (the pool keeps serving) but the payload is lost; use
    /// [`ThreadPool::submit`] when the caller must observe failures.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.sender
            .as_ref()
            .expect("pool is live until dropped")
            .send(Box::new(job))
            .ok();
    }

    /// Enqueues a job whose outcome the submitter observes: `join` on the
    /// returned handle yields the job's value, or [`JobError::Panicked`]
    /// with the panic message when the job panicked. This is the contract
    /// the filter hot path relies on — a worker must never swallow a panic
    /// into a silently missing result.
    pub fn submit<T, F>(&self, job: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = bounded::<Result<T, JobError>>(1);
        self.execute(move || {
            let result = catch_unwind(AssertUnwindSafe(job))
                .map_err(|p| JobError::Panicked(panic_message(p)));
            // the submitter may have dropped the handle; that's fine
            tx.send(result).ok();
        });
        JobHandle { rx }
    }

    /// The number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Applies `f` to every item on `threads` scoped workers and returns the
/// results in input order. Panics in `f` propagate to the caller.
///
/// Empty and single-item inputs (and `threads <= 1`) run inline on the
/// caller's thread, spawning zero workers — an empty filter shard must cost
/// nothing, not a worker that wakes up to find no work.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    *slots[i].lock() = Some(f(&items[i]));
                })
            })
            .collect();
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_all_jobs() {
        let counter = std::sync::Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(4);
            assert_eq!(pool.size(), 4);
            for _ in 0..100 {
                let c = counter.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            // drop joins: every job has run afterwards
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn pool_jobs_flow_through_channels() {
        // jobs send results back over an in-tree channel, exercising the
        // channel send/recv/close semantics under the pool
        let (tx, rx) = crate::channel::unbounded();
        {
            let pool = ThreadPool::new(3);
            for i in 0..50u64 {
                let tx = tx.clone();
                pool.execute(move || {
                    tx.send(i * i).unwrap();
                });
            }
        }
        drop(tx);
        let mut got: Vec<u64> = std::iter::from_fn(|| rx.recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..50u64).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(crate::channel::RecvError));
    }

    #[test]
    fn submit_returns_value() {
        let pool = ThreadPool::new(2);
        let handles: Vec<_> = (0..20u64).map(|i| pool.submit(move || i * 3)).collect();
        let got: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got, (0..20u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn submit_surfaces_panic_as_err() {
        let pool = ThreadPool::new(1);
        let bad = pool.submit(|| -> u64 { panic!("boom {}", 41 + 1) });
        match bad.join() {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("boom 42"), "got '{msg}'"),
            other => panic!("expected Err(Panicked), got {other:?}"),
        }
        // the worker survived the panic and serves later jobs
        let ok = pool.submit(|| 7u64);
        assert_eq!(ok.join(), Ok(7));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..200).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..200).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[9], 4, |&x| x + 1), vec![10]);
    }

    #[test]
    fn parallel_map_small_inputs_spawn_no_workers() {
        // empty, single-item, and threads=1 maps run inline: `f` executes
        // on the caller's thread, never a spawned worker
        let caller = std::thread::current().id();
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 4, |_| std::thread::current().id()).is_empty());
        assert_eq!(
            parallel_map(&[1], 8, |_| std::thread::current().id()),
            vec![caller]
        );
        assert!(parallel_map(&[1, 2, 3], 1, |_| std::thread::current().id())
            .iter()
            .all(|id| *id == caller));
    }
}
