//! A small scoped thread pool built on `std::thread::scope` plus the
//! in-tree MPMC channel — the replacement for what `crossbeam`'s scoped
//! utilities provided.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::channel::{unbounded, Sender};
use crate::sync::Mutex;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads consuming jobs from an MPMC queue.
/// Dropping the pool closes the queue and joins every worker.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("mdv-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // a panicking job must not take the worker down
                            // with it: the pool keeps serving later jobs
                            let _ = catch_unwind(AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(tx),
            workers,
        }
    }

    /// Enqueues a job.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.sender
            .as_ref()
            .expect("pool is live until dropped")
            .send(Box::new(job))
            .ok();
    }

    /// The number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Applies `f` to every item on `threads` scoped workers and returns the
/// results in input order. Panics in `f` propagate to the caller.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    *slots[i].lock() = Some(f(&items[i]));
                })
            })
            .collect();
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_all_jobs() {
        let counter = std::sync::Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(4);
            assert_eq!(pool.size(), 4);
            for _ in 0..100 {
                let c = counter.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            // drop joins: every job has run afterwards
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn pool_jobs_flow_through_channels() {
        // jobs send results back over an in-tree channel, exercising the
        // channel send/recv/close semantics under the pool
        let (tx, rx) = crate::channel::unbounded();
        {
            let pool = ThreadPool::new(3);
            for i in 0..50u64 {
                let tx = tx.clone();
                pool.execute(move || {
                    tx.send(i * i).unwrap();
                });
            }
        }
        drop(tx);
        let mut got: Vec<u64> = std::iter::from_fn(|| rx.recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..50u64).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(crate::channel::RecvError));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..200).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..200).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[9], 4, |&x| x + 1), vec![10]);
    }
}
