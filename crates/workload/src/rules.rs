//! Benchmark rule generation: the four rule types of the paper's Figure 10.
//!
//! ```text
//! OID:  search CycleProvider c register c where c = URI
//! COMP: search CycleProvider c register c where c.synthValue > INT
//! PATH: search CycleProvider c register c
//!       where c.serverInformation.memory = INT
//! JOIN: search CycleProvider c register c
//!       where c.serverHost contains 'uni-passau.de'
//!       and c.serverInformation.cpu = 600
//!       and c.serverInformation.memory = INT
//! ```
//!
//! OID and COMP are pure triggering rules (no decomposition, no join rules);
//! PATH and JOIN access properties of referenced resources, so decomposition
//! creates join rules and the complete filter algorithm runs (paper §4).

use std::fmt;

use crate::documents::provider_uri;

/// The benchmark rule types (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleType {
    Oid,
    Comp,
    Path,
    Join,
}

impl RuleType {
    pub const ALL: [RuleType; 4] = [
        RuleType::Oid,
        RuleType::Comp,
        RuleType::Path,
        RuleType::Join,
    ];

    /// True when rules of this type decompose into join rules (the complete
    /// filter algorithm runs, not just trigger matching).
    pub fn needs_joins(self) -> bool {
        matches!(self, RuleType::Path | RuleType::Join)
    }
}

impl fmt::Display for RuleType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleType::Oid => "OID",
            RuleType::Comp => "COMP",
            RuleType::Path => "PATH",
            RuleType::Join => "JOIN",
        };
        f.write_str(s)
    }
}

/// Generates rule `i` of the given type.
pub fn benchmark_rule(rule_type: RuleType, i: u64) -> String {
    match rule_type {
        RuleType::Oid => format!(
            "search CycleProvider c register c where c = '{}'",
            provider_uri(i)
        ),
        RuleType::Comp => {
            format!("search CycleProvider c register c where c.synthValue > {i}")
        }
        RuleType::Path => {
            format!("search CycleProvider c register c where c.serverInformation.memory = {i}")
        }
        RuleType::Join => format!(
            "search CycleProvider c register c \
             where c.serverHost contains 'uni-passau.de' \
             and c.serverInformation.cpu = 600 \
             and c.serverInformation.memory = {i}"
        ),
    }
}

/// Generates the full rule base `0..count`.
pub fn benchmark_rules(rule_type: RuleType, count: u64) -> Vec<String> {
    (0..count).map(|i| benchmark_rule(rule_type, i)).collect()
}

/// Number of covering families in a `contains` rule base of `count` rules
/// at the given overlap ratio: `overlap = 0.0` makes every rule its own
/// family (no covering at all), `overlap → 1.0` collapses the base onto
/// ever fewer shared base patterns.
pub fn contains_families(count: u64, overlap: f64) -> u64 {
    ((count as f64) * (1.0 - overlap.clamp(0.0, 1.0)))
        .ceil()
        .max(1.0) as u64
}

/// A full-text (`contains`) rule base with a tunable overlap profile, the
/// workload of the matching-scaling study (DESIGN.md §10).
///
/// The base splits into [`contains_families`]`(count, overlap)` families.
/// Family `f`'s *base pattern* `.region{f}.grid` is rule `f`; the remaining
/// rules are *refinements* `node{j}.region{f}.grid` dealt round-robin over
/// the families. Every refinement contains its family's base pattern as a
/// substring, so the base rule covers it: the subsumption frontier holds
/// exactly the family bases, and the inverted index buckets each family
/// under its `region{f}` anchor token.
pub fn contains_rules(count: u64, overlap: f64) -> Vec<String> {
    let families = contains_families(count, overlap);
    (0..count)
        .map(|i| {
            let pattern = if i < families {
                format!(".region{i}.grid")
            } else {
                format!("node{}.region{}.grid", i, i % families)
            };
            format!("search CycleProvider c register c where c.serverHost contains '{pattern}'")
        })
        .collect()
}

/// Documents for [`contains_rules`]: document `i`'s CycleProvider lives at
/// host `node{i}.region{i % families}.grid.org`, so it matches its family's
/// base pattern plus (when `i` is a refinement rule index) exactly that one
/// refinement.
pub fn contains_documents(range: std::ops::Range<u64>, families: u64) -> Vec<mdv_rdf::Document> {
    use mdv_rdf::{Document, Resource, Term, UriRef};
    range
        .map(|i| {
            let uri = crate::documents::document_uri(i);
            Document::new(uri.clone())
                .with_resource(
                    Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                        .with(
                            "serverHost",
                            Term::literal(format!(
                                "node{}.region{}.grid.org",
                                i,
                                i % families.max(1)
                            )),
                        )
                        .with("serverPort", Term::literal((5000 + (i % 1000)).to_string()))
                        .with("synthValue", Term::literal("0"))
                        .with(
                            "serverInformation",
                            Term::resource(UriRef::new(&uri, "info")),
                        ),
                )
                .with_resource(
                    Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                        .with("memory", Term::literal(i.to_string()))
                        .with("cpu", Term::literal("600")),
                )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::documents::{benchmark_document, BenchParams};
    use crate::schema::benchmark_schema;
    use mdv_filter::FilterEngine;

    #[test]
    fn rule_shapes_match_figure_10() {
        assert_eq!(
            benchmark_rule(RuleType::Oid, 3),
            "search CycleProvider c register c where c = 'bench3.rdf#host'"
        );
        assert!(benchmark_rule(RuleType::Comp, 5).contains("synthValue > 5"));
        assert!(benchmark_rule(RuleType::Path, 7).contains("serverInformation.memory = 7"));
        let join = benchmark_rule(RuleType::Join, 9);
        assert!(join.contains("contains 'uni-passau.de'"));
        assert!(join.contains("cpu = 600"));
        assert!(join.contains("memory = 9"));
    }

    #[test]
    fn oid_and_comp_are_trigger_only_path_and_join_decompose() {
        let schema = benchmark_schema();
        for rt in RuleType::ALL {
            let mut e = FilterEngine::new(schema.clone());
            e.register_subscription(&benchmark_rule(rt, 1)).unwrap();
            let joins = e
                .graph()
                .rules_sorted()
                .iter()
                .filter(|r| r.is_join())
                .count();
            if rt.needs_joins() {
                assert!(joins > 0, "{rt} must decompose into join rules");
            } else {
                assert_eq!(joins, 0, "{rt} must stay a pure triggering rule");
            }
        }
    }

    #[test]
    fn one_to_one_matching_for_oid_path_join() {
        // "the CycleProvider resource in a document was matched by exactly
        // one rule and each rule matched exactly one resource" (§4)
        let schema = benchmark_schema();
        let params = BenchParams {
            rule_count: 10,
            comp_match_fraction: 0.1,
        };
        for rt in [RuleType::Oid, RuleType::Path, RuleType::Join] {
            let mut e = FilterEngine::new(schema.clone());
            for rule in benchmark_rules(rt, 10) {
                e.register_subscription(&rule).unwrap();
            }
            let docs: Vec<_> = (0..10).map(|i| benchmark_document(i, &params)).collect();
            let pubs = e.register_batch(&docs).unwrap();
            // every rule matched exactly one provider
            assert_eq!(pubs.len(), 10, "{rt}: each of the 10 rules fires once");
            for p in &pubs {
                assert_eq!(p.added.len(), 1, "{rt}: rule matches exactly one resource");
            }
            // and every provider was matched exactly once overall
            let mut matched: Vec<&String> = pubs.iter().flat_map(|p| &p.added).collect();
            matched.sort();
            matched.dedup();
            assert_eq!(matched.len(), 10);
        }
    }

    #[test]
    fn contains_workload_matching_discipline() {
        let schema = benchmark_schema();
        // overlap 0.5 over 8 rules → 4 families: rules 0..4 are base
        // patterns, rules 4..8 refinements dealt round-robin
        let rules = contains_rules(8, 0.5);
        assert_eq!(contains_families(8, 0.5), 4);
        assert!(rules[0].contains("contains '.region0.grid'"));
        assert!(rules[4].contains("contains 'node4.region0.grid'"));
        let mut e = FilterEngine::new(schema.clone());
        for r in &rules {
            e.register_subscription(r).unwrap();
        }
        let docs = contains_documents(0..8, 4);
        for d in &docs {
            schema.validate(d).unwrap();
        }
        let pubs = e.register_batch(&docs).unwrap();
        // every doc matches its family base; docs 4..8 also match their own
        // refinement → base rules fire for 2 docs each, refinements for 1
        assert_eq!(pubs.len(), 8);
        for p in &pubs {
            let expected = if p.subscription.0 < 4 { 2 } else { 1 };
            assert_eq!(p.added.len(), expected, "sub {}", p.subscription);
        }
        // zero overlap → no covering: every doc matches exactly one rule
        let mut e = FilterEngine::new(schema);
        for r in contains_rules(6, 0.0) {
            e.register_subscription(&r).unwrap();
        }
        let pubs = e.register_batch(&contains_documents(0..6, 6)).unwrap();
        assert_eq!(pubs.len(), 6);
        assert!(pubs.iter().all(|p| p.added.len() == 1));
    }

    #[test]
    fn comp_matching_percentage_holds() {
        let schema = benchmark_schema();
        let params = BenchParams {
            rule_count: 100,
            comp_match_fraction: 0.1,
        };
        let mut e = FilterEngine::new(schema);
        for rule in benchmark_rules(RuleType::Comp, 100) {
            e.register_subscription(&rule).unwrap();
        }
        let pubs = e
            .register_document(&benchmark_document(0, &params))
            .unwrap();
        // synthValue = 10 matches rules with INT in 0..10 → 10 of 100 = 10%
        assert_eq!(pubs.len(), 10);
    }
}
