//! The ObjectGlobe marketplace scenario (paper §1): a generator for a
//! realistic mixed population of cycle, data, and function providers, used
//! by the examples and integration tests.

use mdv_rdf::{Document, Resource, Term, UriRef};
use mdv_runtime::Prng;

/// Tunables of the marketplace generator.
#[derive(Debug, Clone, Copy)]
pub struct MarketplaceParams {
    pub cycle_providers: usize,
    pub data_providers: usize,
    pub function_providers: usize,
    pub seed: u64,
}

impl Default for MarketplaceParams {
    fn default() -> Self {
        MarketplaceParams {
            cycle_providers: 20,
            data_providers: 15,
            function_providers: 10,
            seed: 42,
        }
    }
}

const DOMAINS: &[&str] = &[
    "uni-passau.de",
    "in.tum.de",
    "example.org",
    "objectglobe.net",
];
const THEMES: &[&str] = &["astronomy", "finance", "genomics", "weather", "traffic"];
const FORMATS: &[&str] = &["xml", "csv", "relational"];
const OPERATORS: &[&str] = &["join", "sort", "wavelet", "sample", "topk", "compress"];

/// Generates one document per provider, against
/// [`crate::schema::objectglobe_schema`].
pub fn marketplace_documents(params: &MarketplaceParams) -> Vec<Document> {
    let mut rng = Prng::seed_from_u64(params.seed);
    let mut docs = Vec::new();

    for i in 0..params.cycle_providers {
        let uri = format!("cycle{i}.rdf");
        let domain = DOMAINS[rng.gen_range(0..DOMAINS.len())];
        let memory = *[32, 64, 128, 256, 512]
            .get(rng.gen_range(0..5))
            .expect("in range");
        let cpu = 300 + 100 * rng.gen_range(0..8);
        docs.push(
            Document::new(uri.clone())
                .with_resource(
                    Resource::new(UriRef::new(&uri, "provider"), "CycleProvider")
                        .with("name", Term::literal(format!("cycle-{i}")))
                        .with("adminContact", Term::literal(format!("admin@{domain}")))
                        .with("serverHost", Term::literal(format!("node{i}.{domain}")))
                        .with("serverPort", Term::literal((4000 + i).to_string()))
                        .with(
                            "serverInformation",
                            Term::resource(UriRef::new(&uri, "info")),
                        ),
                )
                .with_resource(
                    Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                        .with("memory", Term::literal(memory.to_string()))
                        .with("cpu", Term::literal(cpu.to_string())),
                ),
        );
    }

    for i in 0..params.data_providers {
        let uri = format!("data{i}.rdf");
        let domain = DOMAINS[rng.gen_range(0..DOMAINS.len())];
        let theme = THEMES[rng.gen_range(0..THEMES.len())];
        let format = FORMATS[rng.gen_range(0..FORMATS.len())];
        let mut res = Resource::new(UriRef::new(&uri, "provider"), "DataProvider")
            .with("name", Term::literal(format!("data-{i}")))
            .with("adminContact", Term::literal(format!("data@{domain}")))
            .with("theme", Term::literal(theme))
            .with("format", Term::literal(format))
            .with(
                "collectionSize",
                Term::literal(rng.gen_range(1_000..1_000_000i64).to_string()),
            );
        // a weak reference to some cycle provider (never auto-transmitted)
        if params.cycle_providers > 0 {
            let target = rng.gen_range(0..params.cycle_providers);
            res.add(
                "preferredCycleProvider",
                Term::resource(UriRef::new(&format!("cycle{target}.rdf"), "provider")),
            );
        }
        docs.push(Document::new(uri).with_resource(res));
    }

    for i in 0..params.function_providers {
        let uri = format!("function{i}.rdf");
        let domain = DOMAINS[rng.gen_range(0..DOMAINS.len())];
        let mut res = Resource::new(UriRef::new(&uri, "provider"), "FunctionProvider")
            .with("name", Term::literal(format!("function-{i}")))
            .with("adminContact", Term::literal(format!("fn@{domain}")))
            .with(
                "costFactor",
                Term::literal(rng.gen_range(1..20i64).to_string()),
            );
        let op_count = rng.gen_range(1..4);
        for k in 0..op_count {
            let op = OPERATORS[(i + k) % OPERATORS.len()];
            res.add("operators", Term::literal(op));
        }
        docs.push(Document::new(uri).with_resource(res));
    }

    docs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::objectglobe_schema;

    #[test]
    fn marketplace_validates() {
        let schema = objectglobe_schema();
        let docs = marketplace_documents(&MarketplaceParams::default());
        assert_eq!(docs.len(), 45);
        for doc in &docs {
            schema.validate(doc).unwrap();
            doc.check_internal_references().unwrap();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = marketplace_documents(&MarketplaceParams::default());
        let b = marketplace_documents(&MarketplaceParams::default());
        assert_eq!(a, b);
        let c = marketplace_documents(&MarketplaceParams {
            seed: 7,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn provider_mix_respected() {
        let docs = marketplace_documents(&MarketplaceParams {
            cycle_providers: 3,
            data_providers: 2,
            function_providers: 1,
            seed: 1,
        });
        let count = |class: &str| {
            docs.iter()
                .flat_map(|d| d.resources())
                .filter(|r| r.class() == class)
                .count()
        };
        assert_eq!(count("CycleProvider"), 3);
        assert_eq!(count("ServerInformation"), 3);
        assert_eq!(count("DataProvider"), 2);
        assert_eq!(count("FunctionProvider"), 1);
    }
}
