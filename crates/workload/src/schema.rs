//! Schemas used by the benchmarks and examples.

use mdv_rdf::RdfSchema;

/// The paper's benchmark schema: the Figure 1 classes plus the synthetic
/// `synthValue` property that COMP rules compare against (Figure 10).
pub fn benchmark_schema() -> RdfSchema {
    RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .int("synthValue")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()
        .expect("benchmark schema is valid")
}

/// The ObjectGlobe marketplace schema (paper §1): *data providers* supply
/// data, *function providers* offer query operators, *cycle providers*
/// execute them. All providers share a base class; cycle providers carry
/// strong-referenced server information, data providers weak-reference a
/// preferred cycle provider (so it is *not* transmitted automatically).
pub fn objectglobe_schema() -> RdfSchema {
    RdfSchema::builder()
        .class("Provider", |c| c.str("name").str("adminContact"))
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.extends("Provider")
                .str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .class("DataProvider", |c| {
            c.extends("Provider")
                .str("theme")
                .str("format")
                .int("collectionSize")
                .weak_ref("preferredCycleProvider", "CycleProvider")
        })
        .class("FunctionProvider", |c| {
            c.extends("Provider").str_set("operators").int("costFactor")
        })
        .build()
        .expect("ObjectGlobe schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdv_rdf::RefKind;

    #[test]
    fn benchmark_schema_shape() {
        let s = benchmark_schema();
        assert!(s.has_class("CycleProvider"));
        assert!(s.property("CycleProvider", "synthValue").is_some());
        assert_eq!(
            s.ref_kind("CycleProvider", "serverInformation"),
            Some(RefKind::Strong)
        );
    }

    #[test]
    fn objectglobe_schema_shape() {
        let s = objectglobe_schema();
        for class in [
            "Provider",
            "CycleProvider",
            "DataProvider",
            "FunctionProvider",
        ] {
            assert!(s.has_class(class), "missing {class}");
        }
        assert!(s.is_subclass_of("DataProvider", "Provider"));
        assert_eq!(
            s.ref_kind("DataProvider", "preferredCycleProvider"),
            Some(RefKind::Weak)
        );
        // inherited property resolves on the subclass
        assert!(s.property("FunctionProvider", "name").is_some());
        assert!(
            s.property("FunctionProvider", "operators")
                .unwrap()
                .set_valued
        );
    }
}
