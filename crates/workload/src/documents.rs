//! Benchmark document generation (paper §4): "We registered RDF documents
//! similar to the document of Figure 1, each containing two resources, one
//! of class CycleProvider, one of class ServerInformation."
//!
//! Documents are indexed by a global sequence number so that successive
//! batches never collide. The matching discipline is baked into the
//! property values:
//!
//! * document *i*'s CycleProvider has URI `bench{i}.rdf#host` — OID rule *i*
//!   targets exactly it;
//! * its ServerInformation has `memory = i` — PATH/JOIN rule *i* (with
//!   `= INT`, INT = *i*) matches exactly it;
//! * `synthValue` is fixed to ⌊match_fraction × rule_count⌋ so each
//!   document matches that percentage of the COMP rule base.

use mdv_rdf::{Document, Resource, Term, UriRef};

/// Parameters tying documents to a rule base.
#[derive(Debug, Clone, Copy)]
pub struct BenchParams {
    /// Size of the rule base documents will be matched against.
    pub rule_count: u64,
    /// Fraction of COMP rules each document must match (e.g. 0.1 for the
    /// paper's "10% of rule base" runs).
    pub comp_match_fraction: f64,
}

impl Default for BenchParams {
    fn default() -> Self {
        BenchParams {
            rule_count: 10_000,
            comp_match_fraction: 0.1,
        }
    }
}

impl BenchParams {
    /// The synthValue written into every document.
    pub fn synth_value(&self) -> i64 {
        (self.comp_match_fraction * self.rule_count as f64).floor() as i64
    }
}

/// The URI of benchmark document `i`.
pub fn document_uri(i: u64) -> String {
    format!("bench{i}.rdf")
}

/// The URI reference of the CycleProvider in benchmark document `i` (what
/// OID rule `i` subscribes to).
pub fn provider_uri(i: u64) -> String {
    format!("bench{i}.rdf#host")
}

/// Generates benchmark document `i`.
pub fn benchmark_document(i: u64, params: &BenchParams) -> Document {
    let uri = document_uri(i);
    Document::new(uri.clone())
        .with_resource(
            Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                .with(
                    "serverHost",
                    Term::literal(format!("host{i}.uni-passau.de")),
                )
                .with("serverPort", Term::literal((5000 + (i % 1000)).to_string()))
                .with(
                    "synthValue",
                    Term::literal(params.synth_value().to_string()),
                )
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new(&uri, "info")),
                ),
        )
        .with_resource(
            Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                .with("memory", Term::literal(i.to_string()))
                .with("cpu", Term::literal("600")),
        )
}

/// Generates the documents with indices in `range`.
pub fn benchmark_documents(range: std::ops::Range<u64>, params: &BenchParams) -> Vec<Document> {
    range.map(|i| benchmark_document(i, params)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::benchmark_schema;

    #[test]
    fn documents_validate_against_schema() {
        let schema = benchmark_schema();
        let params = BenchParams::default();
        for doc in benchmark_documents(0..25, &params) {
            schema.validate(&doc).unwrap();
            doc.check_internal_references().unwrap();
            assert_eq!(doc.resources().len(), 2, "Figure 1 shape: two resources");
        }
    }

    #[test]
    fn indices_make_documents_unique() {
        let params = BenchParams::default();
        let a = benchmark_document(1, &params);
        let b = benchmark_document(2, &params);
        assert_ne!(a.uri(), b.uri());
        let mem = |d: &Document, i: u64| {
            d.resource(&UriRef::new(&document_uri(i), "info"))
                .unwrap()
                .property("memory")
                .unwrap()
                .as_int()
                .unwrap()
        };
        assert_eq!(mem(&a, 1), 1);
        assert_eq!(mem(&b, 2), 2);
    }

    #[test]
    fn synth_value_encodes_match_fraction() {
        let params = BenchParams {
            rule_count: 10_000,
            comp_match_fraction: 0.1,
        };
        assert_eq!(params.synth_value(), 1000);
        let params = BenchParams {
            rule_count: 1_000,
            comp_match_fraction: 0.5,
        };
        assert_eq!(params.synth_value(), 500);
    }

    #[test]
    fn provider_uri_matches_document() {
        let params = BenchParams::default();
        let doc = benchmark_document(7, &params);
        assert!(doc
            .resource(&UriRef::from_absolute(provider_uri(7)))
            .is_some());
    }
}
