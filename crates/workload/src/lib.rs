//! # mdv-workload
//!
//! Synthetic workload generators reproducing the benchmark setup of the MDV
//! paper's §4:
//!
//! * [`schema::benchmark_schema`] — the Figure 1 schema (CycleProvider +
//!   ServerInformation, plus the `synthValue` property the COMP rules use),
//! * [`documents::benchmark_document`] — documents "similar to the document
//!   of Figure 1, each containing two resources",
//! * [`rules`] — the four benchmark rule types of Figure 10 (OID, COMP,
//!   PATH, JOIN) with the paper's matching discipline: OID/PATH/JOIN rules
//!   match exactly one document and vice versa; COMP rules match a
//!   configurable percentage of the rule base per document. Beyond the
//!   paper, [`rules::contains_rules`] generates the full-text `contains`
//!   base with a tunable covering-overlap profile that the
//!   matching-scaling study sweeps (DESIGN.md §10),
//! * [`scenario`] — the ObjectGlobe marketplace generator used by examples
//!   (data, function, and cycle providers).
//!
//! `DESIGN.md` §4 holds the workspace-wide module map locating this
//! crate's files.

pub mod documents;
pub mod rules;
pub mod scenario;
pub mod schema;

pub use documents::{benchmark_document, benchmark_documents, BenchParams};
pub use rules::{benchmark_rules, contains_documents, contains_families, contains_rules, RuleType};
pub use schema::{benchmark_schema, objectglobe_schema};
