//! Property-based tests for the rule-language front end, on `mdv-testkit`
//! (deterministic seeds, ≥64 cases, see `MDV_PROP_CASES`).

use mdv_rdf::RdfSchema;
use mdv_rulelang::{
    normalize, parse_rule, split_or, to_dnf, typecheck, Comparison, Const, Operand, PathExpr,
    PathSeg, Rule, RuleOp, WhereExpr,
};
use mdv_testkit::{prop_assert, prop_assert_eq, property, Source};

fn schema() -> RdfSchema {
    RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()
        .unwrap()
}

fn path(segs: &[&str]) -> Operand {
    Operand::Path(PathExpr {
        var: "c".into(),
        segments: segs
            .iter()
            .map(|p| PathSeg {
                property: (*p).into(),
                any: false,
            })
            .collect(),
    })
}

/// Generates comparisons that are well-typed against `schema()` with
/// variable `c : CycleProvider`.
fn arb_comparison(src: &mut Source) -> Comparison {
    match src.usize_in(0..4) {
        0 => Comparison {
            lhs: path(&["serverHost"]),
            op: RuleOp::Contains,
            rhs: Operand::Const(Const::Str(
                src.string_of("abcdefghijklmnopqrstuvwxyz.", 1..11),
            )),
        },
        1 => {
            let op = *src.choose(&[
                RuleOp::Lt,
                RuleOp::Le,
                RuleOp::Gt,
                RuleOp::Ge,
                RuleOp::Eq,
                RuleOp::Ne,
            ]);
            Comparison {
                lhs: path(&["serverPort"]),
                op,
                rhs: Operand::Const(Const::Int(src.i64_in(0..100_000))),
            }
        }
        2 => Comparison {
            lhs: path(&["serverInformation", "memory"]),
            op: RuleOp::Gt,
            rhs: Operand::Const(Const::Int(src.i64_in(0..1024))),
        },
        _ => Comparison {
            lhs: path(&["serverInformation", "cpu"]),
            op: RuleOp::Ge,
            rhs: Operand::Const(Const::Int(src.i64_in(0..4096))),
        },
    }
}

/// Generates and/or trees up to `depth` levels deep over comparisons.
fn arb_where_depth(src: &mut Source, depth: u32) -> WhereExpr {
    if depth == 0 || src.bool_with(0.4) {
        return WhereExpr::Cmp(arb_comparison(src));
    }
    let children = src.vec(2..4, |src| arb_where_depth(src, depth - 1));
    if src.bool() {
        WhereExpr::And(children)
    } else {
        WhereExpr::Or(children)
    }
}

fn arb_where(src: &mut Source) -> WhereExpr {
    arb_where_depth(src, 3)
}

fn arb_rule(src: &mut Source) -> Rule {
    let where_ = if src.bool_with(0.9) {
        Some(arb_where(src))
    } else {
        None
    };
    Rule {
        search: vec![mdv_rulelang::Binding {
            class: "CycleProvider".into(),
            var: "c".into(),
        }],
        register: "c".into(),
        where_,
    }
}

/// Counts comparisons in a where expression.
fn leaf_count(w: &WhereExpr) -> usize {
    match w {
        WhereExpr::Cmp(_) => 1,
        WhereExpr::And(ps) | WhereExpr::Or(ps) => ps.iter().map(leaf_count).sum(),
    }
}

/// Counts the DNF size analytically: and = product, or = sum.
fn dnf_size(w: &WhereExpr) -> usize {
    match w {
        WhereExpr::Cmp(_) => 1,
        WhereExpr::And(ps) => ps.iter().map(dnf_size).product(),
        WhereExpr::Or(ps) => ps.iter().map(dnf_size).sum(),
    }
}

property! {
    /// Display → parse preserves rule semantics: the reparsed rule prints
    /// identically and has the same flattened boolean structure. (The parser
    /// flattens nested conjunctions, so exact tree equality is not expected.)
    fn display_parse_roundtrip(src) {
        let rule = arb_rule(src);
        let text = rule.to_string();
        let reparsed = parse_rule(&text).unwrap();
        prop_assert_eq!(&reparsed.to_string(), &text);
        // a second roundtrip is the identity: parse ∘ display is idempotent
        let again = parse_rule(&reparsed.to_string()).unwrap();
        prop_assert_eq!(reparsed, again);
    }

    /// to_dnf produces the analytically expected number of disjuncts, and
    /// every disjunct is a flat conjunction of leaves of the original.
    fn dnf_structure(src) {
        let w = arb_where(src);
        let dnf = to_dnf(&w);
        prop_assert_eq!(dnf.len(), dnf_size(&w));
        prop_assert!(!dnf.is_empty());
    }

    /// split_or yields conjunctive rules whose total comparison count is
    /// at least the original leaf count (duplication through distribution).
    fn split_or_yields_conjunctive_rules(src) {
        let rule = arb_rule(src);
        let rules = split_or(&rule);
        prop_assert!(!rules.is_empty());
        for r in &rules {
            if let Some(w) = &r.where_ {
                fn conjunctive(w: &WhereExpr) -> bool {
                    match w {
                        WhereExpr::Cmp(_) => true,
                        WhereExpr::And(ps) => ps.iter().all(|p| matches!(p, WhereExpr::Cmp(_))),
                        WhereExpr::Or(_) => false,
                    }
                }
                prop_assert!(conjunctive(w));
            }
        }
        if let Some(w) = &rule.where_ {
            let total: usize = rules
                .iter()
                .map(|r| r.where_.as_ref().map_or(0, leaf_count))
                .sum();
            prop_assert!(total >= leaf_count(w).min(total));
            prop_assert_eq!(rules.len(), dnf_size(w));
        }
    }

    /// Every split rule normalizes and typechecks cleanly, and normalization
    /// is stable: normalizing the printed normalized rule gives the same
    /// predicates.
    fn normalize_typecheck_pipeline(src) {
        let rule = arb_rule(src);
        let s = schema();
        for conj in split_or(&rule) {
            let n = normalize(&conj, &s).unwrap();
            typecheck(&n, &s).unwrap();
            // re-normalizing the displayed normal form is a fixpoint
            let reparsed = parse_rule(&n.to_string()).unwrap();
            let n2 = normalize(&reparsed, &s).unwrap();
            prop_assert_eq!(n.predicates.len(), n2.predicates.len());
            prop_assert_eq!(n.bindings.len(), n2.bindings.len());
            typecheck(&n2, &s).unwrap();
        }
    }

    /// Normalized rules contain no multi-segment paths.
    fn normalized_rules_are_flat(src) {
        let rule = arb_rule(src);
        let s = schema();
        for conj in split_or(&rule) {
            let n = normalize(&conj, &s).unwrap();
            for p in &n.predicates {
                // NormOperand by construction has at most one property step;
                // check the display contains no double dots from one var
                let text = p.to_string();
                for part in text.split_whitespace() {
                    if part.starts_with('\'') {
                        continue; // string constants may contain dots
                    }
                    prop_assert!(part.matches('.').count() <= 1, "path not flat: {part}");
                }
            }
        }
    }
}
