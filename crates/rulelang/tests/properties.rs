//! Property-based tests for the rule-language front end.

use proptest::prelude::*;

use mdv_rdf::RdfSchema;
use mdv_rulelang::{
    normalize, parse_rule, split_or, to_dnf, typecheck, Comparison, Const, Operand, PathExpr,
    PathSeg, Rule, RuleOp, WhereExpr,
};

fn schema() -> RdfSchema {
    RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()
        .unwrap()
}

/// Generates comparisons that are well-typed against `schema()` with
/// variable `c : CycleProvider`.
fn arb_comparison() -> impl Strategy<Value = Comparison> {
    let path = |segs: Vec<&str>| {
        Operand::Path(PathExpr {
            var: "c".into(),
            segments: segs
                .into_iter()
                .map(|p| PathSeg {
                    property: p.into(),
                    any: false,
                })
                .collect(),
        })
    };
    prop_oneof![
        ("[a-z.]{1,10}").prop_map(move |s| Comparison {
            lhs: path(vec!["serverHost"]),
            op: RuleOp::Contains,
            rhs: Operand::Const(Const::Str(s)),
        }),
        (
            0i64..100_000,
            prop_oneof![
                Just(RuleOp::Lt),
                Just(RuleOp::Le),
                Just(RuleOp::Gt),
                Just(RuleOp::Ge),
                Just(RuleOp::Eq),
                Just(RuleOp::Ne)
            ]
        )
            .prop_map(move |(v, op)| Comparison {
                lhs: path(vec!["serverPort"]),
                op,
                rhs: Operand::Const(Const::Int(v)),
            }),
        (0i64..1024).prop_map(move |v| Comparison {
            lhs: path(vec!["serverInformation", "memory"]),
            op: RuleOp::Gt,
            rhs: Operand::Const(Const::Int(v)),
        }),
        (0i64..4096).prop_map(move |v| Comparison {
            lhs: path(vec!["serverInformation", "cpu"]),
            op: RuleOp::Ge,
            rhs: Operand::Const(Const::Int(v)),
        }),
    ]
}

/// Generates arbitrarily nested and/or where expressions.
fn arb_where() -> impl Strategy<Value = WhereExpr> {
    arb_comparison()
        .prop_map(WhereExpr::Cmp)
        .prop_recursive(3, 12, 3, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 2..4).prop_map(WhereExpr::And),
                prop::collection::vec(inner, 2..4).prop_map(WhereExpr::Or),
            ]
        })
}

fn arb_rule() -> impl Strategy<Value = Rule> {
    prop::option::of(arb_where()).prop_map(|where_| Rule {
        search: vec![mdv_rulelang::Binding {
            class: "CycleProvider".into(),
            var: "c".into(),
        }],
        register: "c".into(),
        where_,
    })
}

/// Counts comparisons in a where expression.
fn leaf_count(w: &WhereExpr) -> usize {
    match w {
        WhereExpr::Cmp(_) => 1,
        WhereExpr::And(ps) | WhereExpr::Or(ps) => ps.iter().map(leaf_count).sum(),
    }
}

/// Counts the DNF size analytically: and = product, or = sum.
fn dnf_size(w: &WhereExpr) -> usize {
    match w {
        WhereExpr::Cmp(_) => 1,
        WhereExpr::And(ps) => ps.iter().map(dnf_size).product(),
        WhereExpr::Or(ps) => ps.iter().map(dnf_size).sum(),
    }
}

proptest! {
    /// Display → parse preserves rule semantics: the reparsed rule prints
    /// identically and has the same flattened boolean structure. (The parser
    /// flattens nested conjunctions, so exact tree equality is not expected.)
    #[test]
    fn display_parse_roundtrip(rule in arb_rule()) {
        let text = rule.to_string();
        let reparsed = parse_rule(&text).unwrap();
        prop_assert_eq!(&reparsed.to_string(), &text);
        // a second roundtrip is the identity: parse ∘ display is idempotent
        let again = parse_rule(&reparsed.to_string()).unwrap();
        prop_assert_eq!(reparsed, again);
    }

    /// to_dnf produces the analytically expected number of disjuncts, and
    /// every disjunct is a flat conjunction of leaves of the original.
    #[test]
    fn dnf_structure(w in arb_where()) {
        let dnf = to_dnf(&w);
        prop_assert_eq!(dnf.len(), dnf_size(&w));
        prop_assert!(!dnf.is_empty());
    }

    /// split_or yields conjunctive rules whose total comparison count is
    /// at least the original leaf count (duplication through distribution).
    #[test]
    fn split_or_yields_conjunctive_rules(rule in arb_rule()) {
        let rules = split_or(&rule);
        prop_assert!(!rules.is_empty());
        for r in &rules {
            if let Some(w) = &r.where_ {
                fn conjunctive(w: &WhereExpr) -> bool {
                    match w {
                        WhereExpr::Cmp(_) => true,
                        WhereExpr::And(ps) => ps.iter().all(|p| matches!(p, WhereExpr::Cmp(_))),
                        WhereExpr::Or(_) => false,
                    }
                }
                prop_assert!(conjunctive(w));
            }
        }
        if let Some(w) = &rule.where_ {
            let total: usize = rules
                .iter()
                .map(|r| r.where_.as_ref().map_or(0, leaf_count))
                .sum();
            prop_assert!(total >= leaf_count(w).min(total));
            prop_assert_eq!(rules.len(), dnf_size(w));
        }
    }

    /// Every split rule normalizes and typechecks cleanly, and normalization
    /// is stable: normalizing the printed normalized rule gives the same
    /// predicates.
    #[test]
    fn normalize_typecheck_pipeline(rule in arb_rule()) {
        let s = schema();
        for conj in split_or(&rule) {
            let n = normalize(&conj, &s).unwrap();
            typecheck(&n, &s).unwrap();
            // re-normalizing the displayed normal form is a fixpoint
            let reparsed = parse_rule(&n.to_string()).unwrap();
            let n2 = normalize(&reparsed, &s).unwrap();
            prop_assert_eq!(n.predicates.len(), n2.predicates.len());
            prop_assert_eq!(n.bindings.len(), n2.bindings.len());
            typecheck(&n2, &s).unwrap();
        }
    }

    /// Normalized rules contain no multi-segment paths.
    #[test]
    fn normalized_rules_are_flat(rule in arb_rule()) {
        let s = schema();
        for conj in split_or(&rule) {
            let n = normalize(&conj, &s).unwrap();
            for p in &n.predicates {
                // NormOperand by construction has at most one property step;
                // check the display contains no double dots from one var
                let text = p.to_string();
                for part in text.split_whitespace() {
                    if part.starts_with('\'') {
                        continue; // string constants may contain dots
                    }
                    prop_assert!(part.matches('.').count() <= 1, "path not flat: {part}");
                }
            }
        }
    }
}
