//! # mdv-rulelang
//!
//! MDV's subscription-rule and query language (paper §2.3):
//!
//! ```text
//! search Extension e register e where Predicates(e)
//! ```
//!
//! The crate provides the full front-end pipeline:
//!
//! 1. [`parse_rule`] — lexing and parsing into a [`Rule`] AST,
//! 2. [`split_or`] — `or`-elimination ("rules containing it can be split up
//!    easily", §2.3),
//! 3. [`normalize()`] — path-expression splitting into reference joins
//!    (§3.3), producing a [`NormalizedRule`],
//! 4. [`typecheck()`] — schema validation of classes, properties, operators,
//!    and the set-valued `?` operator.
//!
//! ```
//! use mdv_rdf::RdfSchema;
//! use mdv_rulelang::{parse_rule, normalize, typecheck};
//!
//! let schema = RdfSchema::builder()
//!     .class("ServerInformation", |c| c.int("memory").int("cpu"))
//!     .class("CycleProvider", |c| c
//!         .str("serverHost")
//!         .strong_ref("serverInformation", "ServerInformation"))
//!     .build().unwrap();
//!
//! // the paper's Example 1
//! let rule = parse_rule(
//!     "search CycleProvider c register c \
//!      where c.serverHost contains 'uni-passau.de' \
//!      and c.serverInformation.memory > 64").unwrap();
//! let normalized = normalize(&rule, &schema).unwrap();
//! typecheck(&normalized, &schema).unwrap();
//! // normalization introduced the ServerInformation binding and the join
//! assert_eq!(normalized.bindings.len(), 2);
//! assert_eq!(normalized.predicates.len(), 3);
//! ```
//!
//! `DESIGN.md` §4 holds the workspace-wide module map locating this
//! crate's files.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod rewrite;
pub mod token;
pub mod typecheck;

pub use ast::{
    Binding, Comparison, Const, Operand, PathExpr, PathSeg, Query, Rule, RuleOp, WhereExpr,
};
pub use error::{Error, Result};
pub use lexer::lex;
pub use normalize::{normalize, NormOperand, NormPred, NormalizedRule};
pub use parser::parse_rule;
pub use rewrite::{split_or, to_dnf};
pub use typecheck::typecheck;
