//! Schema-based type checking of normalized rules.
//!
//! The checks mirror the paper's restrictions:
//! * every variable is bound to a schema class (normalization guarantees it),
//! * properties exist on the classes they are accessed through,
//! * ordering operators (`< <= > >=`) apply "only on numerical constants"
//!   (§3.3.4) and numeric properties,
//! * `contains` applies to string properties and string patterns,
//! * the `?` any-operator is required for set-valued properties and
//!   forbidden elsewhere,
//! * reference joins connect compatible classes.

use mdv_rdf::{LiteralType, Range, RdfSchema};

use crate::ast::{Const, RuleOp};
use crate::error::{Error, Result};
use crate::normalize::{NormOperand, NormPred, NormalizedRule};

/// Validates a normalized rule against the schema.
pub fn typecheck(rule: &NormalizedRule, schema: &RdfSchema) -> Result<()> {
    for b in &rule.bindings {
        if !schema.has_class(&b.class) {
            return Err(Error::Type(format!("unknown class '{}'", b.class)));
        }
    }
    for pred in &rule.predicates {
        check_pred(rule, schema, pred)?;
    }
    Ok(())
}

/// The resolved type of a normalized operand.
enum OperandType<'a> {
    /// A resource of the given class (Subject operand or reference property).
    Resource(&'a str),
    Literal(LiteralType),
    ConstNum,
    ConstStr,
}

fn operand_type<'a>(
    rule: &NormalizedRule,
    schema: &'a RdfSchema,
    op: &'a NormOperand,
) -> Result<OperandType<'a>> {
    match op {
        NormOperand::Subject(var) => {
            let class = rule
                .class_of(var)
                .ok_or_else(|| Error::Type(format!("variable '{var}' is not bound")))?;
            // class names were validated up front; borrow the schema's copy
            let class = schema
                .class(class)
                .ok_or_else(|| Error::Type(format!("unknown class '{class}'")))?;
            Ok(OperandType::Resource(&class.name))
        }
        NormOperand::Prop { var, prop, any } => {
            let class = rule
                .class_of(var)
                .ok_or_else(|| Error::Type(format!("variable '{var}' is not bound")))?;
            let def = schema
                .property(class, prop)
                .ok_or_else(|| Error::Type(format!("class '{class}' has no property '{prop}'")))?;
            if def.set_valued && !*any {
                return Err(Error::Type(format!(
                    "property '{prop}' of class '{class}' is set-valued; use the '?' operator"
                )));
            }
            if !def.set_valued && *any {
                return Err(Error::Type(format!(
                    "property '{prop}' of class '{class}' is single-valued; '?' does not apply"
                )));
            }
            match &def.range {
                Range::Literal(lt) => Ok(OperandType::Literal(*lt)),
                Range::Class { class, .. } => Ok(OperandType::Resource(class)),
            }
        }
        NormOperand::Const(Const::Str(_)) => Ok(OperandType::ConstStr),
        NormOperand::Const(_) => Ok(OperandType::ConstNum),
    }
}

fn is_numeric(lt: LiteralType) -> bool {
    matches!(lt, LiteralType::Int | LiteralType::Float)
}

fn check_pred(rule: &NormalizedRule, schema: &RdfSchema, pred: &NormPred) -> Result<()> {
    use OperandType::*;
    let lt = operand_type(rule, schema, &pred.lhs)?;
    let rt = operand_type(rule, schema, &pred.rhs)?;
    let fail = |msg: String| Err(Error::Type(format!("in predicate '{pred}': {msg}")));

    if pred.op.is_ordering() {
        return match (&lt, &rt) {
            (Literal(a), ConstNum) if is_numeric(*a) => Ok(()),
            (Literal(a), Literal(b)) if is_numeric(*a) && is_numeric(*b) => Ok(()),
            _ => fail(format!(
                "operator '{}' requires numeric properties/constants",
                pred.op
            )),
        };
    }
    if pred.op == RuleOp::Contains {
        return match (&lt, &rt) {
            (Literal(LiteralType::Str), ConstStr) => Ok(()),
            (Literal(LiteralType::Str), Literal(LiteralType::Str)) => Ok(()),
            _ => fail("'contains' requires a string property and a string pattern".into()),
        };
    }
    // Eq / Ne
    match (&lt, &rt) {
        // resource identity against a URI string (OID rules) or between
        // compatible classes (reference joins, intersections)
        (Resource(_), ConstStr) | (ConstStr, Resource(_)) => Ok(()),
        (Resource(a), Resource(b)) => {
            if schema.is_subclass_of(a, b) || schema.is_subclass_of(b, a) {
                Ok(())
            } else {
                fail(format!(
                    "classes '{a}' and '{b}' are unrelated; the join can never match"
                ))
            }
        }
        (Literal(a), ConstNum) if is_numeric(*a) => Ok(()),
        (Literal(LiteralType::Str), ConstStr) => Ok(()),
        (Literal(LiteralType::Bool), ConstStr) => {
            fail("boolean property compared against a string".into())
        }
        (Literal(a), Literal(b)) => {
            let compatible = a == b || (is_numeric(*a) && is_numeric(*b));
            if compatible {
                Ok(())
            } else {
                fail(format!(
                    "properties of types {a} and {b} are not comparable"
                ))
            }
        }
        (Literal(a), ConstNum) => fail(format!("property of type {a} compared to a number")),
        (Literal(a), ConstStr) => fail(format!("property of type {a} compared to a string")),
        (Resource(_), Literal(_)) | (Literal(_), Resource(_)) => {
            fail("cannot compare a resource with a literal property".into())
        }
        (Resource(_), ConstNum) | (ConstNum, Resource(_)) => {
            fail("cannot compare a resource with a number".into())
        }
        (ConstNum | ConstStr, _) => {
            // normalization puts constants on the right; a leftover
            // const-const predicate would have been folded
            fail("unexpected constant on the left-hand side".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::parser::parse_rule;
    use mdv_rdf::RdfSchema;

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("Provider", |c| c.str("name"))
            .class("CycleProvider", |c| {
                c.extends("Provider")
                    .str("serverHost")
                    .int("serverPort")
                    .bool("active")
                    .str_set("tags")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .class("DataProvider", |c| c.extends("Provider").str("format"))
            .build()
            .unwrap()
    }

    fn check(text: &str) -> Result<()> {
        let s = schema();
        let n = normalize(&parse_rule(text).unwrap(), &s)?;
        typecheck(&n, &s)
    }

    #[test]
    fn valid_rules_pass() {
        check("search CycleProvider c register c").unwrap();
        check("search CycleProvider c register c where c.serverHost contains 'x'").unwrap();
        check("search CycleProvider c register c where c.serverInformation.memory > 64").unwrap();
        check("search CycleProvider c register c where c = 'doc.rdf#host'").unwrap();
        check("search CycleProvider c register c where c.tags? contains 'db'").unwrap();
        check(
            "search CycleProvider c, ServerInformation s register c \
             where c.serverInformation = s and s.memory > 64",
        )
        .unwrap();
        // numeric property to numeric property join
        check(
            "search ServerInformation a, ServerInformation b register a \
             where a.memory = b.cpu",
        )
        .unwrap();
    }

    #[test]
    fn ordering_requires_numeric() {
        assert!(check("search CycleProvider c register c where c.serverHost > 5").is_err());
        assert!(check("search CycleProvider c register c where c.serverPort > 'x'").is_err());
        assert!(check("search CycleProvider c register c where c.serverPort >= 1024").is_ok());
    }

    #[test]
    fn contains_requires_strings() {
        assert!(
            check("search CycleProvider c register c where c.serverPort contains 'x'").is_err()
        );
        assert!(check("search CycleProvider c register c where c.serverHost contains 5").is_err());
    }

    #[test]
    fn unknown_property_rejected() {
        let err = check("search CycleProvider c register c where c.nothere = 1").unwrap_err();
        assert!(err.to_string().contains("no property"));
    }

    #[test]
    fn inherited_property_accepted() {
        check("search CycleProvider c register c where c.name = 'x'").unwrap();
    }

    #[test]
    fn set_valued_needs_any_operator() {
        let err =
            check("search CycleProvider c register c where c.tags contains 'db'").unwrap_err();
        assert!(err.to_string().contains("set-valued"));
        let err = check("search CycleProvider c register c where c.serverHost? contains 'db'")
            .unwrap_err();
        assert!(err.to_string().contains("single-valued"));
    }

    #[test]
    fn unrelated_class_join_rejected() {
        let err = check("search CycleProvider c, ServerInformation s register c where c = s")
            .unwrap_err();
        assert!(err.to_string().contains("unrelated"));
    }

    #[test]
    fn subclass_join_accepted() {
        check("search CycleProvider c, Provider p register c where c = p").unwrap();
    }

    #[test]
    fn reference_vs_literal_comparison_rejected() {
        let err =
            check("search CycleProvider c register c where c.serverInformation = 64").unwrap_err();
        assert!(err.to_string().contains("number"));
    }

    #[test]
    fn reference_vs_uri_string_accepted() {
        check("search CycleProvider c register c where c.serverInformation = 'doc.rdf#info'")
            .unwrap();
    }

    #[test]
    fn type_mismatched_value_join_rejected() {
        let err = check(
            "search CycleProvider c, ServerInformation s register c \
             where c.serverHost = s.memory",
        )
        .unwrap_err();
        assert!(err.to_string().contains("not comparable"));
    }
}
