//! Boolean rewrites: `or`-elimination.
//!
//! The paper's implementation "does not support an or operator, but rules
//! containing it can be split up easily into rules without it" (§2.3). This
//! module performs that split: the where part is brought into disjunctive
//! normal form and the rule becomes one conjunctive rule per disjunct. The
//! union of their matches equals the original rule's matches.

use crate::ast::{Comparison, Rule, WhereExpr};

/// Converts a where expression to DNF: a disjunction (outer Vec) of
/// conjunctions (inner Vecs) of comparisons.
pub fn to_dnf(expr: &WhereExpr) -> Vec<Vec<Comparison>> {
    match expr {
        WhereExpr::Cmp(c) => vec![vec![c.clone()]],
        WhereExpr::Or(parts) => parts.iter().flat_map(to_dnf).collect(),
        WhereExpr::And(parts) => {
            // distribute: AND of DNFs = cross product of their disjuncts
            let mut acc: Vec<Vec<Comparison>> = vec![Vec::new()];
            for part in parts {
                let part_dnf = to_dnf(part);
                let mut next = Vec::with_capacity(acc.len() * part_dnf.len());
                for prefix in &acc {
                    for disjunct in &part_dnf {
                        let mut merged = prefix.clone();
                        merged.extend(disjunct.iter().cloned());
                        next.push(merged);
                    }
                }
                acc = next;
            }
            acc
        }
    }
}

/// Splits a rule with `or` into equivalent purely conjunctive rules. Rules
/// that are already conjunctive (or have no where part) come back unchanged
/// as a single element.
pub fn split_or(rule: &Rule) -> Vec<Rule> {
    let Some(where_) = &rule.where_ else {
        return vec![rule.clone()];
    };
    to_dnf(where_)
        .into_iter()
        .map(|conj| Rule {
            search: rule.search.clone(),
            register: rule.register.clone(),
            where_: Some(if conj.len() == 1 {
                WhereExpr::Cmp(conj.into_iter().next().expect("len checked"))
            } else {
                WhereExpr::And(conj.into_iter().map(WhereExpr::Cmp).collect())
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    fn dnf_of(rule_text: &str) -> Vec<Vec<Comparison>> {
        let rule = parse_rule(rule_text).unwrap();
        to_dnf(rule.where_.as_ref().unwrap())
    }

    #[test]
    fn single_comparison_is_one_disjunct() {
        let d = dnf_of("search C c register c where c.a = 1");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].len(), 1);
    }

    #[test]
    fn conjunction_stays_single_disjunct() {
        let d = dnf_of("search C c register c where c.a = 1 and c.b = 2 and c.d = 3");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].len(), 3);
    }

    #[test]
    fn or_splits() {
        let d = dnf_of("search C c register c where c.a = 1 or c.b = 2");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn and_distributes_over_or() {
        // a and (b or c) → (a and b) or (a and c)
        let d = dnf_of("search C c register c where c.a = 1 and (c.b = 2 or c.b = 3)");
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|conj| conj.len() == 2));
        // (a or b) and (c or d) → 4 disjuncts
        let d = dnf_of("search C c register c where (c.a = 1 or c.a = 2) and (c.b = 3 or c.b = 4)");
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn split_or_produces_conjunctive_rules() {
        let rule =
            parse_rule("search C c register c where c.a = 1 and (c.b = 2 or c.b = 3)").unwrap();
        let rules = split_or(&rule);
        assert_eq!(rules.len(), 2);
        for r in &rules {
            assert_eq!(r.search, rule.search);
            assert_eq!(r.register, rule.register);
            match r.where_.as_ref().unwrap() {
                WhereExpr::And(parts) => {
                    assert!(parts.iter().all(|p| matches!(p, WhereExpr::Cmp(_))))
                }
                WhereExpr::Cmp(_) => {}
                other => panic!("not conjunctive: {other:?}"),
            }
        }
    }

    #[test]
    fn split_or_identity_without_or() {
        let rule = parse_rule("search C c register c where c.a = 1 and c.b = 2").unwrap();
        assert_eq!(split_or(&rule), vec![rule.clone()]);
        let no_where = parse_rule("search C c register c").unwrap();
        assert_eq!(split_or(&no_where), vec![no_where.clone()]);
    }
}
