//! Errors of the rule language pipeline.

use std::fmt;

pub type Result<T> = std::result::Result<T, Error>;

#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Lexical error with position.
    Lex {
        line: usize,
        col: usize,
        message: String,
    },
    /// Syntax error with position.
    Parse {
        line: usize,
        col: usize,
        message: String,
    },
    /// The rule references something the schema does not define, or uses an
    /// operator on incompatible types.
    Type(String),
    /// The rule's where part is statically false and can never match.
    Unsatisfiable,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { line, col, message } => {
                write!(f, "lexical error at {line}:{col}: {message}")
            }
            Error::Parse { line, col, message } => {
                write!(f, "syntax error at {line}:{col}: {message}")
            }
            Error::Type(msg) => write!(f, "type error: {msg}"),
            Error::Unsatisfiable => f.write_str("rule can never match (statically false)"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = Error::Parse {
            line: 2,
            col: 5,
            message: "expected 'register'".into(),
        };
        assert_eq!(e.to_string(), "syntax error at 2:5: expected 'register'");
    }
}
