//! Rule normalization (paper §3.3).
//!
//! A rule is *normalized* when its search part binds a variable for every
//! class used in the where part and no predicate contains a multi-step path
//! expression — only direct property accesses. Path expressions are split by
//! introducing fresh variables and reference-join predicates:
//!
//! ```text
//! search CycleProvider c register c
//! where c.serverInformation.memory > 64
//! ```
//! becomes
//! ```text
//! search CycleProvider c, ServerInformation v1 register c
//! where c.serverInformation = v1 and v1.memory > 64
//! ```
//!
//! Shared path prefixes within one rule reuse the same generated variable,
//! matching the paper's §3.3.1 example where `s.memory > 64 and s.cpu > 500`
//! bind through a single `ServerInformation s`.

use std::collections::HashMap;
use std::fmt;

use mdv_rdf::RdfSchema;

use crate::ast::{Binding, Comparison, Const, Operand, PathExpr, Rule, RuleOp, WhereExpr};
use crate::error::{Error, Result};

/// An operand of a normalized predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum NormOperand {
    /// The resource bound to a variable, identified by its URI reference —
    /// maps to the `rdf#subject` pseudo-property in filter tables.
    Subject(String),
    /// A direct property access `var.prop`, `any` for the `?` operator.
    Prop {
        var: String,
        prop: String,
        any: bool,
    },
    /// A constant.
    Const(Const),
}

impl NormOperand {
    /// The variable this operand depends on, if any.
    pub fn var(&self) -> Option<&str> {
        match self {
            NormOperand::Subject(v) | NormOperand::Prop { var: v, .. } => Some(v),
            NormOperand::Const(_) => None,
        }
    }
}

impl fmt::Display for NormOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormOperand::Subject(v) => write!(f, "{v}"),
            NormOperand::Prop { var, prop, any } => {
                write!(f, "{var}.{prop}{}", if *any { "?" } else { "" })
            }
            NormOperand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A normalized predicate: both operands reference at most one property step.
/// Constants, when present, are always on the right-hand side.
#[derive(Debug, Clone, PartialEq)]
pub struct NormPred {
    pub lhs: NormOperand,
    pub op: RuleOp,
    pub rhs: NormOperand,
}

impl NormPred {
    /// True when one side is a constant (a triggering-rule predicate,
    /// paper §3.3.1).
    pub fn has_const(&self) -> bool {
        matches!(self.rhs, NormOperand::Const(_))
    }

    /// True when both sides reference variables (a join predicate).
    pub fn is_join(&self) -> bool {
        self.lhs.var().is_some() && self.rhs.var().is_some()
    }
}

impl fmt::Display for NormPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A normalized rule: complete bindings, flat predicates.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedRule {
    pub bindings: Vec<Binding>,
    pub register: String,
    pub predicates: Vec<NormPred>,
}

impl NormalizedRule {
    pub fn class_of(&self, var: &str) -> Option<&str> {
        self.bindings
            .iter()
            .find(|b| b.var == var)
            .map(|b| b.class.as_str())
    }

    /// The type of the rule: the class of the registered variable.
    pub fn register_class(&self) -> &str {
        self.class_of(&self.register)
            .expect("register variable is bound")
    }
}

impl fmt::Display for NormalizedRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("search ")?;
        for (i, b) in self.bindings.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, " register {}", self.register)?;
        for (i, p) in self.predicates.iter().enumerate() {
            f.write_str(if i == 0 { " where " } else { " and " })?;
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Normalizes a conjunctive rule against a schema. Rules containing `or`
/// must be split with [`crate::rewrite::split_or`] first.
pub fn normalize(rule: &Rule, schema: &RdfSchema) -> Result<NormalizedRule> {
    let mut n = Normalizer {
        schema,
        bindings: rule.search.clone(),
        predicates: Vec::new(),
        prefix_vars: HashMap::new(),
        gensym: 0,
    };
    for b in &rule.search {
        if !schema.has_class(&b.class) {
            return Err(Error::Type(format!(
                "unknown class '{}' in search part",
                b.class
            )));
        }
    }
    if let Some(where_) = &rule.where_ {
        for cmp in flatten_conjunction(where_)? {
            n.add_comparison(&cmp)?;
        }
    }
    Ok(NormalizedRule {
        bindings: n.bindings,
        register: rule.register.clone(),
        predicates: n.predicates,
    })
}

fn flatten_conjunction(expr: &WhereExpr) -> Result<Vec<Comparison>> {
    match expr {
        WhereExpr::Cmp(c) => Ok(vec![c.clone()]),
        WhereExpr::And(parts) => {
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                out.extend(flatten_conjunction(p)?);
            }
            Ok(out)
        }
        WhereExpr::Or(_) => Err(Error::Type(
            "rule contains 'or'; split it with rewrite::split_or before normalizing".into(),
        )),
    }
}

struct Normalizer<'a> {
    schema: &'a RdfSchema,
    bindings: Vec<Binding>,
    predicates: Vec<NormPred>,
    /// Memoizes (var, path-prefix) → generated variable so shared prefixes
    /// bind through one variable.
    prefix_vars: HashMap<(String, Vec<String>), String>,
    gensym: usize,
}

impl Normalizer<'_> {
    fn fresh_var(&mut self) -> String {
        loop {
            self.gensym += 1;
            let candidate = format!("v{}", self.gensym);
            if !self.bindings.iter().any(|b| b.var == candidate) {
                return candidate;
            }
        }
    }

    fn class_of(&self, var: &str) -> Result<String> {
        self.bindings
            .iter()
            .find(|b| b.var == var)
            .map(|b| b.class.clone())
            .ok_or_else(|| Error::Type(format!("variable '{var}' is not bound in the search part")))
    }

    /// Reduces a path expression to a normalized operand, introducing
    /// intermediate variables and reference joins for all but the last step.
    fn reduce_path(&mut self, path: &PathExpr) -> Result<NormOperand> {
        let mut cur_var = path.var.clone();
        let mut cur_class = self.class_of(&cur_var)?;
        if path.segments.is_empty() {
            return Ok(NormOperand::Subject(cur_var));
        }
        let mut prefix: Vec<String> = Vec::new();
        for seg in &path.segments[..path.segments.len() - 1] {
            let target = self
                .schema
                .range_class(&cur_class, &seg.property)
                .ok_or_else(|| {
                    Error::Type(format!(
                        "property '{}' of class '{cur_class}' is not a reference and cannot \
                     appear mid-path",
                        seg.property
                    ))
                })?;
            let target = target.to_owned();
            prefix.push(seg.property.clone());
            let key = (path.var.clone(), prefix.clone());
            let next_var = match self.prefix_vars.get(&key) {
                Some(v) => v.clone(),
                None => {
                    let v = self.fresh_var();
                    self.bindings.push(Binding {
                        class: target.clone(),
                        var: v.clone(),
                    });
                    self.predicates.push(NormPred {
                        lhs: NormOperand::Prop {
                            var: cur_var.clone(),
                            prop: seg.property.clone(),
                            any: seg.any,
                        },
                        op: RuleOp::Eq,
                        rhs: NormOperand::Subject(v.clone()),
                    });
                    self.prefix_vars.insert(key, v.clone());
                    v
                }
            };
            cur_var = next_var;
            cur_class = target;
        }
        let last = path.segments.last().expect("segments checked non-empty");
        Ok(NormOperand::Prop {
            var: cur_var,
            prop: last.property.clone(),
            any: last.any,
        })
    }

    fn add_comparison(&mut self, cmp: &Comparison) -> Result<()> {
        let lhs = self.reduce_operand(&cmp.lhs)?;
        let rhs = self.reduce_operand(&cmp.rhs)?;
        let (lhs, op, rhs) = match (lhs, rhs) {
            // fold constant-only predicates
            (NormOperand::Const(a), NormOperand::Const(b)) => {
                return if const_cmp(&a, cmp.op, &b)? {
                    Ok(()) // statically true: drop
                } else {
                    Err(Error::Unsatisfiable)
                };
            }
            // constants go to the right, mirroring the operator
            (NormOperand::Const(c), rhs) => {
                let op = cmp.op.mirrored().ok_or_else(|| {
                    Error::Type(format!(
                        "'{c} contains <path>' is not supported; the pattern must be the \
                         right-hand operand"
                    ))
                })?;
                (rhs, op, NormOperand::Const(c))
            }
            (lhs, rhs) => (lhs, cmp.op, rhs),
        };
        self.predicates.push(NormPred { lhs, op, rhs });
        Ok(())
    }

    fn reduce_operand(&mut self, op: &Operand) -> Result<NormOperand> {
        match op {
            Operand::Const(c) => Ok(NormOperand::Const(c.clone())),
            Operand::Path(p) => self.reduce_path(p),
        }
    }
}

/// Statically evaluates `a op b` on constants.
fn const_cmp(a: &Const, op: RuleOp, b: &Const) -> Result<bool> {
    let ord = match (a, b) {
        (Const::Int(x), Const::Int(y)) => x.partial_cmp(y),
        (Const::Float(x), Const::Float(y)) => x.partial_cmp(y),
        (Const::Int(x), Const::Float(y)) => (*x as f64).partial_cmp(y),
        (Const::Float(x), Const::Int(y)) => x.partial_cmp(&(*y as f64)),
        (Const::Str(x), Const::Str(y)) => Some(x.cmp(y)),
        _ => None,
    };
    Ok(match op {
        RuleOp::Contains => match (a, b) {
            (Const::Str(x), Const::Str(y)) => x.contains(y.as_str()),
            _ => false,
        },
        RuleOp::Eq => ord == Some(std::cmp::Ordering::Equal),
        RuleOp::Ne => ord.is_some() && ord != Some(std::cmp::Ordering::Equal),
        RuleOp::Lt => ord == Some(std::cmp::Ordering::Less),
        RuleOp::Gt => ord == Some(std::cmp::Ordering::Greater),
        RuleOp::Le => matches!(
            ord,
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        ),
        RuleOp::Ge => {
            matches!(
                ord,
                Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
            )
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;
    use mdv_rdf::RdfSchema;

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("NetworkCard", |c| c.int("bandwidth"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .int("serverPort")
                    .str_set("tags")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn norm(text: &str) -> NormalizedRule {
        normalize(&parse_rule(text).unwrap(), &schema()).unwrap()
    }

    #[test]
    fn paper_example1_normalization() {
        // §3.3: the normalized form of Example 1
        let n = norm(
            "search CycleProvider c register c \
             where c.serverHost contains 'uni-passau.de' \
             and c.serverInformation.memory > 64",
        );
        assert_eq!(n.bindings.len(), 2);
        assert_eq!(n.bindings[1].class, "ServerInformation");
        let v = &n.bindings[1].var;
        assert_eq!(
            n.to_string(),
            format!(
                "search CycleProvider c, ServerInformation {v} register c \
                 where c.serverHost contains 'uni-passau.de' \
                 and c.serverInformation = {v} and {v}.memory > 64"
            )
        );
    }

    #[test]
    fn shared_prefix_uses_one_variable() {
        // §3.3.1's rule: memory and cpu access share the serverInformation hop
        let n = norm(
            "search CycleProvider c register c \
             where c.serverInformation.memory > 64 and c.serverInformation.cpu > 500",
        );
        assert_eq!(n.bindings.len(), 2, "one shared intermediate variable");
        // one ref-join + two comparisons
        assert_eq!(n.predicates.len(), 3);
        let joins = n.predicates.iter().filter(|p| p.is_join()).count();
        assert_eq!(joins, 1);
    }

    #[test]
    fn already_normalized_rule_unchanged() {
        let n = norm(
            "search CycleProvider c, ServerInformation s register c \
             where c.serverInformation = s and s.memory > 64",
        );
        assert_eq!(n.bindings.len(), 2);
        assert_eq!(n.predicates.len(), 2);
    }

    #[test]
    fn bare_variable_becomes_subject() {
        let n = norm("search CycleProvider c register c where c = 'doc.rdf#host'");
        assert_eq!(n.predicates.len(), 1);
        assert!(matches!(n.predicates[0].lhs, NormOperand::Subject(_)));
        assert!(n.predicates[0].has_const());
    }

    #[test]
    fn constant_moves_right_with_mirrored_op() {
        let n = norm("search ServerInformation s register s where 64 < s.memory");
        assert_eq!(n.predicates[0].op, RuleOp::Gt);
        assert!(matches!(n.predicates[0].lhs, NormOperand::Prop { .. }));
    }

    #[test]
    fn const_contains_path_rejected() {
        let err = normalize(
            &parse_rule("search CycleProvider c register c where 'abc' contains c.serverHost")
                .unwrap(),
            &schema(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("not supported"));
    }

    #[test]
    fn static_predicates_fold() {
        let n = norm("search CycleProvider c register c where 1 = 1");
        assert!(n.predicates.is_empty());
        let err = normalize(
            &parse_rule("search CycleProvider c register c where 1 = 2").unwrap(),
            &schema(),
        )
        .unwrap_err();
        assert_eq!(err, Error::Unsatisfiable);
    }

    #[test]
    fn unknown_class_rejected() {
        let err =
            normalize(&parse_rule("search Nope c register c").unwrap(), &schema()).unwrap_err();
        assert!(err.to_string().contains("unknown class"));
    }

    #[test]
    fn unbound_variable_rejected() {
        let err = normalize(
            &parse_rule("search CycleProvider c register c where x.memory > 1").unwrap(),
            &schema(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("not bound"));
    }

    #[test]
    fn literal_mid_path_rejected() {
        let err = normalize(
            &parse_rule("search CycleProvider c register c where c.serverHost.x = 1").unwrap(),
            &schema(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("mid-path"));
    }

    #[test]
    fn or_must_be_split_first() {
        let err = normalize(
            &parse_rule(
                "search CycleProvider c register c where c.serverPort = 1 or c.serverPort = 2",
            )
            .unwrap(),
            &schema(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("split"));
    }

    #[test]
    fn any_operator_survives_normalization() {
        let n = norm("search CycleProvider c register c where c.tags? contains 'db'");
        match &n.predicates[0].lhs {
            NormOperand::Prop { any, prop, .. } => {
                assert!(*any);
                assert_eq!(prop, "tags");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn register_class_resolution() {
        let n = norm("search CycleProvider c register c where c.serverInformation.memory > 64");
        assert_eq!(n.register_class(), "CycleProvider");
    }

    #[test]
    fn gensym_avoids_collisions() {
        // a user variable named v1 must not clash with generated names
        let n = normalize(
            &parse_rule(
                "search CycleProvider v1 register v1 where v1.serverInformation.memory > 64",
            )
            .unwrap(),
            &schema(),
        )
        .unwrap();
        let vars: Vec<&str> = n.bindings.iter().map(|b| b.var.as_str()).collect();
        assert_eq!(vars.len(), 2);
        assert_ne!(vars[0], vars[1]);
    }
}
