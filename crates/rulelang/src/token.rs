//! Tokens of the MDV rule language.

use std::fmt;

/// A lexical token with its source position (for error reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub col: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // keywords
    Search,
    Register,
    Where,
    And,
    Or,
    Contains,
    // literals & names
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    // punctuation & operators
    Comma,
    Dot,
    Question,
    LParen,
    RParen,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// End of input (always the last token).
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Search => f.write_str("search"),
            TokenKind::Register => f.write_str("register"),
            TokenKind::Where => f.write_str("where"),
            TokenKind::And => f.write_str("and"),
            TokenKind::Or => f.write_str("or"),
            TokenKind::Contains => f.write_str("contains"),
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::Float(x) => write!(f, "float {x}"),
            TokenKind::Comma => f.write_str("','"),
            TokenKind::Dot => f.write_str("'.'"),
            TokenKind::Question => f.write_str("'?'"),
            TokenKind::LParen => f.write_str("'('"),
            TokenKind::RParen => f.write_str("')'"),
            TokenKind::Eq => f.write_str("'='"),
            TokenKind::Ne => f.write_str("'!='"),
            TokenKind::Lt => f.write_str("'<'"),
            TokenKind::Le => f.write_str("'<='"),
            TokenKind::Gt => f.write_str("'>'"),
            TokenKind::Ge => f.write_str("'>='"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}
