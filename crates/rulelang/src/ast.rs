//! Abstract syntax of the MDV rule language (paper §2.3):
//!
//! ```text
//! search Extension e [, Extension e2 ...]
//! register e
//! [where Predicates(e)]
//! ```
//!
//! Queries use the same grammar; [`crate::ast::Rule`] serves both.

use std::fmt;

/// Comparison operators of the rule language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Contains,
}

impl RuleOp {
    /// `a op b` ⇔ `b op.mirrored() a` for symmetric-capable operators.
    /// `Contains` is not symmetric; callers must not flip it.
    pub fn mirrored(self) -> Option<RuleOp> {
        match self {
            RuleOp::Eq => Some(RuleOp::Eq),
            RuleOp::Ne => Some(RuleOp::Ne),
            RuleOp::Lt => Some(RuleOp::Gt),
            RuleOp::Le => Some(RuleOp::Ge),
            RuleOp::Gt => Some(RuleOp::Lt),
            RuleOp::Ge => Some(RuleOp::Le),
            RuleOp::Contains => None,
        }
    }

    /// True for `< <= > >=`.
    pub fn is_ordering(self) -> bool {
        matches!(self, RuleOp::Lt | RuleOp::Le | RuleOp::Gt | RuleOp::Ge)
    }
}

impl fmt::Display for RuleOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleOp::Eq => "=",
            RuleOp::Ne => "!=",
            RuleOp::Lt => "<",
            RuleOp::Le => "<=",
            RuleOp::Gt => ">",
            RuleOp::Ge => ">=",
            RuleOp::Contains => "contains",
        };
        f.write_str(s)
    }
}

/// A constant operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    Str(String),
    Int(i64),
    Float(f64),
}

impl Const {
    /// The lexical form used when storing the constant into filter tables
    /// (the paper stores all constants as strings, §3.3.4).
    pub fn lexical(&self) -> String {
        match self {
            Const::Str(s) => s.clone(),
            Const::Int(i) => i.to_string(),
            Const::Float(x) => x.to_string(),
        }
    }

    pub fn is_numeric(&self) -> bool {
        matches!(self, Const::Int(_) | Const::Float(_))
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Const::Int(i) => write!(f, "{i}"),
            Const::Float(x) => write!(f, "{x}"),
        }
    }
}

/// One step of a path expression: a property access, optionally with the
/// set-valued any-operator `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSeg {
    pub property: String,
    /// The `?` any-operator (paper §2.3): matches if *any* element of a
    /// set-valued property satisfies the enclosing predicate.
    pub any: bool,
}

impl fmt::Display for PathSeg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.property, if self.any { "?" } else { "" })
    }
}

/// A path expression: a variable followed by zero or more property accesses.
/// A bare variable (`c = 'doc.rdf#host'`) denotes the resource itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathExpr {
    pub var: String,
    pub segments: Vec<PathSeg>,
}

impl PathExpr {
    pub fn bare(var: impl Into<String>) -> Self {
        PathExpr {
            var: var.into(),
            segments: Vec::new(),
        }
    }

    pub fn is_bare(&self) -> bool {
        self.segments.is_empty()
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.var)?;
        for seg in &self.segments {
            write!(f, ".{seg}")?;
        }
        Ok(())
    }
}

/// An operand of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    Const(Const),
    Path(PathExpr),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(c) => write!(f, "{c}"),
            Operand::Path(p) => write!(f, "{p}"),
        }
    }
}

/// An elementary predicate `X op Y`.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    pub lhs: Operand,
    pub op: RuleOp,
    pub rhs: Operand,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// The where part: a boolean combination of comparisons. The paper's
/// published language has only conjunctions; `or` is accepted at the surface
/// and eliminated by [`crate::rewrite::to_dnf`] ("rules containing it can be
/// split up easily", §2.3).
#[derive(Debug, Clone, PartialEq)]
pub enum WhereExpr {
    Cmp(Comparison),
    And(Vec<WhereExpr>),
    Or(Vec<WhereExpr>),
}

impl fmt::Display for WhereExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhereExpr::Cmp(c) => write!(f, "{c}"),
            WhereExpr::And(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" and ")?;
                    }
                    match p {
                        WhereExpr::Or(_) => write!(f, "({p})")?,
                        _ => write!(f, "{p}")?,
                    }
                }
                Ok(())
            }
            WhereExpr::Or(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" or ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
        }
    }
}

/// The extension a variable ranges over: a schema class at the surface.
/// (Decomposition introduces references to other atomic rules; those live in
/// the filter crate, not in the surface AST.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    pub class: String,
    pub var: String,
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.class, self.var)
    }
}

/// A subscription rule (or, identically shaped, a query).
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    pub search: Vec<Binding>,
    pub register: String,
    /// `None` when the rule has no where part (matches every instance).
    pub where_: Option<WhereExpr>,
}

impl Rule {
    pub fn binding_of(&self, var: &str) -> Option<&Binding> {
        self.search.iter().find(|b| b.var == var)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("search ")?;
        for (i, b) in self.search.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, " register {}", self.register)?;
        if let Some(w) = &self.where_ {
            write!(f, " where {w}")?;
        }
        Ok(())
    }
}

/// A query is grammatically a rule; the alias documents intent.
pub type Query = Rule;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_rule_roundtrips_shape() {
        let rule = Rule {
            search: vec![
                Binding {
                    class: "CycleProvider".into(),
                    var: "c".into(),
                },
                Binding {
                    class: "ServerInformation".into(),
                    var: "s".into(),
                },
            ],
            register: "c".into(),
            where_: Some(WhereExpr::And(vec![
                WhereExpr::Cmp(Comparison {
                    lhs: Operand::Path(PathExpr {
                        var: "c".into(),
                        segments: vec![PathSeg {
                            property: "serverHost".into(),
                            any: false,
                        }],
                    }),
                    op: RuleOp::Contains,
                    rhs: Operand::Const(Const::Str("uni-passau.de".into())),
                }),
                WhereExpr::Cmp(Comparison {
                    lhs: Operand::Path(PathExpr {
                        var: "s".into(),
                        segments: vec![PathSeg {
                            property: "memory".into(),
                            any: false,
                        }],
                    }),
                    op: RuleOp::Gt,
                    rhs: Operand::Const(Const::Int(64)),
                }),
            ])),
        };
        assert_eq!(
            rule.to_string(),
            "search CycleProvider c, ServerInformation s register c \
             where c.serverHost contains 'uni-passau.de' and s.memory > 64"
        );
    }

    #[test]
    fn mirrored_ops() {
        assert_eq!(RuleOp::Lt.mirrored(), Some(RuleOp::Gt));
        assert_eq!(RuleOp::Eq.mirrored(), Some(RuleOp::Eq));
        assert_eq!(RuleOp::Contains.mirrored(), None);
        assert!(RuleOp::Ge.is_ordering());
        assert!(!RuleOp::Eq.is_ordering());
    }

    #[test]
    fn const_lexical_and_display() {
        assert_eq!(Const::Int(64).lexical(), "64");
        assert_eq!(Const::Str("a'b".into()).to_string(), "'a''b'");
        assert!(Const::Float(2.5).is_numeric());
        assert!(!Const::Str("x".into()).is_numeric());
    }

    #[test]
    fn path_display_with_any() {
        let p = PathExpr {
            var: "c".into(),
            segments: vec![
                PathSeg {
                    property: "tags".into(),
                    any: true,
                },
                PathSeg {
                    property: "name".into(),
                    any: false,
                },
            ],
        };
        assert_eq!(p.to_string(), "c.tags?.name");
        assert!(!p.is_bare());
        assert!(PathExpr::bare("c").is_bare());
    }

    #[test]
    fn or_display_parenthesized_in_and() {
        let cmp = |v: &str| {
            WhereExpr::Cmp(Comparison {
                lhs: Operand::Path(PathExpr::bare(v)),
                op: RuleOp::Eq,
                rhs: Operand::Const(Const::Int(1)),
            })
        };
        let w = WhereExpr::And(vec![cmp("a"), WhereExpr::Or(vec![cmp("b"), cmp("c")])]);
        assert_eq!(w.to_string(), "a = 1 and (b = 1 or c = 1)");
    }
}
