//! Lexer for the MDV rule language.

use crate::error::{Error, Result};
use crate::token::{Token, TokenKind};

/// Tokenizes rule text. Keywords are case-insensitive (the paper typesets
/// them in lowercase; user input is forgiven). The token stream always ends
/// with a single `Eof` token.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut lexer = Lexer {
        chars: input.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    lexer.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Lexer {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Lex {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(&mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            while matches!(self.peek(), Some(c) if c.is_whitespace()) {
                self.bump();
            }
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    col,
                });
                return Ok(tokens);
            };
            let kind = match c {
                ',' => {
                    self.bump();
                    TokenKind::Comma
                }
                '.' => {
                    self.bump();
                    TokenKind::Dot
                }
                '?' => {
                    self.bump();
                    TokenKind::Question
                }
                '(' => {
                    self.bump();
                    TokenKind::LParen
                }
                ')' => {
                    self.bump();
                    TokenKind::RParen
                }
                '=' => {
                    self.bump();
                    TokenKind::Eq
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Ne
                    } else {
                        return Err(self.err("expected '=' after '!'"));
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Le
                    } else {
                        TokenKind::Lt
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                '\'' => self.lex_string()?,
                c if c.is_ascii_digit()
                    || (c == '-' && self.peek2().is_some_and(|d| d.is_ascii_digit())) =>
                {
                    self.lex_number()?
                }
                c if c.is_alphanumeric() || c == '_' => self.lex_word(),
                other => return Err(self.err(format!("unexpected character '{other}'"))),
            };
            tokens.push(Token { kind, line, col });
        }
    }

    fn lex_string(&mut self) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('\'') => {
                    // doubled quote escapes a literal quote, SQL-style
                    if self.peek() == Some('\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(TokenKind::Str(s));
                    }
                }
                Some(c) => s.push(c),
                None => return Err(self.err("unterminated string literal")),
            }
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind> {
        let mut s = String::new();
        if self.peek() == Some('-') {
            s.push('-');
            self.bump();
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else if c == '.' && !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                // a dot not followed by a digit is a path separator, not a
                // decimal point — `c.serverPort` must not lex `5874.` forms
                is_float = true;
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if is_float {
            s.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| self.err("invalid float literal"))
        } else {
            s.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }

    fn lex_word(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match s.to_ascii_lowercase().as_str() {
            "search" => TokenKind::Search,
            "register" => TokenKind::Register,
            "where" => TokenKind::Where,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "contains" => TokenKind::Contains,
            _ => TokenKind::Ident(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_example_rule() {
        let ks = kinds(
            "search CycleProvider c register c \
             where c.serverHost contains 'uni-passau.de' and c.serverInformation.memory > 64",
        );
        use TokenKind::*;
        assert_eq!(
            ks,
            vec![
                Search,
                Ident("CycleProvider".into()),
                Ident("c".into()),
                Register,
                Ident("c".into()),
                Where,
                Ident("c".into()),
                Dot,
                Ident("serverHost".into()),
                Contains,
                Str("uni-passau.de".into()),
                And,
                Ident("c".into()),
                Dot,
                Ident("serverInformation".into()),
                Dot,
                Ident("memory".into()),
                Gt,
                Int(64),
                Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        use TokenKind::*;
        assert_eq!(kinds("= != < <= > >="), vec![Eq, Ne, Lt, Le, Gt, Ge, Eof]);
    }

    #[test]
    fn numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("64 -3 2.5 -0.25"),
            vec![Int(64), Int(-3), Float(2.5), Float(-0.25), Eof]
        );
    }

    #[test]
    fn dot_after_number_is_path_separator_guard() {
        // `v.x` style access where v might look numeric must not merge
        use TokenKind::*;
        assert_eq!(kinds("5.x"), vec![Int(5), Dot, Ident("x".into()), Eof]);
    }

    #[test]
    fn string_escapes() {
        use TokenKind::*;
        assert_eq!(kinds("'it''s'"), vec![Str("it's".into()), Eof]);
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        use TokenKind::*;
        assert_eq!(
            kinds("SEARCH Register WHERE"),
            vec![Search, Register, Where, Eof]
        );
    }

    #[test]
    fn question_and_parens() {
        use TokenKind::*;
        assert_eq!(
            kinds("c.tags? (x)"),
            vec![
                Ident("c".into()),
                Dot,
                Ident("tags".into()),
                Question,
                LParen,
                Ident("x".into()),
                RParen,
                Eof
            ]
        );
    }

    #[test]
    fn bad_character_reported_with_position() {
        let err = lex("search @").unwrap_err();
        match err {
            Error::Lex {
                line: 1, col: 8, ..
            } => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bang_requires_equals() {
        assert!(lex("a ! b").is_err());
    }
}
