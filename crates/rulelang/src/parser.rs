//! Recursive-descent parser for the rule language.
//!
//! Grammar (EBNF):
//! ```text
//! rule     = "search" binding { "," binding } "register" IDENT [ "where" or ] ;
//! binding  = IDENT IDENT ;                       (* Class var *)
//! or       = and { "or" and } ;
//! and      = factor { "and" factor } ;
//! factor   = "(" or ")" | comparison ;
//! comparison = operand op operand ;
//! operand  = STRING | NUMBER | path ;
//! path     = IDENT { "." IDENT [ "?" ] } ;
//! op       = "=" | "!=" | "<" | "<=" | ">" | ">=" | "contains" ;
//! ```

use crate::ast::{Binding, Comparison, Const, Operand, PathExpr, PathSeg, Rule, RuleOp, WhereExpr};
use crate::error::{Error, Result};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses a rule (or query — same grammar) from source text.
pub fn parse_rule(input: &str) -> Result<Rule> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let rule = p.rule()?;
    p.expect_eof()?;
    Ok(rule)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, message: impl Into<String>) -> Error {
        let t = self.peek();
        Error::Parse {
            line: t.line,
            col: t.col,
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err_here(format!("expected {kind}, found {}", self.peek().kind)))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        match &self.peek().kind {
            TokenKind::Eof => Ok(()),
            other => Err(self.err_here(format!("unexpected {other} after rule"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err_here(format!("expected {what}, found {other}"))),
        }
    }

    fn rule(&mut self) -> Result<Rule> {
        self.expect(&TokenKind::Search)?;
        let mut search = vec![self.binding()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            search.push(self.binding()?);
        }
        self.expect(&TokenKind::Register)?;
        let register = self.ident("the registered variable")?;
        if !search.iter().any(|b| b.var == register) {
            return Err(self.err_here(format!(
                "registered variable '{register}' is not bound in the search part"
            )));
        }
        let where_ = if self.peek().kind == TokenKind::Where {
            self.bump();
            Some(self.or_expr()?)
        } else {
            None
        };
        // duplicate variable names are ambiguous
        for (i, b) in search.iter().enumerate() {
            if search[..i].iter().any(|p| p.var == b.var) {
                return Err(self.err_here(format!("variable '{}' bound twice", b.var)));
            }
        }
        Ok(Rule {
            search,
            register,
            where_,
        })
    }

    fn binding(&mut self) -> Result<Binding> {
        let class = self.ident("an extension (class) name")?;
        let var = self.ident("a variable name")?;
        Ok(Binding { class, var })
    }

    fn or_expr(&mut self) -> Result<WhereExpr> {
        let mut parts = vec![self.and_expr()?];
        while self.peek().kind == TokenKind::Or {
            self.bump();
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            WhereExpr::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<WhereExpr> {
        let mut parts = vec![self.factor()?];
        while self.peek().kind == TokenKind::And {
            self.bump();
            parts.push(self.factor()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            WhereExpr::And(parts)
        })
    }

    fn factor(&mut self) -> Result<WhereExpr> {
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            let inner = self.or_expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(inner);
        }
        let lhs = self.operand()?;
        let op = self.op()?;
        let rhs = self.operand()?;
        Ok(WhereExpr::Cmp(Comparison { lhs, op, rhs }))
    }

    fn op(&mut self) -> Result<RuleOp> {
        let op = match &self.peek().kind {
            TokenKind::Eq => RuleOp::Eq,
            TokenKind::Ne => RuleOp::Ne,
            TokenKind::Lt => RuleOp::Lt,
            TokenKind::Le => RuleOp::Le,
            TokenKind::Gt => RuleOp::Gt,
            TokenKind::Ge => RuleOp::Ge,
            TokenKind::Contains => RuleOp::Contains,
            other => {
                return Err(self.err_here(format!("expected a comparison operator, found {other}")))
            }
        };
        self.bump();
        Ok(op)
    }

    fn operand(&mut self) -> Result<Operand> {
        match &self.peek().kind {
            TokenKind::Str(s) => {
                let s = s.clone();
                self.bump();
                Ok(Operand::Const(Const::Str(s)))
            }
            TokenKind::Int(i) => {
                let i = *i;
                self.bump();
                Ok(Operand::Const(Const::Int(i)))
            }
            TokenKind::Float(x) => {
                let x = *x;
                self.bump();
                Ok(Operand::Const(Const::Float(x)))
            }
            TokenKind::Ident(_) => {
                let var = self.ident("a variable")?;
                let mut segments = Vec::new();
                while self.peek().kind == TokenKind::Dot {
                    self.bump();
                    let property = self.ident("a property name")?;
                    let any = if self.peek().kind == TokenKind::Question {
                        self.bump();
                        true
                    } else {
                        false
                    };
                    segments.push(PathSeg { property, any });
                }
                Ok(Operand::Path(PathExpr { var, segments }))
            }
            other => Err(self.err_here(format!("expected an operand, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_example1() {
        // the paper's Example 1
        let rule = parse_rule(
            "search CycleProvider c register c \
             where c.serverHost contains 'uni-passau.de' \
             and c.serverInformation.memory > 64",
        )
        .unwrap();
        assert_eq!(rule.search.len(), 1);
        assert_eq!(rule.search[0].class, "CycleProvider");
        assert_eq!(rule.register, "c");
        match rule.where_.as_ref().unwrap() {
            WhereExpr::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn parse_rule_without_where() {
        let rule = parse_rule("search CycleProvider c register c").unwrap();
        assert!(rule.where_.is_none());
    }

    #[test]
    fn parse_multi_binding_normalized_form() {
        let rule = parse_rule(
            "search CycleProvider c, ServerInformation s register c \
             where c.serverInformation = s and s.memory > 64",
        )
        .unwrap();
        assert_eq!(rule.search.len(), 2);
        let text = rule.to_string();
        let reparsed = parse_rule(&text).unwrap();
        assert_eq!(rule, reparsed);
    }

    #[test]
    fn parse_oid_rule() {
        // OID benchmark rule: register a single resource by URI reference
        let rule =
            parse_rule("search CycleProvider c register c where c = 'doc.rdf#host'").unwrap();
        match rule.where_.unwrap() {
            WhereExpr::Cmp(c) => {
                assert!(matches!(c.lhs, Operand::Path(ref p) if p.is_bare()));
                assert_eq!(c.op, RuleOp::Eq);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_or_and_parens() {
        let rule =
            parse_rule("search C c register c where c.a = 1 and (c.b = 2 or c.b = 3)").unwrap();
        match rule.where_.unwrap() {
            WhereExpr::And(parts) => {
                assert!(matches!(parts[1], WhereExpr::Or(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_any_operator() {
        let rule = parse_rule("search C c register c where c.tags? contains 'db'").unwrap();
        match rule.where_.unwrap() {
            WhereExpr::Cmp(c) => match c.lhs {
                Operand::Path(p) => {
                    assert!(p.segments[0].any);
                    assert_eq!(p.segments[0].property, "tags");
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn register_must_be_bound() {
        let err = parse_rule("search C c register x").unwrap_err();
        assert!(err.to_string().contains("not bound"));
    }

    #[test]
    fn duplicate_variable_rejected() {
        let err = parse_rule("search C c, D c register c").unwrap_err();
        assert!(err.to_string().contains("bound twice"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_rule("search C c register c extra").is_err());
    }

    #[test]
    fn missing_parts_rejected() {
        assert!(parse_rule("register c").is_err());
        assert!(parse_rule("search C c").is_err());
        assert!(parse_rule("search C c register c where").is_err());
        assert!(parse_rule("search C c register c where c.a =").is_err());
    }

    #[test]
    fn const_on_left_side_parses() {
        let rule = parse_rule("search C c register c where 64 < c.memory").unwrap();
        match rule.where_.unwrap() {
            WhereExpr::Cmp(c) => {
                assert!(matches!(c.lhs, Operand::Const(Const::Int(64))));
                assert!(matches!(c.rhs, Operand::Path(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        let texts = [
            "search CycleProvider c register c",
            "search CycleProvider c register c where c.serverHost contains 'uni-passau.de'",
            "search CycleProvider c, ServerInformation s register c where c.serverInformation = s and s.memory > 64 and s.cpu > 500",
            "search C c register c where c.a = 1 and (c.b = 2 or c.b = 3)",
        ];
        for t in texts {
            let rule = parse_rule(t).unwrap();
            assert_eq!(
                parse_rule(&rule.to_string()).unwrap(),
                rule,
                "roundtrip failed for {t}"
            );
        }
    }
}
