//! Property-based tests for the RDF layer: parser/writer round-trips and
//! diff algebra.

use proptest::prelude::*;

use mdv_rdf::{diff, parse_document, write_document, Document, Resource, Term, UriRef};

/// Local identifiers: XML-name-safe, non-empty.
fn arb_local_id() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}"
}

/// Literal text including XML-hostile characters. The parser trims
/// leading/trailing whitespace of character data (pretty-printed documents),
/// so generated literals are pre-trimmed.
fn arb_literal() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9 .:/_-]{0,16}",
        Just("a<b>&c\"d'e".to_owned()),
        Just("&amp;".to_owned()),
        (-10_000i64..10_000).prop_map(|i| i.to_string()),
    ]
    .prop_map(|s| s.trim().to_owned())
}

fn arb_document() -> impl Strategy<Value = Document> {
    let resource_ids = prop::collection::btree_set(arb_local_id(), 1..6);
    resource_ids
        .prop_flat_map(|ids| {
            let ids: Vec<String> = ids.into_iter().collect();
            let n = ids.len();
            let props = prop::collection::vec(
                (
                    "[a-z]{1,6}",
                    prop_oneof![
                        arb_literal().prop_map(PropVal::Lit),
                        (0..n).prop_map(PropVal::Ref),
                    ],
                ),
                0..5,
            );
            (Just(ids), prop::collection::vec(props, n))
        })
        .prop_map(|(ids, per_resource_props)| {
            let mut doc = Document::new("doc.rdf");
            for (id, props) in ids.iter().zip(per_resource_props) {
                let mut res = Resource::new(UriRef::new("doc.rdf", id), "C");
                for (pname, val) in props {
                    let term = match val {
                        PropVal::Lit(s) => Term::literal(s),
                        PropVal::Ref(i) => Term::resource(UriRef::new("doc.rdf", &ids[i])),
                    };
                    res.add(pname, term);
                }
                doc.add_resource(res).unwrap();
            }
            doc
        })
}

#[derive(Debug, Clone)]
enum PropVal {
    Lit(String),
    Ref(usize),
}

proptest! {
    /// Serialize → parse is the identity on documents, for any property
    /// content including XML metacharacters.
    #[test]
    fn write_parse_roundtrip(doc in arb_document()) {
        let xml = write_document(&doc);
        let parsed = parse_document("doc.rdf", &xml).unwrap();
        prop_assert_eq!(doc, parsed);
    }

    /// diff(d, d) is empty; every resource is reported unchanged.
    #[test]
    fn self_diff_is_empty(doc in arb_document()) {
        let d = diff(&doc, &doc.clone());
        prop_assert!(d.is_empty());
        prop_assert_eq!(d.unchanged.len(), doc.resources().len());
    }

    /// The diff partitions both documents: every new resource is added,
    /// updated, or unchanged; every old resource is deleted, updated, or
    /// unchanged.
    #[test]
    fn diff_partitions_resources(old in arb_document(), new in arb_document()) {
        let d = diff(&old, &new);
        prop_assert_eq!(
            d.added.len() + d.updated.len() + d.unchanged.len(),
            new.resources().len()
        );
        prop_assert_eq!(
            d.deleted.len() + d.updated.len() + d.unchanged.len(),
            old.resources().len()
        );
    }

    /// Diff is anti-symmetric: swapping arguments swaps added/deleted and
    /// reverses updates.
    #[test]
    fn diff_antisymmetric(old in arb_document(), new in arb_document()) {
        let fwd = diff(&old, &new);
        let bwd = diff(&new, &old);
        let mut fwd_added: Vec<String> = fwd.added.iter().map(|r| r.uri().to_string()).collect();
        let mut bwd_deleted: Vec<String> = bwd.deleted.iter().map(|r| r.uri().to_string()).collect();
        fwd_added.sort();
        bwd_deleted.sort();
        prop_assert_eq!(fwd_added, bwd_deleted);
        prop_assert_eq!(fwd.updated.len(), bwd.updated.len());
    }

    /// Statement decomposition has exactly one subject marker per resource
    /// and one statement per property.
    #[test]
    fn statement_counts(doc in arb_document()) {
        let stmts = doc.statements();
        let markers = stmts.iter().filter(|s| s.is_subject_marker()).count();
        prop_assert_eq!(markers, doc.resources().len());
        let props: usize = doc.resources().iter().map(|r| r.properties().len()).sum();
        prop_assert_eq!(stmts.len(), markers + props);
    }
}
