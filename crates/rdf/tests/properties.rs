//! Property-based tests for the RDF layer: parser/writer round-trips and
//! diff algebra. Runs on `mdv-testkit` (deterministic seeds, ≥64 cases,
//! see `MDV_PROP_CASES`).

use mdv_rdf::{diff, parse_document, write_document, Document, Resource, Term, UriRef};
use mdv_testkit::{prop_assert, prop_assert_eq, property, Source};

/// Local identifiers: XML-name-safe, non-empty.
fn arb_local_id(src: &mut Source) -> String {
    let mut id = src.string_of("abcdefghijklmnopqrstuvwxyz", 1..2);
    id.push_str(&src.string_of("abcdefghijklmnopqrstuvwxyz0123456789_", 0..7));
    id
}

/// Literal text including XML-hostile characters. The parser trims
/// leading/trailing whitespace of character data (pretty-printed documents),
/// so generated literals are pre-trimmed.
fn arb_literal(src: &mut Source) -> String {
    const ALPHABET: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .:/_-";
    let raw = match src.weighted(&[4, 1, 1, 2]) {
        0 => src.string_of(ALPHABET, 0..17),
        1 => "a<b>&c\"d'e".to_owned(),
        2 => "&amp;".to_owned(),
        _ => src.i64_in(-10_000..10_000).to_string(),
    };
    raw.trim().to_owned()
}

fn arb_document(src: &mut Source) -> Document {
    let ids: Vec<String> = {
        let set: std::collections::BTreeSet<String> =
            src.vec(1..6, arb_local_id).into_iter().collect();
        set.into_iter().collect()
    };
    let n = ids.len();
    let mut doc = Document::new("doc.rdf");
    for id in &ids {
        let mut res = Resource::new(UriRef::new("doc.rdf", id), "C");
        let props = src.vec(0..5, |src| {
            let name = src.string_of("abcdefghijklmnopqrstuvwxyz", 1..7);
            let term = if src.bool_with(0.3) {
                Term::resource(UriRef::new("doc.rdf", &ids[src.usize_in(0..n)]))
            } else {
                Term::literal(arb_literal(src))
            };
            (name, term)
        });
        for (name, term) in props {
            res.add(name, term);
        }
        doc.add_resource(res).unwrap();
    }
    doc
}

property! {
    /// Serialize → parse is the identity on documents, for any property
    /// content including XML metacharacters.
    fn write_parse_roundtrip(src) {
        let doc = arb_document(src);
        let xml = write_document(&doc);
        let parsed = parse_document("doc.rdf", &xml).unwrap();
        prop_assert_eq!(&doc, &parsed);
    }

    /// diff(d, d) is empty; every resource is reported unchanged.
    fn self_diff_is_empty(src) {
        let doc = arb_document(src);
        let d = diff(&doc, &doc.clone());
        prop_assert!(d.is_empty());
        prop_assert_eq!(d.unchanged.len(), doc.resources().len());
    }

    /// The diff partitions both documents: every new resource is added,
    /// updated, or unchanged; every old resource is deleted, updated, or
    /// unchanged.
    fn diff_partitions_resources(src) {
        let old = arb_document(src);
        let new = arb_document(src);
        let d = diff(&old, &new);
        prop_assert_eq!(
            d.added.len() + d.updated.len() + d.unchanged.len(),
            new.resources().len()
        );
        prop_assert_eq!(
            d.deleted.len() + d.updated.len() + d.unchanged.len(),
            old.resources().len()
        );
    }

    /// Diff is anti-symmetric: swapping arguments swaps added/deleted and
    /// reverses updates.
    fn diff_antisymmetric(src) {
        let old = arb_document(src);
        let new = arb_document(src);
        let fwd = diff(&old, &new);
        let bwd = diff(&new, &old);
        let mut fwd_added: Vec<String> = fwd.added.iter().map(|r| r.uri().to_string()).collect();
        let mut bwd_deleted: Vec<String> =
            bwd.deleted.iter().map(|r| r.uri().to_string()).collect();
        fwd_added.sort();
        bwd_deleted.sort();
        prop_assert_eq!(fwd_added, bwd_deleted);
        prop_assert_eq!(fwd.updated.len(), bwd.updated.len());
    }

    /// Statement decomposition has exactly one subject marker per resource
    /// and one statement per property.
    fn statement_counts(src) {
        let doc = arb_document(src);
        let stmts = doc.statements();
        let markers = stmts.iter().filter(|s| s.is_subject_marker()).count();
        prop_assert_eq!(markers, doc.resources().len());
        let props: usize = doc.resources().iter().map(|r| r.properties().len()).sum();
        prop_assert_eq!(stmts.len(), markers + props);
    }
}
