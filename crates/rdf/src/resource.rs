//! Resources: typed bundles of properties, the unit MDV registers, caches,
//! and publishes.

use std::fmt;

use crate::statement::Statement;
use crate::term::Term;
use crate::uri::UriRef;

/// A resource: an instance of a schema class with a set of properties.
///
/// Properties may repeat (set-valued properties, paper §2.3 footnote); the
/// order of properties is preserved for serialization but is not semantic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    uri: UriRef,
    class: String,
    properties: Vec<(String, Term)>,
}

impl Resource {
    pub fn new(uri: UriRef, class: impl Into<String>) -> Self {
        Resource {
            uri,
            class: class.into(),
            properties: Vec::new(),
        }
    }

    /// Builder-style property addition.
    pub fn with(mut self, property: impl Into<String>, value: Term) -> Self {
        self.properties.push((property.into(), value));
        self
    }

    pub fn add(&mut self, property: impl Into<String>, value: Term) {
        self.properties.push((property.into(), value));
    }

    pub fn uri(&self) -> &UriRef {
        &self.uri
    }

    pub fn class(&self) -> &str {
        &self.class
    }

    pub fn properties(&self) -> &[(String, Term)] {
        &self.properties
    }

    /// First value of the named property (single-valued access).
    pub fn property(&self, name: &str) -> Option<&Term> {
        self.properties
            .iter()
            .find(|(p, _)| p == name)
            .map(|(_, t)| t)
    }

    /// All values of the named property (set-valued access, `?` operator).
    pub fn property_values<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Term> + 'a {
        self.properties
            .iter()
            .filter(move |(p, _)| p == name)
            .map(|(_, t)| t)
    }

    /// URI references of all resources this resource points at.
    pub fn references(&self) -> impl Iterator<Item = (&str, &UriRef)> {
        self.properties
            .iter()
            .filter_map(|(p, t)| t.as_resource().map(|r| (p.as_str(), r)))
    }

    /// Decomposes into statements, *including* the synthetic subject marker —
    /// exactly the rows of `FilterData` in Figure 4.
    pub fn statements(&self) -> Vec<Statement> {
        let mut out = Vec::with_capacity(self.properties.len() + 1);
        out.push(Statement::subject_marker(self.uri.clone()));
        for (p, t) in &self.properties {
            out.push(Statement::new(self.uri.clone(), p.clone(), t.clone()));
        }
        out
    }

    /// Property-set equality ignoring order — used to detect updates when a
    /// document is re-registered (paper §3.5).
    pub fn same_content(&self, other: &Resource) -> bool {
        if self.uri != other.uri || self.class != other.class {
            return false;
        }
        let mut a: Vec<_> = self.properties.iter().collect();
        let mut b: Vec<_> = other.properties.iter().collect();
        a.sort();
        b.sort();
        a == b
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} : {}", self.uri, self.class)?;
        for (p, t) in &self.properties {
            writeln!(f, "  {p} = {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> Resource {
        Resource::new(UriRef::new("doc.rdf", "host"), "CycleProvider")
            .with("serverHost", Term::literal("pirates.uni-passau.de"))
            .with("serverPort", Term::literal("5874"))
            .with(
                "serverInformation",
                Term::resource(UriRef::new("doc.rdf", "info")),
            )
    }

    #[test]
    fn property_access() {
        let r = host();
        assert_eq!(r.property("serverPort").unwrap().as_int(), Some(5874));
        assert!(r.property("missing").is_none());
        assert_eq!(r.class(), "CycleProvider");
    }

    #[test]
    fn set_valued_properties() {
        let r = Resource::new(UriRef::new("d", "x"), "C")
            .with("tag", Term::literal("a"))
            .with("tag", Term::literal("b"));
        let vals: Vec<_> = r.property_values("tag").map(|t| t.lexical()).collect();
        assert_eq!(vals, vec!["a", "b"]);
        // single-valued access returns the first
        assert_eq!(r.property("tag").unwrap().lexical(), "a");
    }

    #[test]
    fn references_lists_resource_properties_only() {
        let r = host();
        let refs: Vec<_> = r.references().collect();
        assert_eq!(refs.len(), 1);
        assert_eq!(refs[0].0, "serverInformation");
        assert_eq!(refs[0].1.as_str(), "doc.rdf#info");
    }

    #[test]
    fn statements_include_subject_marker() {
        let stmts = host().statements();
        assert_eq!(stmts.len(), 4);
        assert!(stmts[0].is_subject_marker());
        assert_eq!(stmts[1].predicate, "serverHost");
    }

    #[test]
    fn same_content_ignores_order() {
        let a = Resource::new(UriRef::new("d", "x"), "C")
            .with("p", Term::literal("1"))
            .with("q", Term::literal("2"));
        let b = Resource::new(UriRef::new("d", "x"), "C")
            .with("q", Term::literal("2"))
            .with("p", Term::literal("1"));
        assert!(a.same_content(&b));
        let c = Resource::new(UriRef::new("d", "x"), "C").with("p", Term::literal("1"));
        assert!(!a.same_content(&c));
        let d = Resource::new(UriRef::new("d", "y"), "C")
            .with("p", Term::literal("1"))
            .with("q", Term::literal("2"));
        assert!(!a.same_content(&d));
    }
}
