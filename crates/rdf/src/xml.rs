//! A minimal XML parser and escaper, sufficient for the RDF/XML subset MDV
//! documents use (elements, attributes, character data, comments, and the
//! XML declaration). Written in-house so the RDF layer has no external
//! dependencies.

use crate::error::{Error, Result};

/// A parsed XML node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    Element(Element),
    /// Character data with entities decoded. Whitespace-only text between
    /// elements is dropped during parsing.
    Text(String),
}

/// An XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    pub children: Vec<Node>,
}

impl Element {
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements only.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Concatenated character data of direct text children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }
}

/// Parses a document and returns its single root element.
pub fn parse(input: &str) -> Result<Element> {
    let mut p = Parser {
        chars: input.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    p.skip_prolog_and_misc()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if !p.at_end() {
        return Err(p.err("content after root element"));
    }
    Ok(root)
}

/// Escapes character data / attribute values for serialization.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Xml {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat(&mut self, expected: char) -> Result<()> {
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            Some(c) => Err(self.err(format!("expected '{expected}', found '{c}'"))),
            None => Err(self.err(format!("expected '{expected}', found end of input"))),
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars()
            .enumerate()
            .all(|(i, c)| self.peek_at(i) == Some(c))
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    /// Skips whitespace, comments, and processing instructions.
    fn skip_misc(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_prolog_and_misc(&mut self) -> Result<()> {
        self.skip_misc()
    }

    fn skip_comment(&mut self) -> Result<()> {
        for _ in 0..4 {
            self.bump();
        }
        loop {
            if self.at_end() {
                return Err(self.err("unterminated comment"));
            }
            if self.starts_with("-->") {
                for _ in 0..3 {
                    self.bump();
                }
                return Ok(());
            }
            self.bump();
        }
    }

    fn skip_pi(&mut self) -> Result<()> {
        for _ in 0..2 {
            self.bump();
        }
        loop {
            if self.at_end() {
                return Err(self.err("unterminated processing instruction"));
            }
            if self.starts_with("?>") {
                for _ in 0..2 {
                    self.bump();
                }
                return Ok(());
            }
            self.bump();
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || matches!(c, ':' | '_' | '-' | '.') {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if name.is_empty() {
            Err(self.err("expected a name"))
        } else {
            Ok(name)
        }
    }

    fn parse_attr_value(&mut self) -> Result<String> {
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut raw = String::new();
        loop {
            match self.bump() {
                Some(c) if c == quote => break,
                Some('<') => return Err(self.err("'<' in attribute value")),
                Some(c) => raw.push(c),
                None => return Err(self.err("unterminated attribute value")),
            }
        }
        self.decode_entities(&raw)
    }

    fn decode_entities(&self, raw: &str) -> Result<String> {
        let mut out = String::with_capacity(raw.len());
        let mut it = raw.char_indices();
        while let Some((i, c)) = it.next() {
            if c != '&' {
                out.push(c);
                continue;
            }
            let rest = &raw[i + 1..];
            let semi = rest
                .find(';')
                .ok_or_else(|| self.err("unterminated entity"))?;
            let entity = &rest[..semi];
            match entity {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                    let code = u32::from_str_radix(&entity[2..], 16)
                        .map_err(|_| self.err("bad character reference"))?;
                    out.push(
                        char::from_u32(code).ok_or_else(|| self.err("bad character reference"))?,
                    );
                }
                _ if entity.starts_with('#') => {
                    let code = entity[1..]
                        .parse::<u32>()
                        .map_err(|_| self.err("bad character reference"))?;
                    out.push(
                        char::from_u32(code).ok_or_else(|| self.err("bad character reference"))?,
                    );
                }
                other => return Err(self.err(format!("unknown entity '&{other};'"))),
            }
            // advance the iterator past the entity
            for _ in 0..semi + 1 {
                it.next();
            }
        }
        Ok(out)
    }

    fn parse_element(&mut self) -> Result<Element> {
        self.eat('<')?;
        let name = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some('/') => {
                    self.bump();
                    self.eat('>')?;
                    return Ok(Element {
                        name,
                        attributes,
                        children: Vec::new(),
                    });
                }
                Some('>') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    if attributes.iter().any(|(n, _)| n == &attr_name) {
                        return Err(self.err(format!("duplicate attribute '{attr_name}'")));
                    }
                    self.skip_ws();
                    self.eat('=')?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    attributes.push((attr_name, value));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // content
        let mut children = Vec::new();
        loop {
            if self.starts_with("</") {
                self.bump();
                self.bump();
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(format!(
                        "mismatched closing tag: expected '</{name}>', found '</{close}>'"
                    )));
                }
                self.skip_ws();
                self.eat('>')?;
                return Ok(Element {
                    name,
                    attributes,
                    children,
                });
            }
            if self.starts_with("<!--") {
                self.skip_comment()?;
                continue;
            }
            match self.peek() {
                Some('<') => children.push(Node::Element(self.parse_element()?)),
                Some(_) => {
                    let mut raw = String::new();
                    while let Some(c) = self.peek() {
                        if c == '<' {
                            break;
                        }
                        raw.push(c);
                        self.bump();
                    }
                    let text = self.decode_entities(&raw)?;
                    if !text.trim().is_empty() {
                        children.push(Node::Text(text.trim().to_owned()));
                    }
                }
                None => return Err(self.err(format!("unterminated element '{name}'"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_document() {
        let root = parse(
            r#"<?xml version="1.0"?>
            <!-- a comment -->
            <rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
              <CycleProvider rdf:ID="host">
                <serverHost>pirates.uni-passau.de</serverHost>
                <serverPort>5874</serverPort>
              </CycleProvider>
            </rdf:RDF>"#,
        )
        .unwrap();
        assert_eq!(root.name, "rdf:RDF");
        let cp = root.elements().next().unwrap();
        assert_eq!(cp.name, "CycleProvider");
        assert_eq!(cp.attr("rdf:ID"), Some("host"));
        let host = cp.elements().next().unwrap();
        assert_eq!(host.text(), "pirates.uni-passau.de");
    }

    #[test]
    fn self_closing_and_nested() {
        let root = parse(r#"<a><b x="1"/><c><d/></c></a>"#).unwrap();
        let names: Vec<_> = root.elements().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["b", "c"]);
        assert_eq!(root.elements().nth(1).unwrap().elements().count(), 1);
    }

    #[test]
    fn entity_decoding() {
        let root = parse("<a>x &amp; y &lt;z&gt; &#65;&#x42;</a>").unwrap();
        assert_eq!(root.text(), "x & y <z> AB");
        let root = parse(r#"<a v="&quot;q&apos;"/>"#).unwrap();
        assert_eq!(root.attr("v"), Some("\"q'"));
    }

    #[test]
    fn escape_roundtrip() {
        let original = r#"a<b>&"c'"#;
        let root = parse(&format!("<t>{}</t>", escape(original))).unwrap();
        assert_eq!(root.text(), original);
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.to_string().contains("mismatched"));
    }

    #[test]
    fn unterminated_element_rejected() {
        assert!(parse("<a><b>").is_err());
        assert!(parse("<a attr='x'").is_err());
    }

    #[test]
    fn content_after_root_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<a>&nbsp;</a>").is_err());
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let root = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn error_position_reported() {
        let err = parse("<a>\n<b x=></b></a>").unwrap_err();
        match err {
            crate::error::Error::Xml { line, .. } => assert_eq!(line, 2),
            other => panic!("expected XML error, got {other}"),
        }
    }
}
