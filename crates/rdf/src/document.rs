//! RDF documents: the unit of metadata registration, update, and deletion
//! (paper §2.2 — "registering new metadata … within a valid RDF document").

use std::collections::HashMap;
use std::fmt;

use crate::error::{Error, Result};
use crate::resource::Resource;
use crate::statement::Statement;
use crate::uri::UriRef;

/// An RDF document: a URI plus the resources it defines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    uri: String,
    resources: Vec<Resource>,
}

impl Document {
    pub fn new(uri: impl Into<String>) -> Self {
        Document {
            uri: uri.into(),
            resources: Vec::new(),
        }
    }

    /// Adds a resource. Its URI reference must belong to this document and
    /// must not collide with an existing resource.
    pub fn add_resource(&mut self, resource: Resource) -> Result<()> {
        if resource.uri().document_uri() != self.uri {
            return Err(Error::ForeignResource {
                document: self.uri.clone(),
                resource: resource.uri().to_string(),
            });
        }
        if self.resources.iter().any(|r| r.uri() == resource.uri()) {
            return Err(Error::DuplicateResource(resource.uri().to_string()));
        }
        self.resources.push(resource);
        Ok(())
    }

    /// Builder-style resource addition; panics on the errors `add_resource`
    /// reports (intended for literals in tests and examples).
    pub fn with_resource(mut self, resource: Resource) -> Self {
        self.add_resource(resource)
            .expect("valid resource for document");
        self
    }

    pub fn uri(&self) -> &str {
        &self.uri
    }

    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    pub fn resource(&self, uri: &UriRef) -> Option<&Resource> {
        self.resources.iter().find(|r| r.uri() == uri)
    }

    /// Decomposes the whole document into statements (paper §3.2): per
    /// resource, the subject marker plus one statement per property.
    pub fn statements(&self) -> Vec<Statement> {
        self.resources.iter().flat_map(|r| r.statements()).collect()
    }

    /// Checks internal referential consistency: every reference into this
    /// document's URI space must target a resource the document defines.
    /// References to *other* documents are allowed (RDF does not distinguish
    /// nested and external references).
    pub fn check_internal_references(&self) -> Result<()> {
        let defined: HashMap<&str, ()> = self
            .resources
            .iter()
            .map(|r| (r.uri().as_str(), ()))
            .collect();
        for r in self.resources() {
            for (_, target) in r.references() {
                if target.document_uri() == self.uri && !defined.contains_key(target.as_str()) {
                    return Err(Error::DanglingReference {
                        from: r.uri().to_string(),
                        to: target.to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "document {}", self.uri)?;
        for r in &self.resources {
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn doc() -> Document {
        Document::new("doc.rdf")
            .with_resource(
                Resource::new(UriRef::new("doc.rdf", "host"), "CycleProvider").with(
                    "serverInformation",
                    Term::resource(UriRef::new("doc.rdf", "info")),
                ),
            )
            .with_resource(
                Resource::new(UriRef::new("doc.rdf", "info"), "ServerInformation")
                    .with("memory", Term::literal("92")),
            )
    }

    #[test]
    fn resources_and_lookup() {
        let d = doc();
        assert_eq!(d.resources().len(), 2);
        assert!(d.resource(&UriRef::new("doc.rdf", "info")).is_some());
        assert!(d.resource(&UriRef::new("doc.rdf", "nope")).is_none());
    }

    #[test]
    fn foreign_resource_rejected() {
        let mut d = Document::new("doc.rdf");
        let err = d
            .add_resource(Resource::new(UriRef::new("other.rdf", "x"), "C"))
            .unwrap_err();
        assert!(matches!(err, Error::ForeignResource { .. }));
    }

    #[test]
    fn duplicate_resource_rejected() {
        let mut d = doc();
        let err = d
            .add_resource(Resource::new(
                UriRef::new("doc.rdf", "host"),
                "CycleProvider",
            ))
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateResource(_)));
    }

    #[test]
    fn statements_concatenate_resources() {
        let stmts = doc().statements();
        // host: marker + serverInformation; info: marker + memory
        assert_eq!(stmts.len(), 4);
    }

    #[test]
    fn internal_reference_check() {
        doc().check_internal_references().unwrap();
        let bad = Document::new("doc.rdf").with_resource(
            Resource::new(UriRef::new("doc.rdf", "host"), "CycleProvider").with(
                "serverInformation",
                Term::resource(UriRef::new("doc.rdf", "missing")),
            ),
        );
        assert!(matches!(
            bad.check_internal_references(),
            Err(Error::DanglingReference { .. })
        ));
        // external references are fine
        let ext = Document::new("doc.rdf").with_resource(
            Resource::new(UriRef::new("doc.rdf", "host"), "CycleProvider").with(
                "serverInformation",
                Term::resource(UriRef::new("other.rdf", "x")),
            ),
        );
        ext.check_internal_references().unwrap();
    }
}
