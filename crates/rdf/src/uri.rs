//! URI references.
//!
//! MDV constructs a globally unique identifier — a *URI reference* — by
//! combining a resource's local identifier (its `rdf:ID`) with the globally
//! unique URI of the RDF document that defines it (paper §2.1), e.g.
//! `doc.rdf#host`.

use std::fmt;

/// A globally unique reference to a resource: `<document-uri>#<local-id>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UriRef(String);

impl UriRef {
    /// Builds a URI reference from a document URI and a local identifier.
    pub fn new(document_uri: &str, local_id: &str) -> Self {
        UriRef(format!("{document_uri}#{local_id}"))
    }

    /// Parses an absolute reference string (must contain a fragment `#`).
    pub fn parse(s: &str) -> Option<Self> {
        let hash = s.find('#')?;
        if hash == 0 || hash + 1 == s.len() {
            return None;
        }
        Some(UriRef(s.to_owned()))
    }

    /// Wraps an already-absolute reference without validation. Intended for
    /// trusted internal callers (e.g. reading back values we stored).
    pub fn from_absolute(s: impl Into<String>) -> Self {
        UriRef(s.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The document URI part (before `#`).
    pub fn document_uri(&self) -> &str {
        match self.0.find('#') {
            Some(i) => &self.0[..i],
            None => &self.0,
        }
    }

    /// The local identifier part (after `#`).
    pub fn local_id(&self) -> &str {
        match self.0.find('#') {
            Some(i) => &self.0[i + 1..],
            None => "",
        }
    }
}

impl fmt::Display for UriRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<UriRef> for String {
    fn from(u: UriRef) -> String {
        u.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_parts() {
        let u = UriRef::new("doc.rdf", "host");
        assert_eq!(u.as_str(), "doc.rdf#host");
        assert_eq!(u.document_uri(), "doc.rdf");
        assert_eq!(u.local_id(), "host");
    }

    #[test]
    fn parse_validates_fragment() {
        assert!(UriRef::parse("doc.rdf#host").is_some());
        assert!(UriRef::parse("no-fragment").is_none());
        assert!(UriRef::parse("#onlyfragment").is_none());
        assert!(UriRef::parse("trailing#").is_none());
    }

    #[test]
    fn uriref_in_fragment_with_slashes() {
        let u = UriRef::new("http://db.fmi.uni-passau.de/docs/a.rdf", "info");
        assert_eq!(u.document_uri(), "http://db.fmi.uni-passau.de/docs/a.rdf");
        assert_eq!(u.local_id(), "info");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = UriRef::new("a.rdf", "x");
        let b = UriRef::new("b.rdf", "x");
        assert!(a < b);
    }
}
