//! RDF/XML-subset parser: turns an XML document in the style of the paper's
//! Figure 1 into a [`Document`].
//!
//! Supported constructs:
//! * `<rdf:RDF>` root element (namespace attributes are ignored),
//! * resource elements `<ClassName rdf:ID="local">` or `rdf:about="uri#id"`,
//! * literal properties `<prop>text</prop>`,
//! * reference properties `<prop rdf:resource="uri#id"/>`,
//! * nested resources `<prop><ClassName rdf:ID="..">…</ClassName></prop>`,
//!   which are hoisted into the document and replaced by a reference —
//!   RDF does not distinguish nested from referenced resources (paper §2.1).

use crate::document::Document;
use crate::error::{Error, Result};
use crate::resource::Resource;
use crate::term::Term;
use crate::uri::UriRef;
use crate::xml::{self, Element};

const RDF_ID: &str = "rdf:ID";
const RDF_ABOUT: &str = "rdf:about";
const RDF_RESOURCE: &str = "rdf:resource";

/// Parses RDF/XML text into a [`Document`] anchored at `document_uri`.
pub fn parse_document(document_uri: &str, input: &str) -> Result<Document> {
    let root = xml::parse(input)?;
    if root.name != "rdf:RDF" && root.name != "RDF" {
        return Err(Error::Rdf(format!(
            "expected <rdf:RDF> root element, found <{}>",
            root.name
        )));
    }
    let mut doc = Document::new(document_uri);
    let mut resources = Vec::new();
    for el in root.elements() {
        parse_resource(document_uri, el, &mut resources)?;
    }
    for res in resources {
        doc.add_resource(res)?;
    }
    doc.check_internal_references()?;
    Ok(doc)
}

/// Parses one resource element, hoisting nested resources, and returns its
/// URI reference. Resources are collected in pre-order (a resource before
/// the resources nested inside it), matching the paper's Figure 4 layout.
fn parse_resource(doc_uri: &str, el: &Element, out: &mut Vec<Resource>) -> Result<UriRef> {
    let uri = resource_uri(doc_uri, el)?;
    let mut resource = Resource::new(uri.clone(), el.name.clone());
    let mut nested = Vec::new();
    for prop in el.elements() {
        let term = parse_property_value(doc_uri, prop, &mut nested)?;
        resource.add(prop.name.clone(), term);
    }
    out.push(resource);
    out.extend(nested);
    Ok(uri)
}

fn resource_uri(document_uri: &str, el: &Element) -> Result<UriRef> {
    if let Some(id) = el.attr(RDF_ID) {
        if id.is_empty() || id.contains('#') {
            return Err(Error::Rdf(format!("invalid rdf:ID '{id}'")));
        }
        return Ok(UriRef::new(document_uri, id));
    }
    if let Some(about) = el.attr(RDF_ABOUT) {
        return UriRef::parse(about)
            .ok_or_else(|| Error::Rdf(format!("invalid rdf:about '{about}'")));
    }
    Err(Error::Rdf(format!(
        "resource element <{}> lacks rdf:ID and rdf:about",
        el.name
    )))
}

fn parse_property_value(doc_uri: &str, prop: &Element, out: &mut Vec<Resource>) -> Result<Term> {
    if let Some(target) = prop.attr(RDF_RESOURCE) {
        if !prop.children.is_empty() {
            return Err(Error::Rdf(format!(
                "property <{}> has both rdf:resource and content",
                prop.name
            )));
        }
        // A fragment-only reference (`#info`) targets this document.
        let uri = if let Some(local) = target.strip_prefix('#') {
            UriRef::new(doc_uri, local)
        } else {
            UriRef::parse(target)
                .ok_or_else(|| Error::Rdf(format!("invalid rdf:resource '{target}'")))?
        };
        return Ok(Term::resource(uri));
    }
    let nested: Vec<&Element> = prop.elements().collect();
    match nested.len() {
        0 => Ok(Term::literal(prop.text())),
        1 => {
            let target = parse_resource(doc_uri, nested[0], out)?;
            Ok(Term::resource(target))
        }
        n => Err(Error::Rdf(format!(
            "property <{}> nests {n} resources; one expected",
            prop.name
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact document excerpt of the paper's Figure 1.
    pub const FIGURE1: &str = r#"<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
  <CycleProvider rdf:ID="host">
    <serverHost>pirates.uni-passau.de</serverHost>
    <serverPort>5874</serverPort>
    <serverInformation>
      <ServerInformation rdf:ID="info">
        <memory>92</memory>
        <cpu>600</cpu>
      </ServerInformation>
    </serverInformation>
  </CycleProvider>
</rdf:RDF>"#;

    #[test]
    fn parse_figure1() {
        let doc = parse_document("doc.rdf", FIGURE1).unwrap();
        assert_eq!(doc.resources().len(), 2);
        let host = doc.resource(&UriRef::new("doc.rdf", "host")).unwrap();
        assert_eq!(host.class(), "CycleProvider");
        assert_eq!(
            host.property("serverHost").unwrap().lexical(),
            "pirates.uni-passau.de"
        );
        assert_eq!(host.property("serverPort").unwrap().as_int(), Some(5874));
        assert_eq!(
            host.property("serverInformation")
                .unwrap()
                .as_resource()
                .unwrap(),
            &UriRef::new("doc.rdf", "info")
        );
        let info = doc.resource(&UriRef::new("doc.rdf", "info")).unwrap();
        assert_eq!(info.class(), "ServerInformation");
        assert_eq!(info.property("memory").unwrap().as_int(), Some(92));
        assert_eq!(info.property("cpu").unwrap().as_int(), Some(600));
    }

    #[test]
    fn rdf_resource_reference() {
        let doc = parse_document(
            "doc.rdf",
            r##"<rdf:RDF>
              <CycleProvider rdf:ID="host">
                <serverInformation rdf:resource="#info"/>
              </CycleProvider>
              <ServerInformation rdf:ID="info"><memory>64</memory></ServerInformation>
            </rdf:RDF>"##,
        )
        .unwrap();
        let host = doc.resource(&UriRef::new("doc.rdf", "host")).unwrap();
        assert_eq!(
            host.property("serverInformation")
                .unwrap()
                .as_resource()
                .unwrap(),
            &UriRef::new("doc.rdf", "info")
        );
    }

    #[test]
    fn cross_document_reference() {
        let doc = parse_document(
            "a.rdf",
            r#"<rdf:RDF>
              <CycleProvider rdf:ID="host">
                <serverInformation rdf:resource="b.rdf#info"/>
              </CycleProvider>
            </rdf:RDF>"#,
        )
        .unwrap();
        let host = doc.resource(&UriRef::new("a.rdf", "host")).unwrap();
        assert_eq!(
            host.property("serverInformation")
                .unwrap()
                .as_resource()
                .unwrap()
                .as_str(),
            "b.rdf#info"
        );
    }

    #[test]
    fn rdf_about_resources() {
        let doc = parse_document(
            "doc.rdf",
            r#"<rdf:RDF>
              <ServerInformation rdf:about="doc.rdf#info"><memory>32</memory></ServerInformation>
            </rdf:RDF>"#,
        )
        .unwrap();
        assert!(doc.resource(&UriRef::new("doc.rdf", "info")).is_some());
    }

    #[test]
    fn missing_id_rejected() {
        let err = parse_document("d", "<rdf:RDF><C><p>1</p></C></rdf:RDF>").unwrap_err();
        assert!(err.to_string().contains("rdf:ID"));
    }

    #[test]
    fn dangling_internal_reference_rejected() {
        let err = parse_document(
            "d",
            r##"<rdf:RDF><C rdf:ID="x"><r rdf:resource="#missing"/></C></rdf:RDF>"##,
        )
        .unwrap_err();
        assert!(matches!(err, Error::DanglingReference { .. }));
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(parse_document("d", "<notrdf/>").is_err());
    }

    #[test]
    fn property_with_both_resource_and_content_rejected() {
        let err = parse_document(
            "d",
            r##"<rdf:RDF><C rdf:ID="x"><r rdf:resource="#x">text</r></C></rdf:RDF>"##,
        )
        .unwrap_err();
        assert!(err.to_string().contains("both"));
    }

    #[test]
    fn empty_literal_property() {
        let doc = parse_document("d", r#"<rdf:RDF><C rdf:ID="x"><p></p></C></rdf:RDF>"#).unwrap();
        let r = doc.resource(&UriRef::new("d", "x")).unwrap();
        assert_eq!(r.property("p").unwrap().as_literal(), Some(""));
    }
}
