//! RDF statements (triples). Documents decompose into statements — the
//! "atoms" the filter algorithm joins against rule atoms (paper §3.1/§3.2).

use std::fmt;

use crate::term::Term;
use crate::uri::UriRef;

/// The pseudo-property used for the per-resource class tuple the filter
/// inserts so that OID rules can register a resource by URI (paper §3.2,
/// Figure 4: `rdf#subject` rows).
pub const RDF_SUBJECT: &str = "rdf#subject";

/// An RDF statement: `(subject, predicate, object)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Statement {
    pub subject: UriRef,
    pub predicate: String,
    pub object: Term,
}

impl Statement {
    pub fn new(subject: UriRef, predicate: impl Into<String>, object: Term) -> Self {
        Statement {
            subject,
            predicate: predicate.into(),
            object,
        }
    }

    /// The synthetic statement marking a resource's existence; its object is
    /// the resource's own URI reference.
    pub fn subject_marker(subject: UriRef) -> Self {
        let object = Term::resource(subject.clone());
        Statement {
            subject,
            predicate: RDF_SUBJECT.to_owned(),
            object,
        }
    }

    pub fn is_subject_marker(&self) -> bool {
        self.predicate == RDF_SUBJECT
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subject_marker_points_to_itself() {
        let s = Statement::subject_marker(UriRef::new("doc.rdf", "host"));
        assert!(s.is_subject_marker());
        assert_eq!(s.object.as_resource().unwrap(), &s.subject);
    }

    #[test]
    fn display_shows_triple() {
        let s = Statement::new(
            UriRef::new("doc.rdf", "info"),
            "memory",
            Term::literal("92"),
        );
        assert_eq!(s.to_string(), "(doc.rdf#info, memory, 92)");
        assert!(!s.is_subject_marker());
    }
}
