//! Errors of the RDF layer.

use std::fmt;

pub type Result<T> = std::result::Result<T, Error>;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A resource's URI reference does not belong to the document it was
    /// added to.
    ForeignResource { document: String, resource: String },
    /// Two resources in one document share a URI reference.
    DuplicateResource(String),
    /// A reference into the document's own URI space has no target.
    DanglingReference { from: String, to: String },
    /// XML syntax error with position information.
    Xml {
        line: usize,
        col: usize,
        message: String,
    },
    /// The XML was well-formed but not a valid MDV RDF document.
    Rdf(String),
    /// Schema violation: unknown class, unknown property, wrong range, …
    Schema(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ForeignResource { document, resource } => write!(
                f,
                "resource '{resource}' does not belong to document '{document}'"
            ),
            Error::DuplicateResource(uri) => {
                write!(f, "duplicate resource '{uri}' in document")
            }
            Error::DanglingReference { from, to } => {
                write!(f, "dangling internal reference from '{from}' to '{to}'")
            }
            Error::Xml { line, col, message } => {
                write!(f, "XML error at {line}:{col}: {message}")
            }
            Error::Rdf(msg) => write!(f, "invalid RDF document: {msg}"),
            Error::Schema(msg) => write!(f, "schema violation: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::Xml {
            line: 3,
            col: 7,
            message: "unexpected '<'".into(),
        };
        assert_eq!(e.to_string(), "XML error at 3:7: unexpected '<'");
        assert!(Error::Schema("no class 'X'".into())
            .to_string()
            .contains("schema"));
    }
}
