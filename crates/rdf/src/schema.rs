//! RDF Schema: classes, property signatures, and MDV's strong/weak
//! reference annotations.
//!
//! MDV augments RDF Schema with properties that mark references as *strong*
//! (the referenced resource is always transmitted together with the
//! referencing one) or *weak* (never transmitted) — paper §2.4. The choice is
//! part of schema design, so it lives here, not in the rules.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::document::Document;
use crate::error::{Error, Result};
use crate::term::Term;

/// Types a literal-ranged property may take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LiteralType {
    Str,
    Int,
    Float,
    Bool,
}

impl LiteralType {
    /// Validates a literal's lexical form against this type.
    pub fn accepts(self, lexical: &str) -> bool {
        match self {
            LiteralType::Str => true,
            LiteralType::Int => lexical.trim().parse::<i64>().is_ok(),
            LiteralType::Float => lexical.trim().parse::<f64>().is_ok(),
            LiteralType::Bool => matches!(lexical.trim(), "true" | "false"),
        }
    }
}

impl fmt::Display for LiteralType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LiteralType::Str => "string",
            LiteralType::Int => "int",
            LiteralType::Float => "float",
            LiteralType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// MDV reference strength (paper §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefKind {
    /// Referenced resources are always transmitted with the referencing one.
    Strong,
    /// Referenced resources are never transmitted.
    Weak,
}

/// The range of a property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Range {
    Literal(LiteralType),
    /// Reference to a resource of (a subclass of) the named class.
    Class {
        class: String,
        kind: RefKind,
    },
}

/// A property definition within a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyDef {
    pub name: String,
    pub range: Range,
    /// Whether the property may carry multiple values (paper §2.3: the `?`
    /// any-operator applies to set-valued properties).
    pub set_valued: bool,
}

/// A class definition: optional superclass plus property definitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    pub name: String,
    pub parent: Option<String>,
    pub properties: Vec<PropertyDef>,
}

/// A validated RDF schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RdfSchema {
    classes: HashMap<String, ClassDef>,
}

impl RdfSchema {
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder {
            classes: Vec::new(),
        }
    }

    pub fn has_class(&self, name: &str) -> bool {
        self.classes.contains_key(name)
    }

    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes.get(name)
    }

    /// All class names, sorted for determinism.
    pub fn class_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.classes.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// True when `sub` equals or transitively specializes `sup`.
    pub fn is_subclass_of(&self, sub: &str, sup: &str) -> bool {
        let mut cur = Some(sub);
        while let Some(name) = cur {
            if name == sup {
                return true;
            }
            cur = self.classes.get(name).and_then(|c| c.parent.as_deref());
        }
        false
    }

    /// Looks up a property on a class, walking up the inheritance chain.
    pub fn property(&self, class: &str, property: &str) -> Option<&PropertyDef> {
        let mut cur = Some(class);
        while let Some(name) = cur {
            let def = self.classes.get(name)?;
            if let Some(p) = def.properties.iter().find(|p| p.name == property) {
                return Some(p);
            }
            cur = def.parent.as_deref();
        }
        None
    }

    /// The class a reference-ranged property points at, if any.
    pub fn range_class(&self, class: &str, property: &str) -> Option<&str> {
        match &self.property(class, property)?.range {
            Range::Class { class, .. } => Some(class),
            Range::Literal(_) => None,
        }
    }

    /// The reference strength of a property, if it is reference-ranged.
    pub fn ref_kind(&self, class: &str, property: &str) -> Option<RefKind> {
        match &self.property(class, property)?.range {
            Range::Class { kind, .. } => Some(*kind),
            Range::Literal(_) => None,
        }
    }

    /// Validates a document against the schema: classes exist, properties
    /// are defined, literal values parse, references go to reference-ranged
    /// properties, and repeated properties are declared set-valued.
    pub fn validate(&self, doc: &Document) -> Result<()> {
        for res in doc.resources() {
            if !self.has_class(res.class()) {
                return Err(Error::Schema(format!(
                    "resource {} has unknown class '{}'",
                    res.uri(),
                    res.class()
                )));
            }
            let mut seen: HashSet<&str> = HashSet::new();
            for (prop, term) in res.properties() {
                let def = self.property(res.class(), prop).ok_or_else(|| {
                    Error::Schema(format!(
                        "class '{}' has no property '{prop}' (resource {})",
                        res.class(),
                        res.uri()
                    ))
                })?;
                if !seen.insert(prop.as_str()) && !def.set_valued {
                    return Err(Error::Schema(format!(
                        "property '{prop}' of {} is not set-valued but appears twice",
                        res.uri()
                    )));
                }
                match (&def.range, term) {
                    (Range::Literal(lt), Term::Literal(s)) => {
                        if !lt.accepts(s) {
                            return Err(Error::Schema(format!(
                                "value '{s}' of property '{prop}' on {} is not a valid {lt}",
                                res.uri()
                            )));
                        }
                    }
                    (Range::Literal(_), Term::Resource(r)) => {
                        return Err(Error::Schema(format!(
                            "property '{prop}' of {} expects a literal, got reference {r}",
                            res.uri()
                        )));
                    }
                    (Range::Class { .. }, Term::Literal(s)) => {
                        return Err(Error::Schema(format!(
                            "property '{prop}' of {} expects a reference, got literal '{s}'",
                            res.uri()
                        )));
                    }
                    (Range::Class { .. }, Term::Resource(_)) => {
                        // Target class conformance can only be checked when
                        // the target is known; the store layer does that.
                    }
                }
            }
        }
        Ok(())
    }
}

/// Fluent schema construction.
pub struct SchemaBuilder {
    classes: Vec<ClassDef>,
}

impl SchemaBuilder {
    /// Adds a class configured by the closure.
    pub fn class(mut self, name: &str, f: impl FnOnce(ClassBuilder) -> ClassBuilder) -> Self {
        let cb = f(ClassBuilder {
            def: ClassDef {
                name: name.to_owned(),
                parent: None,
                properties: Vec::new(),
            },
        });
        self.classes.push(cb.def);
        self
    }

    /// Validates and freezes the schema.
    pub fn build(self) -> Result<RdfSchema> {
        let mut classes = HashMap::new();
        for c in self.classes {
            if classes.insert(c.name.clone(), c).is_some() {
                return Err(Error::Schema("duplicate class definition".into()));
            }
        }
        let schema = RdfSchema { classes };
        // parents and reference ranges must resolve; inheritance must be acyclic
        for (name, def) in &schema.classes {
            if let Some(parent) = &def.parent {
                if !schema.classes.contains_key(parent) {
                    return Err(Error::Schema(format!(
                        "class '{name}' extends unknown class '{parent}'"
                    )));
                }
            }
            for p in &def.properties {
                if let Range::Class { class, .. } = &p.range {
                    if !schema.classes.contains_key(class) {
                        return Err(Error::Schema(format!(
                            "property '{}' of '{name}' references unknown class '{class}'",
                            p.name
                        )));
                    }
                }
            }
            // cycle check by bounded walk
            let mut cur = def.parent.as_deref();
            let mut steps = 0;
            while let Some(parent) = cur {
                steps += 1;
                if parent == name || steps > schema.classes.len() {
                    return Err(Error::Schema(format!(
                        "inheritance cycle involving class '{name}'"
                    )));
                }
                cur = schema.classes.get(parent).and_then(|c| c.parent.as_deref());
            }
        }
        Ok(schema)
    }
}

/// Builder for a single class.
pub struct ClassBuilder {
    def: ClassDef,
}

impl ClassBuilder {
    pub fn extends(mut self, parent: &str) -> Self {
        self.def.parent = Some(parent.to_owned());
        self
    }

    fn prop(mut self, name: &str, range: Range, set_valued: bool) -> Self {
        self.def.properties.push(PropertyDef {
            name: name.to_owned(),
            range,
            set_valued,
        });
        self
    }

    /// Adds an already-constructed property definition (used by the textual
    /// schema parser).
    pub fn raw_property(mut self, prop: PropertyDef) -> Self {
        self.def.properties.push(prop);
        self
    }

    pub fn str(self, name: &str) -> Self {
        self.prop(name, Range::Literal(LiteralType::Str), false)
    }

    pub fn int(self, name: &str) -> Self {
        self.prop(name, Range::Literal(LiteralType::Int), false)
    }

    pub fn float(self, name: &str) -> Self {
        self.prop(name, Range::Literal(LiteralType::Float), false)
    }

    pub fn bool(self, name: &str) -> Self {
        self.prop(name, Range::Literal(LiteralType::Bool), false)
    }

    /// Set-valued string property (target of the `?` operator).
    pub fn str_set(self, name: &str) -> Self {
        self.prop(name, Range::Literal(LiteralType::Str), true)
    }

    pub fn int_set(self, name: &str) -> Self {
        self.prop(name, Range::Literal(LiteralType::Int), true)
    }

    /// Strong reference: target travels with the referencing resource.
    pub fn strong_ref(self, name: &str, class: &str) -> Self {
        self.prop(
            name,
            Range::Class {
                class: class.to_owned(),
                kind: RefKind::Strong,
            },
            false,
        )
    }

    /// Weak reference: target is never transmitted automatically.
    pub fn weak_ref(self, name: &str, class: &str) -> Self {
        self.prop(
            name,
            Range::Class {
                class: class.to_owned(),
                kind: RefKind::Weak,
            },
            false,
        )
    }

    /// Set-valued strong reference.
    pub fn strong_ref_set(self, name: &str, class: &str) -> Self {
        self.prop(
            name,
            Range::Class {
                class: class.to_owned(),
                kind: RefKind::Strong,
            },
            true,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Resource;
    use crate::uri::UriRef;

    /// The paper's running example schema (Figure 1).
    pub fn paper_schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .int("serverPort")
                    .int("synthValue")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    #[test]
    fn lookup_and_ranges() {
        let s = paper_schema();
        assert!(s.has_class("CycleProvider"));
        assert!(!s.has_class("Nope"));
        assert_eq!(
            s.range_class("CycleProvider", "serverInformation"),
            Some("ServerInformation")
        );
        assert_eq!(s.range_class("CycleProvider", "serverHost"), None);
        assert_eq!(
            s.ref_kind("CycleProvider", "serverInformation"),
            Some(RefKind::Strong)
        );
    }

    #[test]
    fn inheritance_resolution() {
        let s = RdfSchema::builder()
            .class("Provider", |c| c.str("name"))
            .class("CycleProvider", |c| c.extends("Provider").int("port"))
            .build()
            .unwrap();
        assert!(s.is_subclass_of("CycleProvider", "Provider"));
        assert!(s.is_subclass_of("Provider", "Provider"));
        assert!(!s.is_subclass_of("Provider", "CycleProvider"));
        // inherited property resolves
        assert!(s.property("CycleProvider", "name").is_some());
        assert!(s.property("Provider", "port").is_none());
    }

    #[test]
    fn build_rejects_unknown_parent_and_range() {
        assert!(RdfSchema::builder()
            .class("A", |c| c.extends("Missing"))
            .build()
            .is_err());
        assert!(RdfSchema::builder()
            .class("A", |c| c.strong_ref("r", "Missing"))
            .build()
            .is_err());
    }

    #[test]
    fn build_rejects_inheritance_cycle() {
        let err = RdfSchema::builder()
            .class("A", |c| c.extends("B"))
            .class("B", |c| c.extends("A"))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn validate_document_against_schema() {
        let s = paper_schema();
        let good = Document::new("doc.rdf")
            .with_resource(
                Resource::new(UriRef::new("doc.rdf", "host"), "CycleProvider")
                    .with("serverHost", Term::literal("pirates.uni-passau.de"))
                    .with("serverPort", Term::literal("5874"))
                    .with(
                        "serverInformation",
                        Term::resource(UriRef::new("doc.rdf", "info")),
                    ),
            )
            .with_resource(
                Resource::new(UriRef::new("doc.rdf", "info"), "ServerInformation")
                    .with("memory", Term::literal("92"))
                    .with("cpu", Term::literal("600")),
            );
        s.validate(&good).unwrap();

        // unknown class
        let bad = Document::new("d").with_resource(Resource::new(UriRef::new("d", "x"), "Nope"));
        assert!(s.validate(&bad).is_err());

        // unknown property
        let bad = Document::new("d").with_resource(
            Resource::new(UriRef::new("d", "x"), "ServerInformation")
                .with("speed", Term::literal("1")),
        );
        assert!(s.validate(&bad).is_err());

        // non-integer literal for int property
        let bad = Document::new("d").with_resource(
            Resource::new(UriRef::new("d", "x"), "ServerInformation")
                .with("memory", Term::literal("lots")),
        );
        assert!(s.validate(&bad).is_err());

        // literal where a reference is required
        let bad = Document::new("d").with_resource(
            Resource::new(UriRef::new("d", "x"), "CycleProvider")
                .with("serverInformation", Term::literal("info")),
        );
        assert!(s.validate(&bad).is_err());

        // repeated non-set-valued property
        let bad = Document::new("d").with_resource(
            Resource::new(UriRef::new("d", "x"), "ServerInformation")
                .with("memory", Term::literal("1"))
                .with("memory", Term::literal("2")),
        );
        assert!(s.validate(&bad).is_err());
    }

    #[test]
    fn set_valued_properties_validate() {
        let s = RdfSchema::builder()
            .class("C", |c| c.str_set("tag"))
            .build()
            .unwrap();
        let d = Document::new("d").with_resource(
            Resource::new(UriRef::new("d", "x"), "C")
                .with("tag", Term::literal("a"))
                .with("tag", Term::literal("b")),
        );
        s.validate(&d).unwrap();
    }

    #[test]
    fn literal_type_acceptance() {
        assert!(LiteralType::Int.accepts("42"));
        assert!(!LiteralType::Int.accepts("4.2"));
        assert!(LiteralType::Float.accepts("4.2"));
        assert!(LiteralType::Bool.accepts("true"));
        assert!(!LiteralType::Bool.accepts("yes"));
        assert!(LiteralType::Str.accepts("anything"));
    }
}
