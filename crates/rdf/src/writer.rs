//! Serializes a [`Document`] back to the RDF/XML subset. Together with
//! [`crate::parser`], documents round-trip, which the update path (re-register
//! a modified document, paper §2.2) relies on.

use std::fmt::Write as _;

use crate::document::Document;
use crate::term::Term;
use crate::xml::escape;

/// Renders a document as RDF/XML. References are emitted as `rdf:resource`
/// attributes (fragment-only when the target lives in the same document);
/// nesting is never re-created, which is semantically equivalent.
pub fn write_document(doc: &Document) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\"?>\n");
    out.push_str("<rdf:RDF xmlns:rdf=\"http://www.w3.org/1999/02/22-rdf-syntax-ns#\">\n");
    for res in doc.resources() {
        let _ = writeln!(
            out,
            "  <{} rdf:ID=\"{}\">",
            escape(res.class()),
            escape(res.uri().local_id())
        );
        for (prop, term) in res.properties() {
            match term {
                Term::Literal(text) => {
                    let _ = writeln!(
                        out,
                        "    <{p}>{v}</{p}>",
                        p = escape(prop),
                        v = escape(text)
                    );
                }
                Term::Resource(target) => {
                    let target_str = if target.document_uri() == doc.uri() {
                        format!("#{}", target.local_id())
                    } else {
                        target.as_str().to_owned()
                    };
                    let _ = writeln!(
                        out,
                        "    <{p} rdf:resource=\"{v}\"/>",
                        p = escape(prop),
                        v = escape(&target_str)
                    );
                }
            }
        }
        let _ = writeln!(out, "  </{}>", escape(res.class()));
    }
    out.push_str("</rdf:RDF>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;
    use crate::resource::Resource;
    use crate::uri::UriRef;

    fn sample() -> Document {
        Document::new("doc.rdf")
            .with_resource(
                Resource::new(UriRef::new("doc.rdf", "host"), "CycleProvider")
                    .with("serverHost", Term::literal("pirates.uni-passau.de"))
                    .with("serverPort", Term::literal("5874"))
                    .with(
                        "serverInformation",
                        Term::resource(UriRef::new("doc.rdf", "info")),
                    ),
            )
            .with_resource(
                Resource::new(UriRef::new("doc.rdf", "info"), "ServerInformation")
                    .with("memory", Term::literal("92"))
                    .with("cpu", Term::literal("600")),
            )
    }

    #[test]
    fn roundtrip_preserves_document() {
        let doc = sample();
        let xml = write_document(&doc);
        let parsed = parse_document("doc.rdf", &xml).unwrap();
        assert_eq!(doc, parsed);
    }

    #[test]
    fn cross_document_references_stay_absolute() {
        let doc = Document::new("a.rdf").with_resource(
            Resource::new(UriRef::new("a.rdf", "x"), "C")
                .with("r", Term::resource(UriRef::new("b.rdf", "y"))),
        );
        let xml = write_document(&doc);
        assert!(xml.contains("rdf:resource=\"b.rdf#y\""));
        let parsed = parse_document("a.rdf", &xml).unwrap();
        assert_eq!(doc, parsed);
    }

    #[test]
    fn special_characters_escaped() {
        let doc = Document::new("d").with_resource(
            Resource::new(UriRef::new("d", "x"), "C").with("p", Term::literal("a<b>&c\"d'e")),
        );
        let xml = write_document(&doc);
        let parsed = parse_document("d", &xml).unwrap();
        assert_eq!(doc, parsed);
    }

    #[test]
    fn set_valued_properties_roundtrip() {
        let doc = Document::new("d").with_resource(
            Resource::new(UriRef::new("d", "x"), "C")
                .with("tag", Term::literal("a"))
                .with("tag", Term::literal("b")),
        );
        let parsed = parse_document("d", &write_document(&doc)).unwrap();
        assert_eq!(doc, parsed);
    }
}
