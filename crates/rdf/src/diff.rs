//! Document diffing: detects added, updated, and deleted resources when a
//! document is re-registered.
//!
//! Paper §3.5: "Updated and deleted resources can be determined by comparing
//! the original RDF document with the updated, re-registered one. A resource
//! is updated if it is contained in both documents, but at least one property
//! is changed, added, or removed. A resource is deleted if it was contained
//! in the original document but it is no more in the updated one."

use std::collections::HashMap;

use crate::document::Document;
use crate::resource::Resource;
use crate::uri::UriRef;

/// The difference between two versions of the same document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DocumentDiff {
    /// Resources present only in the new version.
    pub added: Vec<Resource>,
    /// Resources present in both versions with changed content:
    /// `(old, new)` pairs.
    pub updated: Vec<(Resource, Resource)>,
    /// Resources present only in the old version.
    pub deleted: Vec<Resource>,
    /// Resources present in both versions with identical content.
    pub unchanged: Vec<UriRef>,
}

impl DocumentDiff {
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.updated.is_empty() && self.deleted.is_empty()
    }
}

/// Computes the diff from `old` to `new`. Both documents must share a URI;
/// resources are matched by URI reference.
pub fn diff(old: &Document, new: &Document) -> DocumentDiff {
    debug_assert_eq!(
        old.uri(),
        new.uri(),
        "diff requires two versions of one document"
    );
    let old_by_uri: HashMap<&UriRef, &Resource> =
        old.resources().iter().map(|r| (r.uri(), r)).collect();
    let new_by_uri: HashMap<&UriRef, &Resource> =
        new.resources().iter().map(|r| (r.uri(), r)).collect();

    let mut out = DocumentDiff::default();
    for res in new.resources() {
        match old_by_uri.get(res.uri()) {
            None => out.added.push(res.clone()),
            Some(old_res) if old_res.same_content(res) => out.unchanged.push(res.uri().clone()),
            Some(old_res) => out.updated.push(((*old_res).clone(), res.clone())),
        }
    }
    for res in old.resources() {
        if !new_by_uri.contains_key(res.uri()) {
            out.deleted.push(res.clone());
        }
    }
    out
}

/// The diff produced by deleting a whole document: every resource deleted
/// (paper §3.5: "If a complete document is deleted all contained resources
/// are deleted").
pub fn diff_delete_all(old: &Document) -> DocumentDiff {
    DocumentDiff {
        deleted: old.resources().to_vec(),
        ..DocumentDiff::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn doc(resources: Vec<Resource>) -> Document {
        let mut d = Document::new("doc.rdf");
        for r in resources {
            d.add_resource(r).unwrap();
        }
        d
    }

    fn res(id: &str, class: &str, props: &[(&str, &str)]) -> Resource {
        let mut r = Resource::new(UriRef::new("doc.rdf", id), class);
        for (p, v) in props {
            r.add(*p, Term::literal(*v));
        }
        r
    }

    #[test]
    fn identical_documents_diff_empty() {
        let a = doc(vec![res("x", "C", &[("p", "1")])]);
        let d = diff(&a, &a.clone());
        assert!(d.is_empty());
        assert_eq!(d.unchanged.len(), 1);
    }

    #[test]
    fn added_resource_detected() {
        let old = doc(vec![res("x", "C", &[])]);
        let new = doc(vec![res("x", "C", &[]), res("y", "C", &[])]);
        let d = diff(&old, &new);
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].uri().local_id(), "y");
        assert!(d.updated.is_empty() && d.deleted.is_empty());
    }

    #[test]
    fn property_change_is_update() {
        let old = doc(vec![res("x", "C", &[("memory", "32")])]);
        let new = doc(vec![res("x", "C", &[("memory", "128")])]);
        let d = diff(&old, &new);
        assert_eq!(d.updated.len(), 1);
        let (o, n) = &d.updated[0];
        assert_eq!(o.property("memory").unwrap().as_int(), Some(32));
        assert_eq!(n.property("memory").unwrap().as_int(), Some(128));
    }

    #[test]
    fn property_addition_and_removal_are_updates() {
        let old = doc(vec![res("x", "C", &[("p", "1")])]);
        let added_prop = doc(vec![res("x", "C", &[("p", "1"), ("q", "2")])]);
        assert_eq!(diff(&old, &added_prop).updated.len(), 1);
        let removed_prop = doc(vec![res("x", "C", &[])]);
        assert_eq!(diff(&old, &removed_prop).updated.len(), 1);
    }

    #[test]
    fn removed_resource_detected() {
        let old = doc(vec![res("x", "C", &[]), res("y", "C", &[])]);
        let new = doc(vec![res("x", "C", &[])]);
        let d = diff(&old, &new);
        assert_eq!(d.deleted.len(), 1);
        assert_eq!(d.deleted[0].uri().local_id(), "y");
    }

    #[test]
    fn delete_all_lists_every_resource() {
        let old = doc(vec![res("x", "C", &[]), res("y", "C", &[])]);
        let d = diff_delete_all(&old);
        assert_eq!(d.deleted.len(), 2);
        assert!(d.added.is_empty() && d.updated.is_empty());
    }

    #[test]
    fn property_order_is_not_an_update() {
        let old = doc(vec![res("x", "C", &[("p", "1"), ("q", "2")])]);
        let new = doc(vec![res("x", "C", &[("q", "2"), ("p", "1")])]);
        assert!(diff(&old, &new).is_empty());
    }
}
