//! # mdv-rdf
//!
//! The RDF data model used by MDV (Keidl et al., ICDE 2002):
//!
//! * [`UriRef`] — globally unique resource identifiers (`doc.rdf#host`),
//! * [`Term`], [`Statement`] — triples, the "atoms" the filter joins on,
//! * [`Resource`], [`Document`] — the registration unit,
//! * [`RdfSchema`] — classes, typed properties, and MDV's strong/weak
//!   reference annotations (paper §2.4),
//! * [`parser`] / [`writer`] — an RDF/XML-subset syntax (Figure 1 style),
//! * [`diff()`] — update/delete detection on document re-registration (§3.5).
//!
//! ```
//! use mdv_rdf::{parse_document, RdfSchema, UriRef};
//!
//! let schema = RdfSchema::builder()
//!     .class("ServerInformation", |c| c.int("memory").int("cpu"))
//!     .class("CycleProvider", |c| c
//!         .str("serverHost")
//!         .int("serverPort")
//!         .strong_ref("serverInformation", "ServerInformation"))
//!     .build().unwrap();
//!
//! let doc = parse_document("doc.rdf", r##"
//!     <rdf:RDF>
//!       <CycleProvider rdf:ID="host">
//!         <serverHost>pirates.uni-passau.de</serverHost>
//!         <serverPort>5874</serverPort>
//!         <serverInformation rdf:resource="#info"/>
//!       </CycleProvider>
//!       <ServerInformation rdf:ID="info">
//!         <memory>92</memory><cpu>600</cpu>
//!       </ServerInformation>
//!     </rdf:RDF>"##).unwrap();
//! schema.validate(&doc).unwrap();
//! assert_eq!(doc.resources().len(), 2);
//! assert_eq!(doc.statements().len(), 7); // Figure 4 has exactly these rows
//! ```
//!
//! `DESIGN.md` §4 holds the workspace-wide module map locating this
//! crate's files.

pub mod diff;
pub mod document;
pub mod error;
pub mod parser;
pub mod resource;
pub mod schema;
pub mod schema_text;
pub mod statement;
pub mod term;
pub mod uri;
pub mod writer;
pub mod xml;

pub use diff::{diff, diff_delete_all, DocumentDiff};
pub use document::Document;
pub use error::{Error, Result};
pub use parser::parse_document;
pub use resource::Resource;
pub use schema::{ClassDef, LiteralType, PropertyDef, Range, RdfSchema, RefKind};
pub use schema_text::{parse_schema, write_schema};
pub use statement::{Statement, RDF_SUBJECT};
pub use term::Term;
pub use uri::UriRef;
pub use writer::write_document;
