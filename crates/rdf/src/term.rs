//! RDF terms: the objects of statements.

use std::fmt;

use crate::uri::UriRef;

/// The object position of an RDF statement: either a literal value or a
/// reference to another resource. RDF does not distinguish nested from
/// referenced resources (paper §2.1), so both appear here as `Resource`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A literal. RDF literals are strings at heart; numeric interpretation
    /// happens at comparison time (the filter's string-reconversion joins).
    Literal(String),
    /// A reference to another resource by URI reference.
    Resource(UriRef),
}

impl Term {
    pub fn literal(s: impl Into<String>) -> Self {
        Term::Literal(s.into())
    }

    pub fn resource(r: UriRef) -> Self {
        Term::Resource(r)
    }

    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    pub fn is_resource(&self) -> bool {
        matches!(self, Term::Resource(_))
    }

    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Term::Literal(s) => Some(s),
            Term::Resource(_) => None,
        }
    }

    pub fn as_resource(&self) -> Option<&UriRef> {
        match self {
            Term::Resource(r) => Some(r),
            Term::Literal(_) => None,
        }
    }

    /// Numeric view of a literal, if it parses.
    pub fn as_int(&self) -> Option<i64> {
        self.as_literal()?.trim().parse().ok()
    }

    /// The lexical form stored into filter tables: literals verbatim,
    /// resources as their URI reference string.
    pub fn lexical(&self) -> &str {
        match self {
            Term::Literal(s) => s,
            Term::Resource(r) => r.as_str(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.lexical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_accessors() {
        let t = Term::literal("92");
        assert!(t.is_literal());
        assert_eq!(t.as_literal(), Some("92"));
        assert_eq!(t.as_int(), Some(92));
        assert_eq!(t.as_resource(), None);
        assert_eq!(t.lexical(), "92");
    }

    #[test]
    fn resource_accessors() {
        let r = UriRef::new("doc.rdf", "info");
        let t = Term::resource(r.clone());
        assert!(t.is_resource());
        assert_eq!(t.as_resource(), Some(&r));
        assert_eq!(t.as_int(), None);
        assert_eq!(t.lexical(), "doc.rdf#info");
    }

    #[test]
    fn non_numeric_literal_has_no_int() {
        assert_eq!(Term::literal("pirates").as_int(), None);
        assert_eq!(Term::literal(" 600 ").as_int(), Some(600));
    }
}
