//! A small textual schema-definition language, so tools (like the
//! `mdv-shell` binary) can load schemas from files instead of building them
//! in code.
//!
//! ```text
//! # comment
//! class ServerInformation {
//!     memory: int
//!     cpu: int
//! }
//! class CycleProvider : Provider {
//!     serverHost: str
//!     tags: set str
//!     serverInformation: strong ServerInformation
//!     backup: weak ServerInformation
//! }
//! ```
//!
//! Property types: `int`, `float`, `str`, `bool`, `set <literal-type>`,
//! `strong <Class>`, `weak <Class>`, `set strong <Class>`,
//! `set weak <Class>`.

use crate::error::{Error, Result};
use crate::schema::{ClassDef, LiteralType, PropertyDef, Range, RdfSchema, RefKind, SchemaBuilder};

/// Parses schema text into a validated [`RdfSchema`].
pub fn parse_schema(input: &str) -> Result<RdfSchema> {
    let mut classes: Vec<ClassDef> = Vec::new();
    let mut lines = input.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let header = line
            .strip_prefix("class ")
            .ok_or_else(|| err(lineno, "expected 'class <Name> [: Parent] {'"))?;
        let header = header
            .strip_suffix('{')
            .ok_or_else(|| err(lineno, "class header must end with '{'"))?
            .trim();
        let (name, parent) = match header.split_once(':') {
            Some((n, p)) => (n.trim().to_owned(), Some(p.trim().to_owned())),
            None => (header.to_owned(), None),
        };
        if name.is_empty() || !ident_ok(&name) {
            return Err(err(lineno, "invalid class name"));
        }
        if let Some(p) = &parent {
            if !ident_ok(p) {
                return Err(err(lineno, "invalid parent class name"));
            }
        }
        let mut properties = Vec::new();
        loop {
            let Some((lineno, raw)) = lines.next() else {
                return Err(err(lineno, "unterminated class body (missing '}')"));
            };
            let line = strip_comment(raw);
            if line.is_empty() {
                continue;
            }
            if line == "}" {
                break;
            }
            properties.push(parse_property(lineno, line)?);
        }
        classes.push(ClassDef {
            name,
            parent,
            properties,
        });
    }
    // feed through the builder for the standard validation
    let mut builder: SchemaBuilder = RdfSchema::builder();
    for class in classes {
        builder = builder.class(&class.name.clone(), move |mut cb| {
            if let Some(p) = &class.parent {
                cb = cb.extends(p);
            }
            for prop in &class.properties {
                cb = cb.raw_property(prop.clone());
            }
            cb
        });
    }
    builder.build()
}

fn parse_property(lineno: usize, line: &str) -> Result<PropertyDef> {
    let (name, type_text) = line
        .split_once(':')
        .ok_or_else(|| err(lineno, "expected '<property>: <type>'"))?;
    let name = name.trim().to_owned();
    if !ident_ok(&name) {
        return Err(err(lineno, "invalid property name"));
    }
    let mut words: Vec<&str> = type_text.split_whitespace().collect();
    let set_valued = words.first() == Some(&"set");
    if set_valued {
        words.remove(0);
    }
    let range = match words.as_slice() {
        ["int"] => Range::Literal(LiteralType::Int),
        ["float"] => Range::Literal(LiteralType::Float),
        ["str"] | ["string"] => Range::Literal(LiteralType::Str),
        ["bool"] => Range::Literal(LiteralType::Bool),
        ["strong", class] if ident_ok(class) => Range::Class {
            class: (*class).to_owned(),
            kind: RefKind::Strong,
        },
        ["weak", class] if ident_ok(class) => Range::Class {
            class: (*class).to_owned(),
            kind: RefKind::Weak,
        },
        _ => {
            return Err(err(
                lineno,
                "expected a type: int|float|str|bool|[set] strong <Class>|[set] weak <Class>",
            ))
        }
    };
    Ok(PropertyDef {
        name,
        range,
        set_valued,
    })
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => line[..i].trim(),
        None => line.trim(),
    }
}

fn ident_ok(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

fn err(lineno: usize, message: &str) -> Error {
    Error::Schema(format!("line {}: {message}", lineno + 1))
}

/// Renders a schema back to the textual format (round-trips with
/// [`parse_schema`]).
pub fn write_schema(schema: &RdfSchema) -> String {
    let mut out = String::new();
    for name in schema.class_names() {
        let class = schema.class(name).expect("listed class exists");
        match &class.parent {
            Some(p) => out.push_str(&format!("class {name} : {p} {{\n")),
            None => out.push_str(&format!("class {name} {{\n")),
        }
        for prop in &class.properties {
            let set = if prop.set_valued { "set " } else { "" };
            let ty = match &prop.range {
                Range::Literal(LiteralType::Int) => "int".to_owned(),
                Range::Literal(LiteralType::Float) => "float".to_owned(),
                Range::Literal(LiteralType::Str) => "str".to_owned(),
                Range::Literal(LiteralType::Bool) => "bool".to_owned(),
                Range::Class {
                    class,
                    kind: RefKind::Strong,
                } => format!("strong {class}"),
                Range::Class {
                    class,
                    kind: RefKind::Weak,
                } => format!("weak {class}"),
            };
            out.push_str(&format!("    {}: {set}{ty}\n", prop.name));
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# the paper's schema
class ServerInformation {
    memory: int
    cpu: int
}
class Provider {
    name: str
}
class CycleProvider : Provider {
    serverHost: str      # DNS name
    serverPort: int
    tags: set str
    serverInformation: strong ServerInformation
    backup: weak ServerInformation
}
"#;

    #[test]
    fn parses_sample() {
        let s = parse_schema(SAMPLE).unwrap();
        assert!(s.has_class("CycleProvider"));
        assert!(s.is_subclass_of("CycleProvider", "Provider"));
        assert_eq!(
            s.ref_kind("CycleProvider", "serverInformation"),
            Some(RefKind::Strong)
        );
        assert_eq!(s.ref_kind("CycleProvider", "backup"), Some(RefKind::Weak));
        assert!(s.property("CycleProvider", "tags").unwrap().set_valued);
        assert!(s.property("CycleProvider", "name").is_some(), "inherited");
    }

    #[test]
    fn roundtrips() {
        let s = parse_schema(SAMPLE).unwrap();
        let text = write_schema(&s);
        let s2 = parse_schema(&text).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_schema("class A {\n  p: nosuchtype\n}").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(parse_schema("klass A {}").is_err());
        assert!(parse_schema("class A").is_err());
        assert!(
            parse_schema("class A {\n  p: int").is_err(),
            "unterminated body"
        );
        assert!(parse_schema("class A : {\n}").is_err());
    }

    #[test]
    fn validation_still_applies() {
        // unknown parent caught by the builder
        let err = parse_schema("class A : Missing {\n}").unwrap_err();
        assert!(err.to_string().contains("unknown class"));
        // unknown reference target
        let err = parse_schema("class A {\n  r: strong Missing\n}").unwrap_err();
        assert!(err.to_string().contains("unknown class"));
    }

    #[test]
    fn set_references_parse() {
        let s = parse_schema("class B {\n  x: int\n}\nclass A {\n  rs: set strong B\n}").unwrap();
        let p = s.property("A", "rs").unwrap();
        assert!(p.set_valued);
        assert_eq!(s.ref_kind("A", "rs"), Some(RefKind::Strong));
    }
}
