//! Determinism of the parallel filter (DESIGN.md §5): for the same rule
//! base and the same workload, every thread count must produce the same
//! publications, the same iteration trace, and the same stats — byte for
//! byte. `tests/fault_sim.rs` and the seeded fault plans in `mdv-system`
//! depend on this; a schedule-dependent filter would make every seeded
//! scenario irreproducible.
//!
//! The workload generators are hand-rolled here (mirroring the paper's
//! Figure 10 shapes) because `mdv-workload` dev-depends on this crate.

use mdv_filter::{FilterConfig, FilterEngine, Publication};
use mdv_rdf::{Document, RdfSchema, Resource, Term, UriRef};
use mdv_testkit::{prop_assert, prop_assert_eq, property, Source};

fn schema() -> RdfSchema {
    RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()
        .unwrap()
}

fn make_doc(i: usize, host: &str, port: i64, memory: i64, cpu: i64) -> Document {
    let uri = format!("doc{i}.rdf");
    Document::new(uri.clone())
        .with_resource(
            Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                .with("serverHost", Term::literal(host))
                .with("serverPort", Term::literal(port.to_string()))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new(&uri, "info")),
                ),
        )
        .with_resource(
            Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                .with("memory", Term::literal(memory.to_string()))
                .with("cpu", Term::literal(cpu.to_string())),
        )
}

fn arb_docs(src: &mut Source, max: usize) -> Vec<Document> {
    let n = src.usize_in(1..max);
    (0..n)
        .map(|i| {
            let host = format!(
                "{}.{}",
                src.string_of("abc", 1..4),
                src.choose(&["org", "de"])
            );
            make_doc(
                i,
                &host,
                src.i64_in(1..10),
                src.i64_in(0..200),
                src.i64_in(0..1000),
            )
        })
        .collect()
}

/// The paper's Figure 10 rule shapes (OID/COMP/PATH/JOIN) with random
/// parameters — the same families the benchmarks sweep.
fn arb_rules(src: &mut Source, max: usize) -> Vec<String> {
    src.vec(1..max, |src| match src.usize_in(0..6) {
        0 => format!(
            "search CycleProvider c register c where c = 'doc{}.rdf#host'",
            src.usize_in(0..20)
        ),
        1 => format!(
            "search CycleProvider c register c where c.serverPort > {}",
            src.i64_in(0..10)
        ),
        2 => format!(
            "search CycleProvider c register c where c.serverInformation.memory = {}",
            src.i64_in(0..200)
        ),
        3 => format!(
            "search CycleProvider c register c where c.serverInformation.memory > {}",
            src.i64_in(0..200)
        ),
        4 => format!(
            "search CycleProvider c register c \
             where c.serverHost contains '.org' \
             and c.serverInformation.memory >= {} and c.serverInformation.cpu < {}",
            src.i64_in(0..200),
            src.i64_in(0..1000)
        ),
        _ => format!(
            "search ServerInformation s register s where s.memory <= {}",
            src.i64_in(0..200)
        ),
    })
}

fn engine_with(rules: &[String], threads: usize, use_rule_groups: bool) -> FilterEngine {
    let mut e = FilterEngine::with_config(
        schema(),
        FilterConfig {
            use_rule_groups,
            threads,
            ..FilterConfig::default()
        },
    );
    for r in rules {
        e.register_subscription(r).unwrap();
    }
    e
}

property! {
    /// Registration: publications, the Figure-9 iteration trace, and the
    /// stats counters are identical for threads ∈ {1, 2, 8} — and the
    /// threads=1 engine is byte-identical to the default-config engine
    /// (the pre-parallel engine of record).
    fn registration_is_thread_count_invariant(src) {
        let rules = arb_rules(src, 6);
        let docs = arb_docs(src, 10);
        let use_groups = src.bool();

        let mut reference = FilterEngine::with_config(
            schema(),
            FilterConfig {
                use_rule_groups: use_groups,
                ..FilterConfig::default()
            },
        );
        for r in &rules {
            reference.register_subscription(r).unwrap();
        }
        prop_assert_eq!(reference.config().threads, 1, "default is sequential");
        let (ref_pubs, ref_run) = reference.register_batch_traced(&docs).unwrap();

        for threads in [1usize, 2, 8] {
            let mut e = engine_with(&rules, threads, use_groups);
            let (pubs, run) = e.register_batch_traced(&docs).unwrap();
            prop_assert_eq!(&pubs, &ref_pubs, "publications diverged at threads={}", threads);
            prop_assert_eq!(&run, &ref_run, "iteration trace diverged at threads={}", threads);
            prop_assert_eq!(
                e.stats(),
                reference.stats(),
                "stats diverged at threads={}",
                threads
            );
        }
    }

    /// The three-pass update/delete protocol is equally thread-count
    /// invariant: the same update and delete sequence publishes the same
    /// additions/removals/updates for every thread count.
    fn updates_are_thread_count_invariant(src) {
        let rules = arb_rules(src, 5);
        let docs = arb_docs(src, 6);
        // mutate about half the documents, delete one
        let bumps: Vec<i64> = docs.iter().map(|_| src.i64_in(0..200)).collect();
        let delete_idx = src.usize_in(0..docs.len());

        let run = |threads: usize| -> (Vec<Publication>, Vec<Vec<Publication>>, Vec<Publication>) {
            let mut e = engine_with(&rules, threads, true);
            let reg = e.register_batch(&docs).unwrap();
            let mut upds = Vec::new();
            for (i, bump) in bumps.iter().enumerate() {
                if i % 2 == 0 {
                    let host = format!("doc{i}-host");
                    let updated = make_doc(i, &host, 5, *bump, 500);
                    upds.push(e.update_document(&updated).unwrap());
                }
            }
            let del = e.delete_document(docs[delete_idx].uri()).unwrap();
            (reg, upds, del)
        };

        let baseline = run(1);
        for threads in [2usize, 8] {
            let got = run(threads);
            prop_assert_eq!(&got, &baseline, "update/delete diverged at threads={}", threads);
        }
    }

    /// Parallel XML decomposition: `register_batch_xml` parses across the
    /// pool and must agree with parsing sequentially and registering the
    /// documents directly.
    fn xml_registration_is_thread_count_invariant(src) {
        let rules = arb_rules(src, 5);
        let docs = arb_docs(src, 8);
        let sources: Vec<(String, String)> = docs
            .iter()
            .map(|d| (d.uri().to_owned(), mdv_rdf::write_document(d)))
            .collect();

        let mut direct = engine_with(&rules, 1, true);
        let direct_pubs = direct.register_batch(&docs).unwrap();

        for threads in [1usize, 2, 8] {
            let mut e = engine_with(&rules, threads, true);
            let pubs = e.register_batch_xml(&sources).unwrap();
            prop_assert_eq!(&pubs, &direct_pubs, "xml path diverged at threads={}", threads);
        }
    }

    /// Validation errors are reported deterministically: the parallel
    /// validator returns the first failing document in batch order, exactly
    /// like the sequential loop, and rejects atomically (no partial state).
    fn validation_errors_are_deterministic(src) {
        let good = arb_docs(src, 5);
        let mut docs = good.clone();
        // two bad documents (unknown class); the first in batch order wins
        for (k, pos) in [src.usize_in(0..docs.len()), docs.len()].into_iter().enumerate() {
            let uri = format!("bad{k}.rdf");
            docs.insert(
                pos,
                Document::new(uri.clone())
                    .with_resource(Resource::new(UriRef::new(&uri, "x"), "UnknownClass")),
            );
        }
        let mut messages = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut e = engine_with(&[], threads, true);
            let err = e.register_batch(&docs).unwrap_err();
            messages.push(err.to_string());
            prop_assert_eq!(e.document_count(), 0, "rejection must be atomic");
        }
        prop_assert!(
            messages.windows(2).all(|w| w[0] == w[1]),
            "error choice diverged across thread counts: {:?}",
            messages
        );
    }
}
