//! Property-based tests of the filter algorithm against random workloads,
//! on `mdv-testkit` (deterministic seeds, ≥64 cases, see `MDV_PROP_CASES`).
//!
//! The central oracle: the incremental, index-driven [`FilterEngine`] must
//! produce exactly the matches of the [`NaiveEngine`] baseline (which
//! evaluates every rule against every new resource), for any rule base and
//! any batch of documents.

use mdv_filter::{FilterConfig, FilterEngine, NaiveEngine};
use mdv_rdf::{Document, RdfSchema, Resource, Term, UriRef};
use mdv_testkit::{prop_assert, prop_assert_eq, property, Source};

fn schema() -> RdfSchema {
    RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()
        .unwrap()
}

#[derive(Debug, Clone)]
struct DocSpec {
    host: String,
    port: i64,
    memory: i64,
    cpu: i64,
}

fn arb_doc_spec(src: &mut Source) -> DocSpec {
    DocSpec {
        host: format!(
            "{}.{}",
            src.string_of("abc", 1..4),
            src.choose(&["org", "de"])
        ),
        port: src.i64_in(1..10),
        memory: src.i64_in(0..200),
        cpu: src.i64_in(0..1000),
    }
}

fn make_doc(i: usize, s: &DocSpec) -> Document {
    let uri = format!("doc{i}.rdf");
    Document::new(uri.clone())
        .with_resource(
            Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                .with("serverHost", Term::literal(&s.host))
                .with("serverPort", Term::literal(s.port.to_string()))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new(&uri, "info")),
                ),
        )
        .with_resource(
            Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                .with("memory", Term::literal(s.memory.to_string()))
                .with("cpu", Term::literal(s.cpu.to_string())),
        )
}

/// Rules drawn from the paper's benchmark shapes (Figure 10) with random
/// parameters, plus join and or-variants.
fn arb_rule(src: &mut Source) -> String {
    match src.usize_in(0..8) {
        // OID
        0 => format!(
            "search CycleProvider c register c where c = 'doc{}.rdf#host'",
            src.usize_in(0..20)
        ),
        // COMP
        1 => format!(
            "search CycleProvider c register c where c.serverPort > {}",
            src.i64_in(0..10)
        ),
        // PATH (equality and ordering)
        2 => format!(
            "search CycleProvider c register c where c.serverInformation.memory = {}",
            src.i64_in(0..200)
        ),
        3 => format!(
            "search CycleProvider c register c where c.serverInformation.memory > {}",
            src.i64_in(0..200)
        ),
        // JOIN
        4 => format!(
            "search CycleProvider c register c \
             where c.serverHost contains '.org' \
             and c.serverInformation.memory >= {} and c.serverInformation.cpu < {}",
            src.i64_in(0..200),
            src.i64_in(0..1000)
        ),
        // contains
        5 => format!(
            "search CycleProvider c register c where c.serverHost contains '{}'",
            src.string_of("abc.", 1..4)
        ),
        // register the referenced side
        6 => format!(
            "search ServerInformation s register s where s.memory <= {}",
            src.i64_in(0..200)
        ),
        // or-rule
        _ => format!(
            "search CycleProvider c register c \
             where c.serverInformation.memory > {} or c.serverInformation.cpu > {}",
            src.i64_in(0..200),
            src.i64_in(0..1000)
        ),
    }
}

fn arb_rules(src: &mut Source, max: usize) -> Vec<String> {
    src.vec(1..max, arb_rule)
}

fn arb_docs(src: &mut Source, max: usize) -> Vec<Document> {
    let specs = src.vec(1..max, arb_doc_spec);
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| make_doc(i, s))
        .collect()
}

fn added_matches(pubs: &[mdv_filter::Publication]) -> Vec<(u64, String)> {
    let mut out: Vec<(u64, String)> = pubs
        .iter()
        .flat_map(|p| p.added.iter().map(move |u| (p.subscription.0, u.clone())))
        .collect();
    out.sort();
    out
}

property! {
    /// Filter and naive baseline agree on arbitrary rule bases and batches.
    fn filter_equals_naive(src) {
        let rules = arb_rules(src, 8);
        let docs = arb_docs(src, 10);
        let mut filter = FilterEngine::new(schema());
        let mut naive = NaiveEngine::new(schema());
        for r in &rules {
            // subscription ids stay aligned because both engines assign
            // sequentially
            filter.register_subscription(r).unwrap();
            naive.register_subscription(r).unwrap();
        }
        let a = filter.register_batch(&docs).unwrap();
        let b = naive.register_batch(&docs).unwrap();
        prop_assert_eq!(added_matches(&a), added_matches(&b));
    }

    /// Rule groups are a pure optimization: identical output with groups
    /// disabled.
    fn rule_groups_are_transparent(src) {
        let rules = arb_rules(src, 6);
        let docs = arb_docs(src, 8);
        let mut grouped = FilterEngine::new(schema());
        let mut ungrouped = FilterEngine::with_config(
            schema(),
            FilterConfig {
                use_rule_groups: false,
                ..FilterConfig::default()
            },
        );
        for r in &rules {
            grouped.register_subscription(r).unwrap();
            ungrouped.register_subscription(r).unwrap();
        }
        let a = grouped.register_batch(&docs).unwrap();
        let b = ungrouped.register_batch(&docs).unwrap();
        prop_assert_eq!(added_matches(&a), added_matches(&b));
    }

    /// Batched registration equals one-document-at-a-time registration.
    fn batching_is_transparent(src) {
        let rules = arb_rules(src, 6);
        let docs = arb_docs(src, 8);
        let mut batch = FilterEngine::new(schema());
        let mut seq = FilterEngine::new(schema());
        for r in &rules {
            batch.register_subscription(r).unwrap();
            seq.register_subscription(r).unwrap();
        }
        let a = added_matches(&batch.register_batch(&docs).unwrap());
        let mut b = Vec::new();
        for d in &docs {
            b.extend(added_matches(&seq.register_document(d).unwrap()));
        }
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Registering rules before or after the data yields the same matches
    /// (backfill equals live filtering).
    fn backfill_equals_live(src) {
        let rules = arb_rules(src, 6);
        let docs = arb_docs(src, 8);

        // live: rules first, then data
        let mut live = FilterEngine::new(schema());
        for r in &rules {
            live.register_subscription(r).unwrap();
        }
        let live_matches = added_matches(&live.register_batch(&docs).unwrap());

        // backfill: data first, then rules
        let mut back = FilterEngine::new(schema());
        back.register_batch(&docs).unwrap();
        let mut back_matches = Vec::new();
        for (i, r) in rules.iter().enumerate() {
            let (_, initial) = back.register_subscription(r).unwrap();
            back_matches.extend(initial.into_iter().map(|u| (i as u64, u)));
        }
        back_matches.sort();
        prop_assert_eq!(live_matches, back_matches);
    }

    /// An update cycle (register → update → update back) converges to the
    /// same engine-visible state as registering the final version directly.
    fn update_converges_to_fresh_state(src) {
        let rules = arb_rules(src, 5);
        let spec_a = arb_doc_spec(src);
        let spec_b = arb_doc_spec(src);
        let mut engine = FilterEngine::new(schema());
        for r in &rules {
            engine.register_subscription(r).unwrap();
        }
        engine.register_document(&make_doc(0, &spec_a)).unwrap();
        engine.update_document(&make_doc(0, &spec_b)).unwrap();

        let mut fresh = FilterEngine::new(schema());
        for r in &rules {
            fresh.register_subscription(r).unwrap();
        }
        fresh.register_document(&make_doc(0, &spec_b)).unwrap();

        // the materialized state agrees
        let dump = |e: &FilterEngine| {
            let mut rows: Vec<String> = e
                .db()
                .table("RuleResults")
                .unwrap()
                .iter()
                .map(|(_, r)| format!("{r:?}"))
                .collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(dump(&engine), dump(&fresh));
        // and each end rule's current matches agree via check_match
        let subs: Vec<_> = engine.subscriptions().map(|s| s.end_rules.clone()).collect();
        for ends in subs {
            for end in ends {
                let a = engine.check_match(end, "doc0.rdf#host").unwrap();
                let b = fresh.check_match(end, "doc0.rdf#host").unwrap();
                prop_assert_eq!(a, b);
            }
        }
    }

    /// Unregistering everything leaves an empty graph and empty rule tables.
    fn unregister_all_is_clean(src) {
        let rules = arb_rules(src, 6);
        let specs = src.vec(0..5, arb_doc_spec);
        let mut engine = FilterEngine::new(schema());
        let docs: Vec<Document> =
            specs.iter().enumerate().map(|(i, s)| make_doc(i, s)).collect();
        engine.register_batch(&docs).unwrap();
        let mut subs = Vec::new();
        for r in &rules {
            subs.push(engine.register_subscription(r).unwrap().0);
        }
        for s in subs {
            engine.unregister_subscription(s).unwrap();
        }
        prop_assert!(engine.graph().is_empty());
        prop_assert_eq!(engine.db().table("AtomicRules").unwrap().len(), 0);
        prop_assert_eq!(engine.db().table("RuleDependencies").unwrap().len(), 0);
        prop_assert_eq!(engine.db().table("RuleGroups").unwrap().len(), 0);
        prop_assert_eq!(engine.db().table("RuleResults").unwrap().len(), 0);
        for t in ["FilterRules", "FilterRulesEQ", "FilterRulesGT", "FilterRulesCON"] {
            prop_assert_eq!(engine.db().table(t).unwrap().len(), 0);
        }
    }

    /// The SQL translation of a query returns exactly what the direct
    /// evaluator returns, for arbitrary rule bases and data.
    fn sql_translation_agrees_with_direct_evaluation(src) {
        use mdv_filter::{query_eval, sql_translate};
        use mdv_rulelang::{normalize, parse_rule, split_or};

        let rules = arb_rules(src, 6);
        let specs = src.vec(0..8, arb_doc_spec);
        let s = schema();
        let mut engine = FilterEngine::new(s.clone());
        let docs: Vec<Document> =
            specs.iter().enumerate().map(|(i, sp)| make_doc(i, sp)).collect();
        engine.register_batch(&docs).unwrap();

        for rule_text in &rules {
            for conj in split_or(&parse_rule(rule_text).unwrap()) {
                let n = match normalize(&conj, &s) {
                    Ok(n) => n,
                    Err(mdv_rulelang::Error::Unsatisfiable) => continue,
                    Err(e) => panic!("bad rule: {e}"),
                };
                let direct = query_eval::evaluate(engine.db(), &s, &n).unwrap();
                let via_sql = sql_translate::evaluate_via_sql(engine.db(), &s, &n).unwrap();
                prop_assert_eq!(direct, via_sql, "divergence for: {}", conj);
            }
        }
    }
}
