//! Exactness of the index-accelerated matching paths (DESIGN.md §10): for
//! the same rule base and workload, every combination of
//! `FilterConfig::use_trigger_index` / `use_subsumption` must produce the
//! same publications and the same Figure-9 iteration trace as the scan
//! baseline — byte for byte, including under subscription churn that
//! promotes and demotes subsumption-frontier members.
//!
//! Replayed by `ci/check.sh` under seeds 1 / 31337 / 20020226.
//!
//! The workload generators are hand-rolled here (mirroring the covering
//! families the matching-scaling benchmark sweeps) because `mdv-workload`
//! dev-depends on this crate.

use mdv_filter::{FilterConfig, FilterEngine, Publication, SubscriptionId};
use mdv_rdf::{Document, RdfSchema, Resource, Term, UriRef};
use mdv_testkit::{prop_assert_eq, property, Source};

fn schema() -> RdfSchema {
    RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()
        .unwrap()
}

fn make_doc(i: usize, host: &str, memory: i64, cpu: i64) -> Document {
    let uri = format!("doc{i}.rdf");
    Document::new(uri.clone())
        .with_resource(
            Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                .with("serverHost", Term::literal(host))
                .with("serverPort", Term::literal("5000"))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new(&uri, "info")),
                ),
        )
        .with_resource(
            Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                .with("memory", Term::literal(memory.to_string()))
                .with("cpu", Term::literal(cpu.to_string())),
        )
}

/// Hosts shaped `n{j}.r{k}.grid.{org,de}` — the same token families the
/// `contains` patterns below anchor on, so postings buckets get real
/// collisions and real misses.
fn arb_docs(src: &mut Source, base: usize, max: usize) -> Vec<Document> {
    let n = src.usize_in(1..max);
    (0..n)
        .map(|i| {
            let host = format!(
                "n{}.r{}.grid.{}",
                src.usize_in(0..6),
                src.usize_in(0..4),
                src.choose(&["org", "de"])
            );
            make_doc(base + i, &host, src.i64_in(0..100), src.i64_in(0..1000))
        })
        .collect()
}

/// A rule base heavy on `contains` with constructed covering pairs — for
/// each family `k`, the base pattern `.r{k}.grid` covers every refinement
/// `n{j}.r{k}.grid` — plus ordered numeric rules (the threshold-chain
/// path), string/numeric equality, and a join shape, so all trigger routes
/// run in one pass.
fn arb_rules(src: &mut Source, max: usize) -> Vec<String> {
    let con = |pat: &str| {
        format!("search CycleProvider c register c where c.serverHost contains '{pat}'")
    };
    src.vec(2..max, |src| match src.usize_in(0..8) {
        0 => con(&format!(".r{}.grid", src.usize_in(0..4))),
        1 | 2 => con(&format!(
            "n{}.r{}.grid",
            src.usize_in(0..6),
            src.usize_in(0..4)
        )),
        3 => con(src.choose(&[".org", ".de", "grid", "n1"]).to_owned()),
        4 => format!(
            "search ServerInformation s register s where s.memory {} {}",
            src.choose(&[">", ">=", "<", "<="]),
            src.i64_in(0..100)
        ),
        5 => format!(
            "search CycleProvider c register c where c.serverInformation.cpu > {}",
            src.i64_in(0..1000)
        ),
        6 => format!(
            "search CycleProvider c register c where c = 'doc{}.rdf#host'",
            src.usize_in(0..20)
        ),
        _ => format!(
            "search CycleProvider c register c \
             where c.serverHost contains '.r{}.grid' \
             and c.serverInformation.memory >= {}",
            src.usize_in(0..4),
            src.i64_in(0..100)
        ),
    })
}

const CONFIGS: [(bool, bool); 4] = [(false, false), (true, false), (false, true), (true, true)];

fn engine_with(rules: &[String], index: bool, subsumption: bool) -> FilterEngine {
    let mut e = FilterEngine::with_config(
        schema(),
        FilterConfig {
            use_trigger_index: index,
            use_subsumption: subsumption,
            ..FilterConfig::default()
        },
    );
    for r in rules {
        e.register_subscription(r).unwrap();
    }
    e
}

property! {
    /// One registration pass: publications and the Figure-9 trace agree
    /// across all four (index, subsumption) combinations, and stats that
    /// are not eval counters agree too.
    fn index_and_subsumption_match_scan(src) {
        let rules = arb_rules(src, 12);
        let docs = arb_docs(src, 0, 12);

        let mut reference = engine_with(&rules, false, false);
        let (ref_pubs, ref_run) = reference.register_batch_traced(&docs).unwrap();

        for (index, subsumption) in CONFIGS {
            let mut e = engine_with(&rules, index, subsumption);
            let (pubs, run) = e.register_batch_traced(&docs).unwrap();
            prop_assert_eq!(
                &pubs, &ref_pubs,
                "publications diverged at index={} subsumption={}", index, subsumption
            );
            prop_assert_eq!(
                &run, &ref_run,
                "trace diverged at index={} subsumption={}", index, subsumption
            );
            prop_assert_eq!(e.stats().trigger_matches, reference.stats().trigger_matches);
        }
    }

    /// Subscription churn: unsubscribing in an adversarial order (coverers
    /// first promotes covered rules to the frontier; covered first shrinks
    /// cover sets) and re-subscribing afterwards must leave every config
    /// publishing identically at each step.
    fn matching_survives_frontier_churn(src) {
        let rules = arb_rules(src, 10);
        let docs1 = arb_docs(src, 0, 8);
        let docs2 = arb_docs(src, 100, 8);
        let docs3 = arb_docs(src, 200, 8);

        // which subscriptions to drop, and in which order: ascending
        // registration order kills base (covering) patterns before their
        // refinements; descending does the reverse
        let drop_count = src.usize_in(1..rules.len());
        let ascending = src.bool();
        let resub = src.bool();

        type Outcome = (Vec<Publication>, Vec<Publication>, Vec<Vec<String>>, Vec<Publication>);
        let run = |index: bool, subsumption: bool| -> Outcome {
            let mut e = FilterEngine::with_config(
                schema(),
                FilterConfig {
                    use_trigger_index: index,
                    use_subsumption: subsumption,
                    ..FilterConfig::default()
                },
            );
            let mut subs = Vec::new();
            for r in &rules {
                subs.push(e.register_subscription(r).unwrap().0);
            }
            let p1 = e.register_batch(&docs1).unwrap();
            let dropped: Vec<SubscriptionId> = if ascending {
                subs.iter().take(drop_count).copied().collect()
            } else {
                subs.iter().rev().take(drop_count).copied().collect()
            };
            for id in &dropped {
                e.unregister_subscription(*id).unwrap();
            }
            let p2 = e.register_batch(&docs2).unwrap();
            let mut initial = Vec::new();
            if resub {
                // re-register the dropped rule texts; initial matches are
                // computed against the existing base data
                let texts: Vec<&String> = if ascending {
                    rules.iter().take(drop_count).collect()
                } else {
                    rules.iter().rev().take(drop_count).collect()
                };
                for t in texts {
                    initial.push(e.register_subscription(t).unwrap().1);
                }
            }
            let p3 = e.register_batch(&docs3).unwrap();
            (p1, p2, initial, p3)
        };

        let baseline = run(false, false);
        for (index, subsumption) in CONFIGS {
            let got = run(index, subsumption);
            prop_assert_eq!(
                &got, &baseline,
                "churn outcome diverged at index={} subsumption={}", index, subsumption
            );
        }
    }

    /// The index paths compose with the parallel filter and the update/
    /// delete passes: threads × config sweeps stay byte-identical.
    fn index_is_thread_and_update_invariant(src) {
        let rules = arb_rules(src, 8);
        let docs = arb_docs(src, 0, 6);
        let bump = src.i64_in(0..100);
        let delete_idx = src.usize_in(0..docs.len());

        let run = |index: bool, subsumption: bool, threads: usize| {
            let mut e = FilterEngine::with_config(
                schema(),
                FilterConfig {
                    use_trigger_index: index,
                    use_subsumption: subsumption,
                    threads,
                    ..FilterConfig::default()
                },
            );
            for r in &rules {
                e.register_subscription(r).unwrap();
            }
            let reg = e.register_batch(&docs).unwrap();
            let upd = e
                .update_document(&make_doc(0, "n1.r1.grid.org", bump, 600))
                .unwrap();
            let del = e.delete_document(docs[delete_idx].uri()).unwrap();
            (reg, upd, del)
        };

        let baseline = run(false, false, 1);
        for (index, subsumption) in CONFIGS {
            for threads in [1usize, 4] {
                let got = run(index, subsumption, threads);
                prop_assert_eq!(
                    &got, &baseline,
                    "diverged at index={} subsumption={} threads={}",
                    index, subsumption, threads
                );
            }
        }
    }
}
