//! Cross-shard determinism (DESIGN.md §8): a sharded MDP filter must be
//! indistinguishable, byte for byte, from the single-engine filter of
//! record. Publications, Figure-9 iteration traces (in shard-invariant
//! canonical form), and the stats counters are pinned across shard counts
//! {1, 2, 4, 8} × thread counts, and the shards=1 wrapper is *verbatim*
//! identical to the bare [`FilterEngine`] — raw traces and stats included.
//! `ci/check.sh` replays these properties under three fixed seeds; a
//! shard-placement-dependent filter would make every seeded fault scenario
//! in `mdv-system` irreproducible.
//!
//! The workload generators mirror `tests/parallel_determinism.rs` (the
//! paper's Figure 10 shapes); `mdv-workload` dev-depends on this crate, so
//! they are hand-rolled here.

use mdv_filter::{FilterConfig, FilterEngine, Publication, ShardedFilterEngine};
use mdv_rdf::{Document, RdfSchema, Resource, Term, UriRef};
use mdv_testkit::{prop_assert_eq, property, Source};

fn schema() -> RdfSchema {
    RdfSchema::builder()
        .class("ServerInformation", |c| c.int("memory").int("cpu"))
        .class("CycleProvider", |c| {
            c.str("serverHost")
                .int("serverPort")
                .strong_ref("serverInformation", "ServerInformation")
        })
        .build()
        .unwrap()
}

fn make_doc(i: usize, host: &str, port: i64, memory: i64, cpu: i64) -> Document {
    let uri = format!("doc{i}.rdf");
    Document::new(uri.clone())
        .with_resource(
            Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                .with("serverHost", Term::literal(host))
                .with("serverPort", Term::literal(port.to_string()))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new(&uri, "info")),
                ),
        )
        .with_resource(
            Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                .with("memory", Term::literal(memory.to_string()))
                .with("cpu", Term::literal(cpu.to_string())),
        )
}

fn arb_docs(src: &mut Source, max: usize) -> Vec<Document> {
    let n = src.usize_in(1..max);
    (0..n)
        .map(|i| {
            let host = format!(
                "{}.{}",
                src.string_of("abc", 1..4),
                src.choose(&["org", "de"])
            );
            make_doc(
                i,
                &host,
                src.i64_in(1..10),
                src.i64_in(0..200),
                src.i64_in(0..1000),
            )
        })
        .collect()
}

/// The paper's Figure 10 rule shapes (OID/COMP/PATH/JOIN) with random
/// parameters — the same families the benchmarks sweep. Random literals
/// spread same-shape rules across shards (rules route by full-text hash).
fn arb_rules(src: &mut Source, max: usize) -> Vec<String> {
    src.vec(1..max, |src| match src.usize_in(0..6) {
        0 => format!(
            "search CycleProvider c register c where c = 'doc{}.rdf#host'",
            src.usize_in(0..20)
        ),
        1 => format!(
            "search CycleProvider c register c where c.serverPort > {}",
            src.i64_in(0..10)
        ),
        2 => format!(
            "search CycleProvider c register c where c.serverInformation.memory = {}",
            src.i64_in(0..200)
        ),
        3 => format!(
            "search CycleProvider c register c where c.serverInformation.memory > {}",
            src.i64_in(0..200)
        ),
        4 => format!(
            "search CycleProvider c register c \
             where c.serverHost contains '.org' \
             and c.serverInformation.memory >= {} and c.serverInformation.cpu < {}",
            src.i64_in(0..200),
            src.i64_in(0..1000)
        ),
        _ => format!(
            "search ServerInformation s register s where s.memory <= {}",
            src.i64_in(0..200)
        ),
    })
}

fn sharded_with(
    rules: &[String],
    shards: usize,
    threads: usize,
    use_rule_groups: bool,
) -> ShardedFilterEngine {
    let mut e = ShardedFilterEngine::with_config(
        schema(),
        FilterConfig {
            use_rule_groups,
            threads,
            shards,
            ..FilterConfig::default()
        },
    );
    for r in rules {
        e.register_subscription(r).unwrap();
    }
    e
}

property! {
    /// shards=1 is the bare engine in disguise: subscription ids, initial
    /// matches, publications, the *raw* Figure-9 trace, and the stats
    /// counters are byte-identical to a [`FilterEngine`] with the same
    /// config — not merely canonically equivalent.
    fn single_shard_is_verbatim_the_bare_engine(src) {
        let rules = arb_rules(src, 6);
        let docs = arb_docs(src, 10);
        let config = FilterConfig {
            use_rule_groups: src.bool(),
            ..FilterConfig::default()
        };
        prop_assert_eq!(config.shards, 1, "default is unsharded");

        let mut plain = FilterEngine::with_config(schema(), config);
        let mut sharded = ShardedFilterEngine::with_config(schema(), config);
        for r in &rules {
            let (pid, pinit) = plain.register_subscription(r).unwrap();
            let (sid, sinit) = sharded.register_subscription(r).unwrap();
            prop_assert_eq!(pid, sid, "subscription ids diverged");
            prop_assert_eq!(pinit, sinit, "initial matches diverged");
        }
        let (ppubs, prun) = plain.register_batch_traced(&docs).unwrap();
        let (spubs, sruns) = sharded.register_batch_traced(&docs).unwrap();
        prop_assert_eq!(&ppubs, &spubs, "publications diverged");
        prop_assert_eq!(std::slice::from_ref(&prun), &sruns[..], "raw trace diverged");
        prop_assert_eq!(plain.stats(), sharded.stats(), "stats diverged");
    }

    /// Registration: publications and the canonical Figure-9 trace are
    /// identical for shards ∈ {1, 2, 4, 8} × threads ∈ {1, 4}, and for a
    /// fixed shard count the stats counters are pinned across thread
    /// counts. Freshly registered subscriptions report the same initial
    /// matches everywhere.
    fn registration_is_shard_count_invariant(src) {
        let rules = arb_rules(src, 6);
        let docs = arb_docs(src, 10);
        let use_groups = src.bool();
        let late_rule = arb_rules(src, 2).pop().unwrap();

        let mut reference = sharded_with(&rules, 1, 1, use_groups);
        let (ref_pubs, ref_runs) = reference.register_batch_traced(&docs).unwrap();
        let ref_trace = reference.canonical_trace(&ref_runs);
        let (_, ref_initial) = reference.register_subscription(&late_rule).unwrap();

        for shards in [2usize, 4, 8] {
            let mut stats = Vec::new();
            for threads in [1usize, 4] {
                let mut e = sharded_with(&rules, shards, threads, use_groups);
                let (pubs, runs) = e.register_batch_traced(&docs).unwrap();
                prop_assert_eq!(
                    &pubs, &ref_pubs,
                    "publications diverged at shards={} threads={}", shards, threads
                );
                prop_assert_eq!(
                    &e.canonical_trace(&runs), &ref_trace,
                    "canonical trace diverged at shards={} threads={}", shards, threads
                );
                let (_, initial) = e.register_subscription(&late_rule).unwrap();
                prop_assert_eq!(
                    &initial, &ref_initial,
                    "initial matches diverged at shards={} threads={}", shards, threads
                );
                stats.push(*e.stats());
            }
            prop_assert_eq!(
                &stats[0], &stats[1],
                "stats not pinned across thread counts at shards={}", shards
            );
        }
    }

    /// The three-pass update/delete protocol (§3.5) and unregistration are
    /// equally shard-count invariant: the same mutation sequence publishes
    /// the same additions/removals/updates for every shard layout.
    fn updates_are_shard_count_invariant(src) {
        let rules = arb_rules(src, 5);
        let docs = arb_docs(src, 6);
        let bumps: Vec<i64> = docs.iter().map(|_| src.i64_in(0..200)).collect();
        let delete_idx = src.usize_in(0..docs.len());
        let drop_rule = src.usize_in(0..rules.len());

        type Outcome = (Vec<Publication>, Vec<Vec<Publication>>, Vec<Publication>);
        let run = |shards: usize| -> Outcome {
            let mut e = sharded_with(&rules, shards, 1, true);
            let ids: Vec<_> = e.subscriptions().map(|s| s.id).collect();
            let reg = e.register_batch(&docs).unwrap();
            e.unregister_subscription(ids[drop_rule]).unwrap();
            let mut upds = Vec::new();
            for (i, bump) in bumps.iter().enumerate() {
                if i % 2 == 0 {
                    let host = format!("doc{i}-host");
                    let updated = make_doc(i, &host, 5, *bump, 500);
                    upds.push(e.update_document(&updated).unwrap());
                }
            }
            let del = e.delete_document(docs[delete_idx].uri()).unwrap();
            (reg, upds, del)
        };

        let baseline = run(1);
        for shards in [2usize, 4, 8] {
            let got = run(shards);
            prop_assert_eq!(&got, &baseline, "mutations diverged at shards={}", shards);
        }
    }
}
