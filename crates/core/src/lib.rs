//! # mdv-filter
//!
//! The MDV publish & subscribe **filter algorithm** — the core contribution
//! of *"A Publish & Subscribe Architecture for Distributed Metadata
//! Management"* (Keidl, Kreutz, Kemper, Kossmann; ICDE 2002), implemented on
//! top of an embedded relational engine exactly as the paper prescribes
//! (§3: "solely based on standard relational database technology").
//!
//! The pipeline:
//!
//! 1. **Documents** are decomposed into atoms — RDF statements plus the
//!    synthetic `rdf#subject` marker rows (§3.2, Figure 4) — in
//!    [`store::Atom`].
//! 2. **Rules** are normalized, decomposed into *triggering rules* and
//!    *join rules* (§3.3.1, [`decompose()`]), merged into the deduplicating
//!    global dependency graph (§3.3.2, [`DepGraph`]), and grouped into
//!    *rule groups* (§3.3.3).
//! 3. Triggering rules live in the relational `FilterRules*` tables
//!    ([`rule_tables`]) that act as indexes from new metadata to affected
//!    rules (§3.3.4, Figure 8).
//! 4. The **filter** ([`FilterEngine`]) joins document atoms against those
//!    tables, then evaluates dependent join rules iteratively along the
//!    dependency graph with materialized intermediate results (§3.4,
//!    Figure 9).
//! 5. **Updates and deletions** run the filter three times (§3.5) to
//!    compute removals, survivors, and new matches.
//!
//! A [`NaiveEngine`] baseline (evaluate every rule against every new
//! resource) quantifies what the filter saves.
//!
//! ```
//! use mdv_rdf::{parse_document, RdfSchema};
//! use mdv_filter::FilterEngine;
//!
//! let schema = RdfSchema::builder()
//!     .class("ServerInformation", |c| c.int("memory").int("cpu"))
//!     .class("CycleProvider", |c| c
//!         .str("serverHost").int("serverPort")
//!         .strong_ref("serverInformation", "ServerInformation"))
//!     .build().unwrap();
//! let mut engine = FilterEngine::new(schema);
//!
//! // the paper's Example 1
//! let (sub, initial) = engine.register_subscription(
//!     "search CycleProvider c register c \
//!      where c.serverHost contains 'uni-passau.de' \
//!      and c.serverInformation.memory > 64").unwrap();
//! assert!(initial.is_empty());
//!
//! // the paper's Figure 1 document
//! let doc = parse_document("doc.rdf", r##"
//!     <rdf:RDF>
//!       <CycleProvider rdf:ID="host">
//!         <serverHost>pirates.uni-passau.de</serverHost>
//!         <serverPort>5874</serverPort>
//!         <serverInformation rdf:resource="#info"/>
//!       </CycleProvider>
//!       <ServerInformation rdf:ID="info">
//!         <memory>92</memory><cpu>600</cpu>
//!       </ServerInformation>
//!     </rdf:RDF>"##).unwrap();
//! let pubs = engine.register_document(&doc).unwrap();
//! assert_eq!(pubs[0].subscription, sub);
//! assert_eq!(pubs[0].added, vec!["doc.rdf#host".to_owned()]);
//! ```
//!
//! Batch filtering can run its read-only phases on a thread pool
//! ([`FilterConfig::threads`]) with byte-identical publications at any
//! thread count — see `DESIGN.md` §5, "Parallel filter execution". One
//! MDP can further partition its rule base across independent filter
//! shards ([`ShardedFilterEngine`], [`FilterConfig::shards`]) with
//! byte-identical publications at any shard count — `DESIGN.md` §8.
//! Trigger matching itself is index-accelerated: `contains` rules sit in
//! an inverted token-postings index and a subscription-subsumption
//! frontier ([`TriggerIndex`], [`FilterConfig::use_trigger_index`],
//! [`FilterConfig::use_subsumption`]) with byte-identical output either
//! way — `DESIGN.md` §10. `DESIGN.md` §4 holds the workspace-wide module
//! map locating this crate's files.

pub mod atoms;
pub mod decompose;
pub mod depgraph;
pub mod dot;
pub mod engine;
pub mod error;
pub mod explain;
pub mod naive;
pub mod query_eval;
pub mod registry;
pub mod rule_tables;
pub mod sharded;
pub mod sql_translate;
pub mod store;
pub mod trace;
pub mod trigger_index;
pub mod update;

pub use atoms::{
    AtomicRule, AtomicRuleKind, GroupId, JoinPred, JoinSpec, RuleId, Side, TriggerOp, TriggerPred,
};
pub use decompose::{decompose, ProtoRule, ProtoRules};
pub use depgraph::{DepGraph, MergeOutcome};
pub use dot::to_dot;
pub use engine::{FilterConfig, FilterEngine};
pub use error::{Error, Result};
pub use naive::NaiveEngine;
pub use registry::{Publication, Subscription, SubscriptionId};
pub use sharded::ShardedFilterEngine;
pub use store::{Atom, BaseStore};
pub use trace::{FilterRun, FilterStats};
pub use trigger_index::TriggerIndex;
