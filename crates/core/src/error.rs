//! Errors of the filter engine.

use std::fmt;

pub type Result<T> = std::result::Result<T, Error>;

#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Bubbled up from the storage engine.
    Store(mdv_relstore::Error),
    /// Bubbled up from the RDF layer (validation, parsing).
    Rdf(mdv_rdf::Error),
    /// Bubbled up from the rule-language front end.
    Rule(mdv_rulelang::Error),
    /// A rule shape the decomposition does not support.
    Decompose(String),
    /// Subscription management errors (unknown ids, duplicates).
    Subscription(String),
    /// Document registry errors (re-registering, unknown documents).
    Document(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Store(e) => write!(f, "storage error: {e}"),
            Error::Rdf(e) => write!(f, "rdf error: {e}"),
            Error::Rule(e) => write!(f, "rule error: {e}"),
            Error::Decompose(msg) => write!(f, "decomposition error: {msg}"),
            Error::Subscription(msg) => write!(f, "subscription error: {msg}"),
            Error::Document(msg) => write!(f, "document error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<mdv_relstore::Error> for Error {
    fn from(e: mdv_relstore::Error) -> Self {
        Error::Store(e)
    }
}

impl From<mdv_rdf::Error> for Error {
    fn from(e: mdv_rdf::Error) -> Self {
        Error::Rdf(e)
    }
}

impl From<mdv_rulelang::Error> for Error {
    fn from(e: mdv_rulelang::Error) -> Self {
        Error::Rule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = mdv_relstore::Error::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("storage error"));
        let e: Error = mdv_rulelang::Error::Unsatisfiable.into();
        assert!(e.to_string().contains("rule error"));
    }
}
