//! Translation of normalized MDV queries into SQL join queries over the
//! base tables — the mechanism the paper describes for search requests
//! ("Search requests are translated into SQL join queries", §2.2), in the
//! RDF-over-RDBMS style of Florescu/Kossmann (the paper's reference 14).
//!
//! Each search variable becomes a `Resources` alias restricted to its class
//! (and subclasses); each property access becomes a `Statements` self-join;
//! numeric comparisons reconvert through `CAST(value AS FLOAT)`; the result
//! is the `DISTINCT` set of URI references bound to the registered
//! variable. [`evaluate_via_sql`] executes the translation on the embedded
//! engine and is tested to agree with the direct evaluator
//! ([`crate::query_eval`]).

use std::fmt::Write as _;

use mdv_rdf::RdfSchema;
use mdv_relstore::{sql, Database};
use mdv_rulelang::{Const, NormOperand, NormalizedRule, RuleOp};

use crate::error::{Error, Result};
use crate::query_eval::class_and_descendants;

/// Translates a normalized rule/query into a SQL `SELECT` statement.
pub fn to_sql(rule: &NormalizedRule, schema: &RdfSchema) -> Result<String> {
    let mut from = Vec::new();
    let mut where_parts = Vec::new();

    // one Resources alias per variable, constrained to its class hierarchy
    for binding in &rule.bindings {
        let alias = format!("r_{}", binding.var);
        from.push(format!("Resources {alias}"));
        let classes = class_and_descendants(schema, &binding.class);
        let alternatives: Vec<String> = classes
            .iter()
            .map(|c| format!("{alias}.class = {}", quote(c)))
            .collect();
        where_parts.push(if alternatives.len() == 1 {
            alternatives.into_iter().next().expect("one alternative")
        } else {
            format!("({})", alternatives.join(" OR "))
        });
    }

    // one Statements alias per property access
    let mut stmt_count = 0;
    let mut property_access =
        |var: &str, prop: &str, from: &mut Vec<String>, where_parts: &mut Vec<String>| -> String {
            stmt_count += 1;
            let alias = format!("s{stmt_count}");
            from.push(format!("Statements {alias}"));
            where_parts.push(format!("{alias}.uri_reference = r_{var}.uri_reference"));
            where_parts.push(format!("{alias}.property = {}", quote(prop)));
            alias
        };

    for pred in &rule.predicates {
        // resolve each operand to a SQL scalar expression
        let mut operand = |op: &NormOperand,
                           from: &mut Vec<String>,
                           where_parts: &mut Vec<String>|
         -> Result<(String, bool)> {
            // returns (scalar sql, is_numeric_constant)
            Ok(match op {
                NormOperand::Subject(v) => (format!("r_{v}.uri_reference"), false),
                NormOperand::Prop { var, prop, .. } => {
                    let alias = property_access(var, prop, from, where_parts);
                    (format!("{alias}.value"), false)
                }
                NormOperand::Const(Const::Str(s)) => (quote(s), false),
                NormOperand::Const(Const::Int(i)) => (i.to_string(), true),
                NormOperand::Const(Const::Float(x)) => (x.to_string(), true),
            })
        };
        let (lhs, _) = operand(&pred.lhs, &mut from, &mut where_parts)?;
        let (rhs, rhs_numeric) = operand(&pred.rhs, &mut from, &mut where_parts)?;
        let sql_op = match pred.op {
            RuleOp::Eq => "=",
            RuleOp::Ne => "!=",
            RuleOp::Lt => "<",
            RuleOp::Le => "<=",
            RuleOp::Gt => ">",
            RuleOp::Ge => ">=",
            RuleOp::Contains => "CONTAINS",
        };
        // ordering operators (and numeric equality against a numeric
        // constant) reconvert through CAST — the paper's string storage
        let needs_cast =
            pred.op.is_ordering() || (rhs_numeric && matches!(pred.op, RuleOp::Eq | RuleOp::Ne));
        let cast = |scalar: &str, is_const_num: bool| {
            if !needs_cast || is_const_num {
                scalar.to_owned()
            } else {
                format!("CAST({scalar} AS FLOAT)")
            }
        };
        where_parts.push(format!(
            "{} {sql_op} {}",
            cast(&lhs, false),
            cast(&rhs, rhs_numeric)
        ));
    }

    let mut out = String::new();
    let _ = write!(
        out,
        "SELECT DISTINCT r_{}.uri_reference FROM {}",
        rule.register,
        from.join(", ")
    );
    if !where_parts.is_empty() {
        let _ = write!(out, " WHERE {}", where_parts.join(" AND "));
    }
    let _ = write!(out, " ORDER BY r_{}.uri_reference", rule.register);
    Ok(out)
}

/// Translates and executes a normalized query against a base-table database,
/// returning the matching URI references (sorted).
pub fn evaluate_via_sql(
    db: &Database,
    schema: &RdfSchema,
    rule: &NormalizedRule,
) -> Result<Vec<String>> {
    let sql_text = to_sql(rule, schema)?;
    let rs = sql::execute(db, &sql_text).map_err(Error::Store)?;
    Ok(rs.rows.into_iter().map(|r| r[0].to_string()).collect())
}

fn quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_eval;
    use crate::store::{create_base_tables, BaseStore};
    use mdv_rdf::{Resource, Term, UriRef};
    use mdv_rulelang::{normalize, parse_rule};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn db() -> Database {
        let mut db = Database::new();
        create_base_tables(&mut db).unwrap();
        for (i, (host, memory, cpu)) in [
            ("a.uni-passau.de", 128, 600),
            ("b.example.org", 92, 700),
            ("c.uni-passau.de", 32, 500),
            ("d.uni-passau.de", 256, 400),
        ]
        .iter()
        .enumerate()
        {
            let uri = format!("doc{i}.rdf");
            BaseStore::insert_resource(
                &mut db,
                &Resource::new(UriRef::new(&uri, "host"), "CycleProvider")
                    .with("serverHost", Term::literal(*host))
                    .with(
                        "serverInformation",
                        Term::resource(UriRef::new(&uri, "info")),
                    ),
                &uri,
            )
            .unwrap();
            BaseStore::insert_resource(
                &mut db,
                &Resource::new(UriRef::new(&uri, "info"), "ServerInformation")
                    .with("memory", Term::literal(memory.to_string()))
                    .with("cpu", Term::literal(cpu.to_string())),
                &uri,
            )
            .unwrap();
        }
        db
    }

    fn normalized(text: &str) -> NormalizedRule {
        normalize(&parse_rule(text).unwrap(), &schema()).unwrap()
    }

    #[test]
    fn translation_has_expected_shape() {
        let n = normalized(
            "search CycleProvider c register c \
             where c.serverHost contains 'uni-passau.de' \
             and c.serverInformation.memory > 64",
        );
        let sql_text = to_sql(&n, &schema()).unwrap();
        assert!(sql_text.starts_with("SELECT DISTINCT r_c.uri_reference"));
        assert!(sql_text.contains("Resources r_c"));
        assert!(sql_text.contains("Statements s1"));
        assert!(sql_text.contains("CONTAINS 'uni-passau.de'"));
        assert!(sql_text.contains("CAST(") && sql_text.contains("AS FLOAT) > 64"));
    }

    #[test]
    fn sql_agrees_with_direct_evaluator() {
        let db = db();
        let s = schema();
        let queries = [
            "search CycleProvider c register c",
            "search CycleProvider c register c where c.serverHost contains 'uni-passau.de'",
            "search CycleProvider c register c where c.serverInformation.memory > 64",
            "search CycleProvider c register c where c = 'doc1.rdf#host'",
            "search ServerInformation i register i where i.memory >= 92 and i.cpu < 650",
            "search ServerInformation i, CycleProvider c register i \
             where c.serverInformation = i and c.serverHost contains 'uni-passau.de'",
            "search CycleProvider c, ServerInformation i register c \
             where c.serverInformation = i and i.memory > 64 and i.cpu <= 600",
        ];
        for q in queries {
            let n = normalized(q);
            let direct = query_eval::evaluate(&db, &s, &n).unwrap();
            let via_sql = evaluate_via_sql(&db, &s, &n).unwrap();
            assert_eq!(direct, via_sql, "divergence for: {q}");
        }
    }

    #[test]
    fn string_constants_are_escaped() {
        let n = normalized("search CycleProvider c register c where c.serverHost = 'it''s'");
        let sql_text = to_sql(&n, &schema()).unwrap();
        assert!(sql_text.contains("'it''s'"));
        // and it executes without error
        evaluate_via_sql(&db(), &schema(), &n).unwrap();
    }

    #[test]
    fn subclass_translation_uses_or() {
        let s = RdfSchema::builder()
            .class("Provider", |c| c.str("name"))
            .class("CycleProvider", |c| c.extends("Provider").int("port"))
            .build()
            .unwrap();
        let n = normalize(&parse_rule("search Provider p register p").unwrap(), &s).unwrap();
        let sql_text = to_sql(&n, &s).unwrap();
        assert!(sql_text.contains("r_p.class = 'Provider'"));
        assert!(sql_text.contains("r_p.class = 'CycleProvider'"));
        assert!(sql_text.contains(" OR "));
    }
}
