//! Index structures that accelerate trigger matching (DESIGN.md §10).
//!
//! The scan baseline in [`crate::rule_tables::matching_triggers`] walks every
//! rule registered for a `(class, property)` partition and evaluates its
//! predicate against the document value — O(rules) per atom. At 100k+ rules
//! this dominates the filter pass (ROADMAP item 4). This module keeps two
//! additional structures, maintained incrementally on subscribe/unsubscribe
//! and consulted instead of the scan when [`crate::FilterConfig`] enables
//! them:
//!
//! * **Inverted token postings for `contains`** ([`TriggerOp::Contains`]):
//!   every pattern is anchored on its longest *interior* token (a maximal
//!   alphanumeric run bounded by non-alphanumeric characters on both sides
//!   inside the pattern). If a document value contains the pattern, the
//!   anchor necessarily occurs in the value as a full maximal token, so the
//!   candidate set for a value is the union of the postings of its distinct
//!   tokens plus the (rare) patterns with no interior token. Candidates are
//!   then verified with a real `contains` check, so the result is exact.
//!
//! * **A subsumption (covering) frontier**: pattern A *covers* pattern B
//!   when B contains A as a substring — every value matching B also matches
//!   A, so B never needs independent trigger evaluation while A is absent
//!   from the value. Covered rules are kept in a single-parent forest;
//!   matching evaluates only the frontier (roots) and cascades into children
//!   of matching rules. Unsubscribing a coverer promotes its children to its
//!   own parent (or to the frontier). The ordered numeric operators
//!   (`<`, `<=`, `>`, `>=`) get the same treatment for free via a sorted
//!   threshold chain: the frontier is the weakest threshold and matching
//!   walks the chain only as far as the document value reaches.
//!
//! Exactness and byte-identity with the scan path are pinned by
//! `tests/matching_equivalence.rs`: all index paths emit candidates in
//! ascending [`RuleId`] order, which equals the scan's emission order
//! (row buckets preserve insertion order and rule ids grow monotonically).
//!
//! # Example
//!
//! ```
//! use mdv_filter::trigger_index::TriggerIndex;
//! use mdv_filter::{RuleId, TriggerOp, TriggerPred};
//!
//! let mut idx = TriggerIndex::default();
//! let pred = |v: &str| TriggerPred {
//!     property: "serverHost".into(),
//!     op: TriggerOp::Contains,
//!     value: v.into(),
//! };
//! idx.insert(RuleId(0), "CycleProvider", &pred(".uni-passau.de"));
//! idx.insert(RuleId(1), "CycleProvider", &pred("host1.uni-passau.de"));
//!
//! // rule 1's pattern contains rule 0's → rule 0 covers rule 1, and the
//! // frontier holds only rule 0.
//! let (hits, _evals) = idx.match_contains(
//!     "CycleProvider",
//!     "serverHost",
//!     "host1.uni-passau.de",
//!     true,
//!     true,
//! );
//! assert_eq!(hits, vec![RuleId(0), RuleId(1)]);
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::atoms::{RuleId, TriggerOp, TriggerPred};

/// Maximal alphanumeric runs of `s` as byte ranges.
fn token_runs(s: &str) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut start: Option<usize> = None;
    for (i, c) in s.char_indices() {
        if c.is_alphanumeric() {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(b) = start.take() {
            runs.push((b, i));
        }
    }
    if let Some(b) = start {
        runs.push((b, s.len()));
    }
    runs
}

/// Distinct maximal tokens of a document value.
fn full_tokens(s: &str) -> BTreeSet<&str> {
    token_runs(s).into_iter().map(|(b, e)| &s[b..e]).collect()
}

/// The anchor token of a pattern: its longest *interior* maximal
/// alphanumeric run (bounded by non-alphanumeric characters on both sides
/// within the pattern), ties broken towards the leftmost. Interior tokens
/// are guaranteed to appear as full maximal tokens in any string containing
/// the pattern; boundary runs may fuse with neighbouring characters.
fn anchor_token(pattern: &str) -> Option<&str> {
    token_runs(pattern)
        .into_iter()
        .filter(|&(b, e)| b > 0 && e < pattern.len())
        .max_by_key(|&(b, e)| (e - b, std::cmp::Reverse(b)))
        .map(|(b, e)| &pattern[b..e])
}

/// Inserts into a sorted `Vec` keeping it sorted; no-op on duplicates.
fn sorted_insert<T: Ord>(v: &mut Vec<T>, x: T) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

/// Removes from a sorted `Vec`; no-op when absent.
fn sorted_remove<T: Ord>(v: &mut Vec<T>, x: &T) {
    if let Ok(pos) = v.binary_search(x) {
        v.remove(pos);
    }
}

/// Postings and cover forest for the `contains` rules of one
/// `(class, property)` partition.
#[derive(Debug, Clone, Default)]
struct ConPartition {
    /// Every rule's pattern, keyed by id (iteration order = scan order).
    patterns: BTreeMap<RuleId, String>,
    /// Anchor token → rules anchored on it (sorted by id).
    postings: HashMap<String, Vec<RuleId>>,
    /// Rules whose pattern has no interior token; always candidates.
    unanchored: Vec<RuleId>,
    /// Every maximal token of every pattern → rules containing it (sorted).
    /// Used to find existing rules that a newly inserted rule covers.
    pattern_tokens: HashMap<String, Vec<RuleId>>,
    /// Covered rule → the rule that covers it (single parent).
    parent: HashMap<RuleId, RuleId>,
    /// Coverer → directly covered rules (sorted by id).
    children: HashMap<RuleId, Vec<RuleId>>,
}

impl ConPartition {
    /// Exact candidate set for a document value: union of the postings of
    /// its distinct tokens plus the unanchored rules, ascending by id.
    fn candidates(&self, value: &str) -> BTreeSet<RuleId> {
        let mut out: BTreeSet<RuleId> = self.unanchored.iter().copied().collect();
        for tok in full_tokens(value) {
            if let Some(list) = self.postings.get(tok) {
                out.extend(list.iter().copied());
            }
        }
        out
    }

    fn insert(&mut self, id: RuleId, pattern: &str) {
        // Find the rule's coverer before self-insertion: every existing
        // pattern that `pattern` contains is a coverer; parent = the
        // longest (strongest) of them, ties towards the smallest id.
        let parent = self
            .candidates(pattern)
            .into_iter()
            .filter(|c| pattern.contains(self.patterns[c].as_str()))
            .max_by_key(|c| (self.patterns[c].len(), std::cmp::Reverse(*c)));
        if let Some(p) = parent {
            self.parent.insert(id, p);
            sorted_insert(self.children.entry(p).or_default(), id);
        }
        // Existing *roots* whose pattern contains `pattern` are now covered
        // by the new rule. Any such pattern contains the new rule's anchor
        // as a full token, so `pattern_tokens[anchor]` enumerates every
        // candidate. (An unanchored new rule skips this — still exact,
        // the frontier is merely a little wider than it could be.)
        if let Some(anchor) = anchor_token(pattern) {
            if let Some(cands) = self.pattern_tokens.get(anchor) {
                for c in cands.clone() {
                    // `c` may be the parent just chosen above when two
                    // callers insert byte-identical patterns (the engine
                    // dedups those away); skip it to keep the forest acyclic.
                    if self.parent.get(&id) == Some(&c) {
                        continue;
                    }
                    if !self.parent.contains_key(&c) && self.patterns[&c].contains(pattern) {
                        self.parent.insert(c, id);
                        sorted_insert(self.children.entry(id).or_default(), c);
                    }
                }
            }
        }
        match anchor_token(pattern) {
            Some(anchor) => sorted_insert(self.postings.entry(anchor.to_owned()).or_default(), id),
            None => sorted_insert(&mut self.unanchored, id),
        }
        for tok in full_tokens(pattern) {
            sorted_insert(self.pattern_tokens.entry(tok.to_owned()).or_default(), id);
        }
        self.patterns.insert(id, pattern.to_owned());
    }

    fn remove(&mut self, id: RuleId) {
        let Some(pattern) = self.patterns.remove(&id) else {
            return;
        };
        match anchor_token(&pattern) {
            Some(anchor) => {
                if let Some(list) = self.postings.get_mut(anchor) {
                    sorted_remove(list, &id);
                    if list.is_empty() {
                        self.postings.remove(anchor);
                    }
                }
            }
            None => sorted_remove(&mut self.unanchored, &id),
        }
        for tok in full_tokens(&pattern) {
            if let Some(list) = self.pattern_tokens.get_mut(tok) {
                sorted_remove(list, &id);
                if list.is_empty() {
                    self.pattern_tokens.remove(tok);
                }
            }
        }
        // Promote covered children to the departing rule's own coverer, or
        // to the frontier. Covering is transitive (substring-of-substring),
        // so the promoted edges stay valid.
        let grandparent = self.parent.remove(&id);
        if let Some(p) = grandparent {
            if let Some(siblings) = self.children.get_mut(&p) {
                sorted_remove(siblings, &id);
            }
        }
        for child in self.children.remove(&id).unwrap_or_default() {
            match grandparent {
                Some(p) => {
                    self.parent.insert(child, p);
                    sorted_insert(self.children.entry(p).or_default(), child);
                }
                None => {
                    self.parent.remove(&child);
                }
            }
        }
    }

    /// Index-only matching: verify each candidate, no cover cascade.
    fn match_plain(&self, value: &str) -> (Vec<RuleId>, u64) {
        let cands = self.candidates(value);
        let evals = cands.len() as u64;
        let hits = cands
            .into_iter()
            .filter(|c| value.contains(self.patterns[c].as_str()))
            .collect();
        (hits, evals)
    }

    /// Frontier matching: evaluate roots only, cascade into children of
    /// matching rules. `use_postings` narrows the roots via the inverted
    /// index; otherwise every root is evaluated.
    fn match_frontier(&self, value: &str, use_postings: bool) -> (Vec<RuleId>, u64) {
        let mut evals = 0u64;
        let mut matched = BTreeSet::new();
        let roots: Vec<RuleId> = if use_postings {
            self.candidates(value)
                .into_iter()
                .filter(|c| !self.parent.contains_key(c))
                .collect()
        } else {
            self.patterns
                .keys()
                .filter(|c| !self.parent.contains_key(c))
                .copied()
                .collect()
        };
        let mut stack = roots;
        while let Some(c) = stack.pop() {
            evals += 1;
            if value.contains(self.patterns[&c].as_str()) {
                matched.insert(c);
                if let Some(kids) = self.children.get(&c) {
                    stack.extend(kids.iter().copied());
                }
            }
        }
        (matched.into_iter().collect(), evals)
    }

    /// (frontier size, covered rule count) — introspection for tests/docs.
    fn frontier_stats(&self) -> (usize, usize) {
        let covered = self.parent.len();
        (self.patterns.len() - covered, covered)
    }
}

/// Sorted threshold chain for one ordered numeric operator of one
/// `(class, property)` partition. The chain *is* the cover frontier for a
/// totally ordered predicate: for `>` the weakest threshold covers all
/// stronger ones, and matching walks the chain only while thresholds keep
/// matching. Rules whose constant does not parse as a (non-NaN) number can
/// never match (`TriggerOp::matches` is false on parse failure) and are
/// left out of the chain entirely.
#[derive(Debug, Clone, Default)]
struct Chain {
    /// `(threshold, rule)` ascending by `(f64::total_cmp, RuleId)`.
    entries: Vec<(f64, RuleId)>,
}

impl Chain {
    fn position(&self, t: f64, id: RuleId) -> Result<usize, usize> {
        self.entries
            .binary_search_by(|(et, eid)| et.total_cmp(&t).then(eid.cmp(&id)))
    }

    fn insert(&mut self, t: f64, id: RuleId) {
        if let Err(pos) = self.position(t, id) {
            self.entries.insert(pos, (t, id));
        }
    }

    fn remove(&mut self, t: f64, id: RuleId) {
        if let Ok(pos) = self.position(t, id) {
            self.entries.remove(pos);
        }
    }

    /// Walk the chain from its weak end, stopping at the first threshold
    /// the document value no longer satisfies. Sound because `total_cmp`
    /// order is numerically non-decreasing (no NaN in the chain, and the
    /// strict/non-strict comparisons treat `-0.0 == 0.0`).
    fn matches(&self, op: TriggerOp, d: f64) -> (Vec<RuleId>, u64) {
        let mut hits = Vec::new();
        let mut evals = 0u64;
        match op {
            TriggerOp::Gt | TriggerOp::Ge => {
                for &(t, id) in &self.entries {
                    evals += 1;
                    let ok = if op == TriggerOp::Gt { d > t } else { d >= t };
                    if !ok {
                        break;
                    }
                    hits.push(id);
                }
            }
            TriggerOp::Lt | TriggerOp::Le => {
                for &(t, id) in self.entries.iter().rev() {
                    evals += 1;
                    let ok = if op == TriggerOp::Lt { d < t } else { d <= t };
                    if !ok {
                        break;
                    }
                    hits.push(id);
                }
            }
            _ => unreachable!("chains only hold ordered operators"),
        }
        hits.sort_unstable();
        (hits, evals)
    }
}

fn parse_num(value: &str) -> Option<f64> {
    value.trim().parse::<f64>().ok().filter(|v| !v.is_nan())
}

/// Incremental trigger-matching index: inverted token postings + cover
/// forest for `contains`, sorted threshold chains for the ordered numeric
/// operators. Maintained unconditionally on subscribe/unsubscribe (the
/// [`crate::FilterConfig`] knobs only govern whether matching *consults*
/// it, so the knobs can flip safely at any time), and owned per shard by
/// the sharded engine so the merge stays shard-invariant.
#[derive(Debug, Clone, Default)]
pub struct TriggerIndex {
    con: HashMap<(String, String), ConPartition>,
    chains: HashMap<(String, String, TriggerOp), Chain>,
}

impl TriggerIndex {
    /// Registers an atomic trigger rule's predicate. Called for every
    /// created trigger rule; predicates the index has no structure for
    /// (equality, inequality) are ignored.
    pub fn insert(&mut self, id: RuleId, class: &str, pred: &TriggerPred) {
        match pred.op {
            TriggerOp::Contains => self
                .con
                .entry((class.to_owned(), pred.property.clone()))
                .or_default()
                .insert(id, &pred.value),
            TriggerOp::Lt | TriggerOp::Le | TriggerOp::Gt | TriggerOp::Ge => {
                if let Some(t) = parse_num(&pred.value) {
                    self.chains
                        .entry((class.to_owned(), pred.property.clone(), pred.op))
                        .or_default()
                        .insert(t, id);
                }
            }
            _ => {}
        }
    }

    /// Unregisters a trigger rule's predicate; no-op when absent.
    pub fn remove(&mut self, id: RuleId, class: &str, pred: &TriggerPred) {
        match pred.op {
            TriggerOp::Contains => {
                let key = (class.to_owned(), pred.property.clone());
                if let Some(part) = self.con.get_mut(&key) {
                    part.remove(id);
                    if part.patterns.is_empty() {
                        self.con.remove(&key);
                    }
                }
            }
            TriggerOp::Lt | TriggerOp::Le | TriggerOp::Gt | TriggerOp::Ge => {
                if let Some(t) = parse_num(&pred.value) {
                    let key = (class.to_owned(), pred.property.clone(), pred.op);
                    if let Some(chain) = self.chains.get_mut(&key) {
                        chain.remove(t, id);
                        if chain.entries.is_empty() {
                            self.chains.remove(&key);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// All `contains` rules of `(class, property)` matching `value`,
    /// ascending by id, plus the number of containment checks performed.
    /// `use_postings` narrows candidates via the inverted index;
    /// `use_frontier` evaluates only the cover frontier and cascades.
    /// Both paths produce exactly the scan result.
    pub fn match_contains(
        &self,
        class: &str,
        property: &str,
        value: &str,
        use_postings: bool,
        use_frontier: bool,
    ) -> (Vec<RuleId>, u64) {
        let Some(part) = self.con.get(&(class.to_owned(), property.to_owned())) else {
            return (Vec::new(), 0);
        };
        if use_frontier {
            part.match_frontier(value, use_postings)
        } else {
            part.match_plain(value)
        }
    }

    /// All ordered-operator rules of `(class, property, op)` matching
    /// `value`, ascending by id, plus the number of thresholds visited.
    /// A non-numeric document value matches nothing (as in the scan).
    pub fn match_ordered(
        &self,
        op: TriggerOp,
        class: &str,
        property: &str,
        value: &str,
    ) -> (Vec<RuleId>, u64) {
        let Some(d) = parse_num(value) else {
            return (Vec::new(), 0);
        };
        let Some(chain) = self
            .chains
            .get(&(class.to_owned(), property.to_owned(), op))
        else {
            return (Vec::new(), 0);
        };
        chain.matches(op, d)
    }

    /// `(frontier size, covered count)` of a `contains` partition —
    /// introspection used by tests and the matching-scaling study.
    pub fn contains_frontier(&self, class: &str, property: &str) -> (usize, usize) {
        self.con
            .get(&(class.to_owned(), property.to_owned()))
            .map(|p| p.frontier_stats())
            .unwrap_or((0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(op: TriggerOp, value: &str) -> TriggerPred {
        TriggerPred {
            property: "serverHost".into(),
            op,
            value: value.into(),
        }
    }

    fn con_index(patterns: &[&str]) -> TriggerIndex {
        let mut idx = TriggerIndex::default();
        for (i, p) in patterns.iter().enumerate() {
            idx.insert(RuleId(i as u64), "C", &pred(TriggerOp::Contains, p));
        }
        idx
    }

    fn scan(patterns: &[&str], value: &str) -> Vec<RuleId> {
        patterns
            .iter()
            .enumerate()
            .filter(|(_, p)| value.contains(**p))
            .map(|(i, _)| RuleId(i as u64))
            .collect()
    }

    #[test]
    fn anchors_are_longest_interior_tokens() {
        assert_eq!(anchor_token(".region7.grid"), Some("region7"));
        assert_eq!(anchor_token("a.uni-passau.de"), Some("passau"));
        // boundary runs may fuse with neighbours in a containing string
        assert_eq!(anchor_token("abc"), None);
        assert_eq!(anchor_token("abc.de"), None);
        assert_eq!(anchor_token(""), None);
        // tie on length → leftmost
        assert_eq!(anchor_token(".ab.cd."), Some("ab"));
    }

    #[test]
    fn plain_and_frontier_match_equal_scan() {
        let patterns = [
            ".uni-passau.de",
            "host1.uni-passau.de",
            "host",
            ".de",
            "xyz",
            "1.uni",
        ];
        let idx = con_index(&patterns);
        for value in [
            "host1.uni-passau.de",
            "host2.uni-passau.de",
            "a.b.c",
            "",
            "xyzhost",
        ] {
            let expected = scan(&patterns, value);
            for (postings, frontier) in [(true, false), (false, true), (true, true)] {
                let (hits, _) = idx.match_contains("C", "serverHost", value, postings, frontier);
                assert_eq!(
                    hits, expected,
                    "value={value:?} cfg=({postings},{frontier})"
                );
            }
        }
    }

    #[test]
    fn frontier_shrinks_under_covering_and_recovers_on_unsubscribe() {
        let mut idx = con_index(&[".r1.grid", "n1.r1.grid", "n2.r1.grid"]);
        // rule 0 covers rules 1 and 2
        assert_eq!(idx.contains_frontier("C", "serverHost"), (1, 2));
        let (hits, evals) = idx.match_contains("C", "serverHost", "n1.r1.grid.org", true, true);
        assert_eq!(hits, vec![RuleId(0), RuleId(1)]);
        // frontier eval + two children cascaded
        assert_eq!(evals, 3);
        // unsubscribing the coverer promotes its children to the frontier
        idx.remove(RuleId(0), "C", &pred(TriggerOp::Contains, ".r1.grid"));
        assert_eq!(idx.contains_frontier("C", "serverHost"), (2, 0));
        let (hits, _) = idx.match_contains("C", "serverHost", "n1.r1.grid.org", true, true);
        assert_eq!(hits, vec![RuleId(1)]);
    }

    #[test]
    fn late_coverer_adopts_existing_roots() {
        let mut idx = con_index(&["n1.r1.grid", "n2.r1.grid"]);
        assert_eq!(idx.contains_frontier("C", "serverHost"), (2, 0));
        // the base pattern arrives last and still becomes the single root
        idx.insert(RuleId(9), "C", &pred(TriggerOp::Contains, ".r1.grid"));
        assert_eq!(idx.contains_frontier("C", "serverHost"), (1, 2));
        let (hits, _) = idx.match_contains("C", "serverHost", "x.n2.r1.grid.org", true, true);
        assert_eq!(hits, vec![RuleId(1), RuleId(9)]);
    }

    #[test]
    fn removing_mid_chain_coverer_reparents_to_grandparent() {
        let mut idx = con_index(&[".grid", "r1.grid", "n1xr1.grid"]);
        // 0 covers 1 covers... 2's pattern contains both ".grid" and "r1.grid"
        // → parent is the longest coverer, rule 1.
        assert_eq!(idx.contains_frontier("C", "serverHost"), (1, 2));
        idx.remove(RuleId(1), "C", &pred(TriggerOp::Contains, "r1.grid"));
        // rule 2 is promoted under rule 0, not to the frontier
        assert_eq!(idx.contains_frontier("C", "serverHost"), (1, 1));
        let (hits, _) = idx.match_contains("C", "serverHost", "a.n1xr1.grid", true, true);
        assert_eq!(hits, vec![RuleId(0), RuleId(2)]);
    }

    #[test]
    fn ordered_chains_match_scan_semantics() {
        let mut idx = TriggerIndex::default();
        let values = ["10", " 25 ", "3.5", "abc", "NaN", "25"];
        for (i, v) in values.iter().enumerate() {
            idx.insert(RuleId(i as u64), "C", &pred(TriggerOp::Gt, v));
        }
        let scan_gt = |d: &str| -> Vec<RuleId> {
            values
                .iter()
                .enumerate()
                .filter(|(_, v)| TriggerOp::Gt.matches(d, v))
                .map(|(i, _)| RuleId(i as u64))
                .collect()
        };
        for d in ["20", "3.5", "1000", "-1", "abc", "NaN"] {
            let (hits, _) = idx.match_ordered(TriggerOp::Gt, "C", "serverHost", d);
            assert_eq!(hits, scan_gt(d), "doc value {d:?}");
        }
        // removal of a mid-chain threshold
        idx.remove(RuleId(0), "C", &pred(TriggerOp::Gt, "10"));
        let (hits, _) = idx.match_ordered(TriggerOp::Gt, "C", "serverHost", "20");
        assert_eq!(hits, vec![RuleId(2)]);
    }

    #[test]
    fn chain_walk_stops_early() {
        let mut idx = TriggerIndex::default();
        for i in 0..100u64 {
            idx.insert(RuleId(i), "C", &pred(TriggerOp::Gt, &i.to_string()));
        }
        let (hits, evals) = idx.match_ordered(TriggerOp::Gt, "C", "serverHost", "5");
        assert_eq!(hits, (0..5).map(RuleId).collect::<Vec<_>>());
        assert_eq!(evals, 6, "walk visits matches plus one stopping probe");
        let (hits, evals) = idx.match_ordered(TriggerOp::Lt, "C", "serverHost", "5");
        assert!(hits.is_empty());
        assert_eq!(evals, 0, "no Lt chain exists");
    }

    #[test]
    fn duplicate_values_across_ops_stay_separate() {
        let mut idx = TriggerIndex::default();
        idx.insert(RuleId(0), "C", &pred(TriggerOp::Ge, "7"));
        idx.insert(RuleId(1), "C", &pred(TriggerOp::Gt, "7"));
        let (ge, _) = idx.match_ordered(TriggerOp::Ge, "C", "serverHost", "7");
        let (gt, _) = idx.match_ordered(TriggerOp::Gt, "C", "serverHost", "7");
        assert_eq!(ge, vec![RuleId(0)]);
        assert!(gt.is_empty());
    }
}
