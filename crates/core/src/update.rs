//! Updates and deletions (paper §3.5).
//!
//! One filter execution is not sufficient when documents change. The engine
//! runs the filter **three times**:
//!
//! 1. with the *original* version of updated and deleted resources as input
//!    (read-only pass) — its results are the *candidate* resources, each of
//!    which no longer matches at least one rule via the old data; every
//!    derivation along the way is retracted from the materializations;
//! 2. after writing the modified metadata, with the candidate resources as
//!    input — its results are the *wrong candidates*, i.e. resources that
//!    still match (re-deriving their materializations);
//! 3. with the modified metadata as input — the pass that would suffice if
//!    no updates or deletions were allowed, producing the new matches.
//!
//! True candidates (pass 1 minus pass 2) are published as removals; pass 3
//! results as additions; updated resources cached via strong references are
//! published as updates to every subscription whose matched closure
//! contains them.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use mdv_rdf::{diff, diff_delete_all, Document, DocumentDiff, RDF_SUBJECT};
use mdv_relstore::StorageEngine;

use crate::atoms::RuleId;
use crate::engine::{FilterEngine, Mode};
use crate::error::{Error, Result};
use crate::registry::{assemble_publications, Publication, SubscriptionId};
use crate::store::{Atom, BaseStore};

impl<S: StorageEngine + Sync> FilterEngine<S> {
    /// Re-registers a modified version of a document (paper §2.2: "updating
    /// metadata essentially means re-registering a modified version").
    pub fn update_document(&mut self, new_doc: &Document) -> Result<Vec<Publication>> {
        self.store.begin();
        let out = self.update_document_inner(new_doc);
        self.store.commit()?;
        out
    }

    fn update_document_inner(&mut self, new_doc: &Document) -> Result<Vec<Publication>> {
        let old = self.documents.get(new_doc.uri()).cloned().ok_or_else(|| {
            Error::Document(format!(
                "document '{}' is not registered; use register_document",
                new_doc.uri()
            ))
        })?;
        new_doc.check_internal_references()?;
        self.schema().validate(new_doc).map_err(Error::Rdf)?;
        let d = diff(&old, new_doc);
        // resources added by the update must not belong to other documents
        for res in &d.added {
            if BaseStore::resource_exists(self.db(), res.uri().as_str())? {
                return Err(Error::Document(format!(
                    "resource '{}' is already registered elsewhere",
                    res.uri()
                )));
            }
        }
        self.apply_diff(&d, Some(new_doc))
    }

    /// Deletes a whole document; all contained resources are deleted
    /// (paper §3.5).
    pub fn delete_document(&mut self, uri: &str) -> Result<Vec<Publication>> {
        self.store.begin();
        let out = self.delete_document_inner(uri);
        self.store.commit()?;
        out
    }

    fn delete_document_inner(&mut self, uri: &str) -> Result<Vec<Publication>> {
        let old = self
            .documents
            .get(uri)
            .cloned()
            .ok_or_else(|| Error::Document(format!("document '{uri}' is not registered")))?;
        let d = diff_delete_all(&old);
        self.apply_diff(&d, None)
    }

    fn apply_diff(
        &mut self,
        d: &DocumentDiff,
        new_doc: Option<&Document>,
    ) -> Result<Vec<Publication>> {
        if d.is_empty() {
            // nothing changed; just refresh the stored document
            if let Some(doc) = new_doc {
                self.documents.insert(doc.uri().to_owned(), doc.clone());
            }
            return Ok(Vec::new());
        }

        // ---- pass 1: old state of changed resources (read-only) ----
        let mut pass1_atoms = Vec::new();
        for res in &d.deleted {
            pass1_atoms.extend(Atom::from_resource(res));
        }
        for (old_res, _) in &d.updated {
            pass1_atoms.extend(Atom::from_resource(old_res));
        }
        let run1 = self.run_filter(&pass1_atoms, Mode::Collect)?;
        let before: HashSet<(RuleId, String)> = run1.end_matches.iter().cloned().collect();

        // retract every derivation that involved the changed data
        let mut retracted: BTreeSet<(RuleId, String)> = BTreeSet::new();
        for iteration in &run1.iterations {
            for (uri, rule) in iteration {
                retracted.insert((*rule, uri.clone()));
            }
        }
        for (rule, uri) in &retracted {
            BaseStore::result_remove(&mut self.store, *rule, uri)?;
        }

        // ---- apply the changes to the base tables ----
        for res in &d.deleted {
            BaseStore::remove_resource(&mut self.store, res.uri().as_str())?;
        }
        for (old_res, new_res) in &d.updated {
            BaseStore::remove_resource(&mut self.store, old_res.uri().as_str())?;
            let doc_uri = new_res.uri().document_uri().to_owned();
            BaseStore::insert_resource(&mut self.store, new_res, &doc_uri)?;
        }
        for res in &d.added {
            let doc_uri = res.uri().document_uri().to_owned();
            BaseStore::insert_resource(&mut self.store, res, &doc_uri)?;
        }
        match new_doc {
            Some(doc) => {
                self.documents.insert(doc.uri().to_owned(), doc.clone());
            }
            None => {
                // document deletion: identify the document by any deleted
                // resource (diff_delete_all lists all of them)
                if let Some(res) = d.deleted.first() {
                    self.documents.remove(res.uri().document_uri());
                }
            }
        }

        // ---- pass 2: candidates against the new state ----
        // rebuilding candidate atoms only reads the base tables, so the
        // per-candidate work fans out across the pool; concatenating in
        // candidate (BTreeSet) order matches the sequential engine exactly
        let candidates: Vec<String> = retracted
            .iter()
            .map(|(_, uri)| uri.clone())
            .collect::<BTreeSet<String>>()
            .into_iter()
            .collect();
        let atom_parts = self.par_map(&candidates, |uri| self.atoms_from_store(uri));
        let mut pass2_atoms = Vec::new();
        for part in atom_parts {
            pass2_atoms.extend(part?);
        }
        let run2 = self.run_filter(&pass2_atoms, Mode::Refresh)?;

        // ---- pass 3: the modified metadata as input ----
        let mut pass3_atoms = Vec::new();
        for res in &d.added {
            pass3_atoms.extend(Atom::from_resource(res));
        }
        for (_, new_res) in &d.updated {
            pass3_atoms.extend(Atom::from_resource(new_res));
        }
        let run3 = self.run_filter(&pass3_atoms, Mode::Insert)?;

        // everything matching under the new state, as far as the passes see:
        // pass 2 re-derives the candidates' surviving matches, pass 3 adds
        // matches arising from the modified metadata
        let survived: HashSet<(RuleId, String)> = run2
            .end_matches
            .iter()
            .chain(run3.end_matches.iter())
            .cloned()
            .collect();

        // ---- classify per subscription ----
        let mut pubs: BTreeMap<SubscriptionId, Publication> = BTreeMap::new();
        let push = |pubs: &mut BTreeMap<SubscriptionId, Publication>,
                    subs: &[SubscriptionId],
                    f: &dyn Fn(&mut Publication)| {
            for sub in subs {
                f(pubs.entry(*sub).or_insert_with(|| Publication::new(*sub)));
            }
        };

        // removals: matched before via old data, not re-derived anywhere
        for (rule, uri) in &before {
            if !survived.contains(&(*rule, uri.clone())) {
                if let Some(subs) = self.end_subs.get(rule) {
                    let subs = subs.clone();
                    let uri = uri.clone();
                    push(&mut pubs, &subs, &|p| p.removed.push(uri.clone()));
                }
            }
        }
        // additions: matches under the new state that did not exist before
        for (rule, uri) in &survived {
            if before.contains(&(*rule, uri.clone())) {
                continue;
            }
            if let Some(subs) = self.end_subs.get(rule) {
                let subs = subs.clone();
                let uri = uri.clone();
                push(&mut pubs, &subs, &|p| p.added.push(uri.clone()));
            }
        }
        // updates: an updated resource must be re-shipped to every
        // subscription whose matched resources reach it over strong
        // references (it sits in their cached closure, §2.4)
        let updated_uris: Vec<String> =
            d.updated.iter().map(|(_, n)| n.uri().to_string()).collect();
        for u in &updated_uris {
            let referrers = self.strong_referrers(u)?;
            let end_rules: Vec<RuleId> = self.end_subs.keys().copied().collect();
            for end in end_rules {
                let mut reaches = false;
                for r in &referrers {
                    let key = (end, r.clone());
                    if survived.contains(&key) {
                        reaches = true;
                        break;
                    }
                    // not re-derived this round: consult the current state
                    if self.check_match(end, r)? {
                        reaches = true;
                        break;
                    }
                }
                if reaches {
                    if let Some(subs) = self.end_subs.get(&end) {
                        let subs = subs.clone();
                        let u = u.clone();
                        push(&mut pubs, &subs, &|p| p.updated.push(u.clone()));
                    }
                }
            }
        }

        Ok(assemble_publications(pubs))
    }

    /// Rebuilds a resource's atoms from the base tables (candidate input of
    /// pass 2; the resource may live in any document).
    fn atoms_from_store(&self, uri: &str) -> Result<Vec<Atom>> {
        let Some(class) = BaseStore::resource_class(self.db(), uri)? else {
            return Ok(Vec::new()); // deleted candidates have no atoms
        };
        let mut atoms = vec![Atom {
            uri: uri.to_owned(),
            class: class.clone(),
            property: RDF_SUBJECT.to_owned(),
            value: uri.to_owned(),
        }];
        for (property, value) in BaseStore::statements_of(self.db(), uri)? {
            atoms.push(Atom {
                uri: uri.to_owned(),
                class: class.clone(),
                property,
                value,
            });
        }
        Ok(atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdv_rdf::{RdfSchema, Resource, Term, UriRef};

    fn schema() -> RdfSchema {
        RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .int("serverPort")
                    .strong_ref("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap()
    }

    fn doc(memory: i64) -> Document {
        Document::new("doc.rdf")
            .with_resource(
                Resource::new(UriRef::new("doc.rdf", "host"), "CycleProvider")
                    .with("serverHost", Term::literal("pirates.uni-passau.de"))
                    .with("serverPort", Term::literal("5874"))
                    .with(
                        "serverInformation",
                        Term::resource(UriRef::new("doc.rdf", "info")),
                    ),
            )
            .with_resource(
                Resource::new(UriRef::new("doc.rdf", "info"), "ServerInformation")
                    .with("memory", Term::literal(memory.to_string()))
                    .with("cpu", Term::literal("600")),
            )
    }

    const PATH_RULE: &str =
        "search CycleProvider c register c where c.serverInformation.memory > 64";

    #[test]
    fn referenced_update_gains_match() {
        // §3.5: "if the ServerInformation resource's memory property is
        // updated from 32 to 128, CycleProvider resources can now match"
        let mut e = FilterEngine::new(schema());
        let (sub, _) = e.register_subscription(PATH_RULE).unwrap();
        assert!(e.register_document(&doc(32)).unwrap().is_empty());
        let pubs = e.update_document(&doc(128)).unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].subscription, sub);
        assert_eq!(pubs[0].added, vec!["doc.rdf#host".to_owned()]);
        assert!(pubs[0].removed.is_empty());
    }

    #[test]
    fn referenced_update_loses_match() {
        // memory set from 92 to 32: the CycleProvider no longer matches
        let mut e = FilterEngine::new(schema());
        e.register_subscription(PATH_RULE).unwrap();
        let pubs = e.register_document(&doc(92)).unwrap();
        assert_eq!(pubs[0].added, vec!["doc.rdf#host".to_owned()]);
        let pubs = e.update_document(&doc(32)).unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].removed, vec!["doc.rdf#host".to_owned()]);
        assert!(pubs[0].added.is_empty());
    }

    #[test]
    fn still_matching_update_ships_new_version() {
        // memory 92 → 128: still matching; the updated ServerInformation is
        // in the subscription's strong closure and must be re-shipped
        let mut e = FilterEngine::new(schema());
        e.register_subscription(PATH_RULE).unwrap();
        e.register_document(&doc(92)).unwrap();
        let pubs = e.update_document(&doc(128)).unwrap();
        assert_eq!(pubs.len(), 1);
        assert!(pubs[0].added.is_empty());
        assert!(pubs[0].removed.is_empty());
        assert_eq!(pubs[0].updated, vec!["doc.rdf#info".to_owned()]);
    }

    #[test]
    fn alternative_derivation_survives_update() {
        // a CycleProvider referencing two ServerInformations stays matched
        // when one of them drops below the threshold
        let schema = RdfSchema::builder()
            .class("ServerInformation", |c| c.int("memory").int("cpu"))
            .class("CycleProvider", |c| {
                c.str("serverHost")
                    .strong_ref_set("serverInformation", "ServerInformation")
            })
            .build()
            .unwrap();
        let make = |m1: i64, m2: i64| {
            Document::new("d.rdf")
                .with_resource(
                    Resource::new(UriRef::new("d.rdf", "host"), "CycleProvider")
                        .with("serverHost", Term::literal("h"))
                        .with(
                            "serverInformation",
                            Term::resource(UriRef::new("d.rdf", "i1")),
                        )
                        .with(
                            "serverInformation",
                            Term::resource(UriRef::new("d.rdf", "i2")),
                        ),
                )
                .with_resource(
                    Resource::new(UriRef::new("d.rdf", "i1"), "ServerInformation")
                        .with("memory", Term::literal(m1.to_string()))
                        .with("cpu", Term::literal("1")),
                )
                .with_resource(
                    Resource::new(UriRef::new("d.rdf", "i2"), "ServerInformation")
                        .with("memory", Term::literal(m2.to_string()))
                        .with("cpu", Term::literal("1")),
                )
        };
        let mut e = FilterEngine::new(schema);
        e.register_subscription(
            "search CycleProvider c register c where c.serverInformation?.memory > 64",
        )
        .unwrap();
        let pubs = e.register_document(&make(92, 128)).unwrap();
        assert_eq!(pubs[0].added, vec!["d.rdf#host".to_owned()]);
        // i1 drops to 32 but i2 still qualifies: no removal; i1 is updated
        // and still strongly referenced, so it ships as an update
        let pubs = e.update_document(&make(32, 128)).unwrap();
        assert_eq!(pubs.len(), 1);
        assert!(
            pubs[0].removed.is_empty(),
            "host still matches via i2: {pubs:?}"
        );
        assert_eq!(pubs[0].updated, vec!["d.rdf#i1".to_owned()]);
        // now both drop: removal of host
        let pubs = e.update_document(&make(32, 16)).unwrap();
        assert_eq!(pubs[0].removed, vec!["d.rdf#host".to_owned()]);
    }

    #[test]
    fn delete_document_removes_matches() {
        let mut e = FilterEngine::new(schema());
        e.register_subscription(PATH_RULE).unwrap();
        e.register_document(&doc(92)).unwrap();
        let pubs = e.delete_document("doc.rdf").unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].removed, vec!["doc.rdf#host".to_owned()]);
        // base tables are clean; the document can be re-registered
        assert_eq!(e.db().table("Resources").unwrap().len(), 0);
        assert_eq!(e.db().table("Statements").unwrap().len(), 0);
        assert_eq!(e.db().table("RuleResults").unwrap().len(), 0);
        let pubs = e.register_document(&doc(92)).unwrap();
        assert_eq!(pubs[0].added, vec!["doc.rdf#host".to_owned()]);
    }

    #[test]
    fn update_unknown_document_rejected() {
        let mut e = FilterEngine::new(schema());
        assert!(matches!(
            e.update_document(&doc(92)),
            Err(Error::Document(_))
        ));
        assert!(matches!(
            e.delete_document("doc.rdf"),
            Err(Error::Document(_))
        ));
    }

    #[test]
    fn no_change_update_is_silent() {
        let mut e = FilterEngine::new(schema());
        e.register_subscription(PATH_RULE).unwrap();
        e.register_document(&doc(92)).unwrap();
        assert!(e.update_document(&doc(92)).unwrap().is_empty());
    }

    #[test]
    fn update_adding_resources_publishes_them() {
        let mut e = FilterEngine::new(schema());
        e.register_subscription("search ServerInformation s register s where s.memory > 64")
            .unwrap();
        e.register_document(&doc(92)).unwrap();
        // add a second ServerInformation to the document
        let mut new_doc = doc(92);
        new_doc
            .add_resource(
                Resource::new(UriRef::new("doc.rdf", "info2"), "ServerInformation")
                    .with("memory", Term::literal("256"))
                    .with("cpu", Term::literal("1")),
            )
            .unwrap();
        let pubs = e.update_document(&new_doc).unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].added, vec!["doc.rdf#info2".to_owned()]);
    }

    #[test]
    fn update_removing_resource_publishes_removal() {
        let mut e = FilterEngine::new(schema());
        e.register_subscription("search ServerInformation s register s where s.memory > 64")
            .unwrap();
        e.register_document(&doc(92)).unwrap();
        // drop the info resource (and the reference to it)
        let new_doc = Document::new("doc.rdf").with_resource(
            Resource::new(UriRef::new("doc.rdf", "host"), "CycleProvider")
                .with("serverHost", Term::literal("pirates.uni-passau.de"))
                .with("serverPort", Term::literal("5874")),
        );
        let pubs = e.update_document(&new_doc).unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].removed, vec!["doc.rdf#info".to_owned()]);
    }

    #[test]
    fn oid_subscription_sees_update_lifecycle() {
        let mut e = FilterEngine::new(schema());
        let (_sub, _) = e
            .register_subscription("search CycleProvider c register c where c = 'doc.rdf#host'")
            .unwrap();
        let pubs = e.register_document(&doc(92)).unwrap();
        assert_eq!(pubs[0].added, vec!["doc.rdf#host".to_owned()]);
        // host itself updated (port change): still matches OID → update
        let mut new_doc = Document::new("doc.rdf").with_resource(
            Resource::new(UriRef::new("doc.rdf", "host"), "CycleProvider")
                .with("serverHost", Term::literal("pirates.uni-passau.de"))
                .with("serverPort", Term::literal("9999"))
                .with(
                    "serverInformation",
                    Term::resource(UriRef::new("doc.rdf", "info")),
                ),
        );
        new_doc
            .add_resource(
                Resource::new(UriRef::new("doc.rdf", "info"), "ServerInformation")
                    .with("memory", Term::literal("92"))
                    .with("cpu", Term::literal("600")),
            )
            .unwrap();
        let pubs = e.update_document(&new_doc).unwrap();
        assert_eq!(pubs.len(), 1);
        assert_eq!(pubs[0].updated, vec!["doc.rdf#host".to_owned()]);
        // deletion removes it
        let pubs = e.delete_document("doc.rdf").unwrap();
        assert_eq!(pubs[0].removed, vec!["doc.rdf#host".to_owned()]);
    }

    #[test]
    fn materializations_stay_consistent_after_updates() {
        // after a lose-then-gain cycle the engine's incremental state must
        // equal a from-scratch registration
        let mut e = FilterEngine::new(schema());
        e.register_subscription(PATH_RULE).unwrap();
        e.register_document(&doc(92)).unwrap();
        e.update_document(&doc(32)).unwrap();
        e.update_document(&doc(128)).unwrap();

        let mut fresh = FilterEngine::new(schema());
        fresh.register_subscription(PATH_RULE).unwrap();
        fresh.register_document(&doc(128)).unwrap();

        let mut a: Vec<_> = e
            .db()
            .table("RuleResults")
            .unwrap()
            .iter()
            .map(|(_, row)| format!("{row:?}"))
            .collect();
        let mut b: Vec<_> = fresh
            .db()
            .table("RuleResults")
            .unwrap()
            .iter()
            .map(|(_, row)| format!("{row:?}"))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
